//! Ablation study: Algorithm 2's write quorum of `|R_j| - f` registers is
//! exactly as small as it can be. A writer that returns even slightly earlier
//! (skipping the visibility margin of `(z-1)·f + 1` acknowledgements) lets a
//! combination of `f` crashes and delayed responses hide its value from a
//! subsequent read — a WS-Safety violation.
//!
//! ```text
//! cargo run -p regemu-bench --bin ablation_quorum
//! ```

use regemu_bench::experiments::ablation_write_quorum;

fn main() {
    println!(
        "{}",
        ablation_write_quorum(&[(1, 1, 3), (3, 1, 3), (2, 1, 4), (1, 2, 5), (2, 2, 7)])
    );
    println!(
        "slack 0 is the paper's algorithm; the positive-slack rows skip the \
         (z-1)*f + 1 acknowledgement margin that keeps the latest value visible."
    );
}
