//! Space-consumption and coverage metrics of a run.
//!
//! The paper's central quantity is the *resource consumption* of a run: the
//! number of base objects used (triggered on) by the emulation algorithm in
//! that run. This module computes it, together with the covering structure
//! ([`RunMetrics::covered`], `Cov(t)` in the paper's notation), the
//! per-server occupancy used by Theorem 6, and the point contention used by
//! Theorem 8.

use crate::ids::{ObjectId, ServerId};
use crate::sim::Simulation;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Snapshot of the space-related metrics of a run.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Base objects on which at least one low-level operation was triggered
    /// (the resource consumption of the run is the size of this set).
    pub touched: BTreeSet<ObjectId>,
    /// Base objects on which at least one write-class operation was
    /// triggered.
    pub written: BTreeSet<ObjectId>,
    /// Base objects currently covered by a pending write (`Cov(now)`).
    pub covered: BTreeSet<ObjectId>,
    /// Per-server count of touched objects.
    pub touched_per_server: BTreeMap<ServerId, usize>,
    /// Per-server count of currently covered objects.
    pub covered_per_server: BTreeMap<ServerId, usize>,
    /// Peak number of covered base objects over the whole run,
    /// `max_t |Cov(t)|` — unlike [`RunMetrics::covered`], which is the
    /// end-of-run snapshot, this captures coverage the schedule built up and
    /// later released. (Resource consumption needs no peak twin: `touched`
    /// only grows, so its peak *is* the final value.)
    pub peak_covered: usize,
    /// Peak number of covered objects on any single server over the run —
    /// the per-server occupancy pressure of Theorem 6.
    pub peak_covered_on_one_server: usize,
    /// Peak number of simultaneously pending low-level operations.
    pub peak_pending: usize,
    /// Maximum number of clients with an incomplete high-level operation at
    /// any point of the run (point contention).
    pub point_contention: usize,
    /// Number of low-level operations triggered in total.
    pub low_level_triggers: u64,
    /// Number of low-level operations that responded.
    pub low_level_responses: u64,
}

impl RunMetrics {
    /// Computes the metrics of the run executed by `sim` so far.
    ///
    /// All history-derived quantities come from [`crate::history::History`]'s
    /// incremental digests, so a capture costs O(objects + pending) — it never
    /// re-scans the event log.
    pub fn capture(sim: &Simulation) -> Self {
        let history = sim.history();
        let touched = history.touched_objects();
        let written = history.written_objects();
        let covered: BTreeSet<ObjectId> = sim
            .pending_ops()
            .filter(|p| p.is_covering_write())
            .map(|p| p.object)
            .collect();

        let mut touched_per_server: BTreeMap<ServerId, usize> = BTreeMap::new();
        for b in &touched {
            *touched_per_server
                .entry(sim.topology().server_of(*b))
                .or_default() += 1;
        }
        let mut covered_per_server: BTreeMap<ServerId, usize> = BTreeMap::new();
        for b in &covered {
            *covered_per_server
                .entry(sim.topology().server_of(*b))
                .or_default() += 1;
        }

        RunMetrics {
            touched,
            written,
            covered,
            touched_per_server,
            covered_per_server,
            peak_covered: sim.peak_covered_count(),
            peak_covered_on_one_server: sim.peak_covered_on_one_server(),
            peak_pending: sim.peak_pending_count(),
            point_contention: history.point_contention(),
            low_level_triggers: history.trigger_count(),
            low_level_responses: history.respond_count(),
        }
    }

    /// The resource consumption of the run: `|touched|`.
    pub fn resource_consumption(&self) -> usize {
        self.touched.len()
    }

    /// Number of currently covered base objects, `|Cov(now)|`.
    pub fn covered_count(&self) -> usize {
        self.covered.len()
    }

    /// The set of servers hosting at least one covered object,
    /// `δ(Cov(now))`.
    pub fn covered_servers(&self) -> BTreeSet<ServerId> {
        self.covered_per_server.keys().copied().collect()
    }

    /// Peak number of covered objects over the whole run, `max_t |Cov(t)|`.
    pub fn peak_covered_count(&self) -> usize {
        self.peak_covered
    }

    /// Maximum per-server occupancy of the run: the largest number of
    /// touched objects on any single server. `touched` is monotone, so this
    /// end-of-run value is also the peak over the run.
    pub fn max_occupancy(&self) -> usize {
        self.max_touched_per_server()
    }

    /// Maximum number of touched objects on any single server.
    pub fn max_touched_per_server(&self) -> usize {
        self.touched_per_server.values().copied().max().unwrap_or(0)
    }

    /// Minimum number of touched objects over the servers that were touched
    /// at all.
    pub fn min_touched_per_server(&self) -> usize {
        self.touched_per_server.values().copied().min().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{ClientProtocol, Context, Delivery};
    use crate::object::ObjectKind;
    use crate::op::{BaseOp, HighOp, HighResponse};
    use crate::sim::SimConfig;
    use crate::topology::Topology;
    use crate::value::Value;

    /// Writes to every object it was given and returns after the first ack,
    /// leaving the rest covered.
    struct SprayWriter {
        targets: Vec<ObjectId>,
        acks: usize,
    }

    impl ClientProtocol for SprayWriter {
        fn on_invoke(&mut self, op: HighOp, ctx: &mut Context<'_>) {
            if let HighOp::Write(v) = op {
                for b in &self.targets {
                    ctx.trigger(*b, BaseOp::Write(Value::new(1, v)));
                }
            }
        }

        fn on_response(&mut self, _delivery: Delivery, ctx: &mut Context<'_>) {
            self.acks += 1;
            if self.acks == 1 {
                ctx.complete(HighResponse::WriteAck);
            }
        }
    }

    #[test]
    fn coverage_and_consumption_are_tracked() {
        let mut t = Topology::new(3);
        let objs = t.add_object_per_server(ObjectKind::Register);
        let mut sim = Simulation::new(t, SimConfig::unchecked());
        let c = sim.register_client(Box::new(SprayWriter {
            targets: objs.clone(),
            acks: 0,
        }));
        sim.invoke(c, HighOp::Write(5)).unwrap();

        let before = RunMetrics::capture(&sim);
        assert_eq!(before.resource_consumption(), 3);
        assert_eq!(before.covered_count(), 3);
        assert_eq!(before.covered_servers().len(), 3);
        assert_eq!(before.low_level_triggers, 3);
        assert_eq!(before.low_level_responses, 0);
        assert_eq!(before.point_contention, 1);

        // Deliver one write: the high-level op completes, two writes remain
        // covering their objects.
        let first = sim.pending_ops().next().unwrap().op_id;
        sim.deliver(first).unwrap();
        let after = RunMetrics::capture(&sim);
        assert_eq!(after.resource_consumption(), 3);
        assert_eq!(after.covered_count(), 2);
        assert_eq!(after.low_level_responses, 1);
        assert_eq!(after.max_touched_per_server(), 1);
        assert_eq!(after.min_touched_per_server(), 1);
    }

    #[test]
    fn peak_coverage_survives_delivery_and_drops() {
        let mut t = Topology::new(3);
        let objs = t.add_object_per_server(ObjectKind::Register);
        let mut sim = Simulation::new(t, SimConfig::unchecked());
        let c = sim.register_client(Box::new(SprayWriter {
            targets: objs.clone(),
            acks: 0,
        }));
        sim.invoke(c, HighOp::Write(5)).unwrap();
        assert_eq!(RunMetrics::capture(&sim).peak_covered_count(), 3);

        // Drain every pending write: the snapshot coverage collapses to 0
        // but the peak remembers the high-water mark.
        let ids: Vec<_> = sim.pending_ops().map(|p| p.op_id).collect();
        sim.deliver(ids[0]).unwrap();
        sim.drop_pending(ids[1]).unwrap();
        sim.deliver(ids[2]).unwrap();
        let m = RunMetrics::capture(&sim);
        assert_eq!(m.covered_count(), 0);
        assert_eq!(m.peak_covered_count(), 3);
        assert_eq!(m.peak_covered_on_one_server, 1);
        assert_eq!(m.peak_pending, 3);
        assert_eq!(m.max_occupancy(), 1);
    }

    #[test]
    fn empty_run_has_zero_metrics() {
        let t = Topology::new(2);
        let sim = Simulation::new(t, SimConfig::unchecked());
        let m = RunMetrics::capture(&sim);
        assert_eq!(m.resource_consumption(), 0);
        assert_eq!(m.covered_count(), 0);
        assert_eq!(m.point_contention, 0);
        assert_eq!(m.max_touched_per_server(), 0);
    }
}
