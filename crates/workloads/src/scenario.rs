//! The unified `Scenario` API: one typed value that fully determines a run.
//!
//! A [`Scenario`] composes everything the experiment pipeline needs —
//! parameters, emulation construction, workload, scheduler, crash plan,
//! consistency check and seed — into a single description:
//!
//! ```
//! use regemu_workloads::scenario::{Scenario, SchedulerSpec};
//! use regemu_workloads::{ConsistencyCheck, WorkloadSpec};
//! use regemu_core::EmulationKind;
//! use regemu_bounds::Params;
//!
//! let report = Scenario::new(Params::new(2, 1, 4)?)
//!     .emulation(EmulationKind::SpaceOptimal)
//!     .workload(WorkloadSpec::WriteSequential { rounds: 2, read_after_each: true })
//!     .scheduler(SchedulerSpec::RoundRobin)
//!     .check(ConsistencyCheck::WsRegular)
//!     .seed(7)
//!     .run()?;
//! assert!(report.is_consistent());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! [`Scenario::build`] turns the description into a [`ScenarioRun`] — an
//! *incremental* run that can be driven to completion ([`ScenarioRun::run`]),
//! advanced one delivery at a time ([`ScenarioRun::step`]), inspected
//! mid-flight ([`ScenarioRun::history`], [`ScenarioRun::metrics`]), perturbed
//! ([`ScenarioRun::crash_server`]) and finally measured
//! ([`ScenarioRun::into_report`]).
//!
//! Because a `Scenario` is a plain value whose every dimension is a small
//! serializable enum ([`regemu_core::EmulationKind`],
//! [`crate::sweep::WorkloadSpec`], [`SchedulerSpec`], [`CrashPlanSpec`],
//! [`RecordingModeSpec`]), grids over scenarios are trivially
//! expressible — [`crate::sweep`] is exactly that, and new dimensions land as
//! one extra axis instead of a cross-crate plumbing change.
//!
//! Long runs can bound their memory with [`Scenario::recording`]: `Digest`
//! keeps metrics only, `Ring(capacity)` keeps a sliding event window and
//! verifies the configured consistency condition *online*
//! ([`regemu_spec::StreamingChecker`]) instead of offline over the full
//! log. Metrics are byte-identical across recording modes for the same
//! scenario — recording changes what is retained, never what happens.
//!
//! Determinism: everything a run does flows from the scenario value. Two
//! builds of the same scenario replay the same run, event for event; the
//! golden-trace suite pins this byte-for-byte, including against the
//! pre-`Scenario` `run_workload` code path.

use crate::generator::{Issuer, Workload};
use crate::runner::{CheckCoverage, ConsistencyCheck, RunReport};
use regemu_adversary::strategy::{CoverWrites, SilenceServers};
use regemu_bounds::Params;
use regemu_core::{Emulation, EmulationKind};
use regemu_fpsm::{
    AdversarialScheduler, ClientId, CrashPlan, DelayedScheduler, FairDriver, History,
    RecordingMode, RoundRobinScheduler, RunMetrics, Scheduler, ServerId, SimError, Simulation,
};
use regemu_spec::{
    check_linearizable, check_ws_regular, check_ws_safe, Condition, HighHistory, SequentialSpec,
    StreamingChecker,
};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The sweepable recording-mode axis of a scenario.
///
/// Unlike [`SchedulerSpec`] and [`CrashPlanSpec`], the fpsm mechanism type
/// ([`regemu_fpsm::RecordingMode`]) is already a plain, serializable value
/// that needs no per-run instantiation, so the spec *is* the mode. Labels
/// (`full`, `digest`, `ring:N`) round-trip through
/// [`RecordingMode::label`] / [`RecordingMode::from_label`] for CLI flags
/// and reports.
pub use regemu_fpsm::RecordingMode as RecordingModeSpec;

/// Which scheduler drives a scenario — a sweepable, serializable dimension.
///
/// Every variant builds a [`Scheduler`] seeded from the scenario seed, so the
/// axis never breaks run determinism. The adversarial variants target the `f`
/// *highest-numbered* servers — the same set a [`CrashPlanSpec::CrashF`] plan
/// crashes — so combining the two axes stays within one fault budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulerSpec {
    /// Seeded pseudo-random fair scheduling ([`FairDriver`]) — the default.
    Fair,
    /// Deterministic client rotation ([`RoundRobinScheduler`]).
    RoundRobin,
    /// Deterministic seed-derived per-message delivery delays
    /// ([`DelayedScheduler`] with its default delay bound): a message-delay
    /// *distribution* over the network, under which responses overtake each
    /// other in bursts.
    Delayed,
    /// Fair scheduling, but write responses from the `f` highest-numbered
    /// servers are withheld forever (the `Ad_i` move;
    /// [`regemu_adversary::CoverWrites`]).
    CoverAdversary,
    /// Fair scheduling, but *every* response from the `f` highest-numbered
    /// servers is withheld forever ([`regemu_adversary::SilenceServers`]).
    SilenceAdversary,
}

impl SchedulerSpec {
    /// Every scheduler kind, in sweep-axis order.
    pub const ALL: [SchedulerSpec; 5] = [
        SchedulerSpec::Fair,
        SchedulerSpec::RoundRobin,
        SchedulerSpec::Delayed,
        SchedulerSpec::CoverAdversary,
        SchedulerSpec::SilenceAdversary,
    ];

    /// Builds the scheduler for a run over `params`, seeded with `seed` and
    /// injecting `crash_plan`.
    pub fn build(self, seed: u64, crash_plan: CrashPlan, params: Params) -> Box<dyn Scheduler> {
        match self {
            SchedulerSpec::Fair => Box::new(FairDriver::new(seed).with_crash_plan(crash_plan)),
            SchedulerSpec::RoundRobin => {
                Box::new(RoundRobinScheduler::new(seed).with_crash_plan(crash_plan))
            }
            SchedulerSpec::Delayed => Box::new(
                DelayedScheduler::new(seed, DelayedScheduler::DEFAULT_MAX_DELAY)
                    .with_crash_plan(crash_plan),
            ),
            SchedulerSpec::CoverAdversary => Box::new(
                AdversarialScheduler::new(seed, Box::new(CoverWrites::highest(params.n, params.f)))
                    .with_crash_plan(crash_plan),
            ),
            SchedulerSpec::SilenceAdversary => Box::new(
                AdversarialScheduler::new(
                    seed,
                    Box::new(SilenceServers::highest(params.n, params.f)),
                )
                .with_crash_plan(crash_plan),
            ),
        }
    }

    /// Stable short name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            SchedulerSpec::Fair => "fair",
            SchedulerSpec::RoundRobin => "round-robin",
            SchedulerSpec::Delayed => "delayed",
            SchedulerSpec::CoverAdversary => "adversary-cover",
            SchedulerSpec::SilenceAdversary => "adversary-silence",
        }
    }

    /// The inverse of [`SchedulerSpec::name`], for CLI flags.
    pub fn from_name(name: &str) -> Option<Self> {
        SchedulerSpec::ALL.into_iter().find(|s| s.name() == name)
    }
}

impl fmt::Display for SchedulerSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which crash plan a scenario injects — a sweepable, serializable dimension.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CrashPlanSpec {
    /// Failure-free run.
    None,
    /// Crash the `f` highest-numbered servers at logical times 5, 10, … —
    /// exactly the fault budget the construction must tolerate. Quorum-
    /// critical low server ids survive, and the times land inside the run.
    CrashF,
    /// Crash *clients* instead of servers: the last writer at logical time
    /// 10 and the first reader at logical time 20. A crashed client's
    /// in-flight operation stays pending forever (abandoned) and its
    /// remaining workload operations are skipped; client crashes are outside
    /// the server fault budget, so the construction must stay consistent
    /// under any scheduler.
    CrashClients,
}

impl CrashPlanSpec {
    /// Every crash-plan kind, in sweep-axis order.
    pub const ALL: [CrashPlanSpec; 3] = [
        CrashPlanSpec::None,
        CrashPlanSpec::CrashF,
        CrashPlanSpec::CrashClients,
    ];

    /// Builds the concrete server [`CrashPlan`] for a parameter point.
    /// [`CrashPlanSpec::CrashClients`] crashes no servers — its client
    /// crashes are delivered through [`CrashPlanSpec::client_crashes`].
    pub fn instantiate(self, params: Params) -> CrashPlan {
        match self {
            CrashPlanSpec::None | CrashPlanSpec::CrashClients => CrashPlan::none(),
            CrashPlanSpec::CrashF => {
                let mut plan = CrashPlan::none();
                for i in 0..params.f {
                    let server = ServerId::new(params.n - 1 - i);
                    plan = plan.crash_at(5 * (i as u64 + 1), server);
                }
                plan
            }
        }
    }

    /// The client crashes the plan injects, as `(time, issuer)` pairs. A
    /// crash fires once the simulation clock passes `time` *and* the
    /// issuer's client has been registered by the workload (a client that
    /// never issues anything cannot crash — there is nothing to crash).
    pub fn client_crashes(self, params: Params) -> Vec<(regemu_fpsm::Time, Issuer)> {
        match self {
            CrashPlanSpec::None | CrashPlanSpec::CrashF => Vec::new(),
            CrashPlanSpec::CrashClients => {
                vec![(10, Issuer::Writer(params.k - 1)), (20, Issuer::Reader(0))]
            }
        }
    }

    /// Stable short name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            CrashPlanSpec::None => "none",
            CrashPlanSpec::CrashF => "crash-f",
            CrashPlanSpec::CrashClients => "crash-clients",
        }
    }

    /// The inverse of [`CrashPlanSpec::name`], for CLI flags.
    pub fn from_name(name: &str) -> Option<Self> {
        CrashPlanSpec::ALL.into_iter().find(|c| c.name() == name)
    }
}

impl fmt::Display for CrashPlanSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How a scenario describes its workload.
#[derive(Clone, Debug)]
enum WorkloadChoice {
    /// A shape instantiated with the scenario's `k` and seed.
    Spec(crate::sweep::WorkloadSpec),
    /// Explicit operation steps, used verbatim.
    Explicit(Workload),
}

/// How a scenario describes its crash plan.
#[derive(Clone, Debug)]
enum CrashChoice {
    Spec(CrashPlanSpec),
    Explicit(CrashPlan),
}

/// A typed, self-contained description of one experiment run.
///
/// See the [module docs](self) for the full picture. All setters are
/// by-value builders; every dimension has a sensible default (space-optimal
/// emulation, one write-sequential round per writer with reads, fair
/// scheduler, no crashes, full recording, WS-Regularity check, seed
/// `0xC0FFEE`).
#[derive(Clone, Debug)]
pub struct Scenario {
    params: Params,
    emulation: EmulationKind,
    workload: WorkloadChoice,
    scheduler: SchedulerSpec,
    crashes: CrashChoice,
    recording: RecordingModeSpec,
    check: ConsistencyCheck,
    seed: u64,
    max_steps_per_op: u64,
    drain: bool,
    evict_intervals: bool,
}

impl Scenario {
    /// A scenario over `params` with every dimension at its default.
    pub fn new(params: Params) -> Self {
        Scenario {
            params,
            emulation: EmulationKind::SpaceOptimal,
            workload: WorkloadChoice::Spec(crate::sweep::WorkloadSpec::WriteSequential {
                rounds: 1,
                read_after_each: true,
            }),
            scheduler: SchedulerSpec::Fair,
            crashes: CrashChoice::Spec(CrashPlanSpec::None),
            recording: RecordingModeSpec::Full,
            check: ConsistencyCheck::WsRegular,
            seed: 0xC0FFEE,
            max_steps_per_op: 100_000,
            drain: false,
            evict_intervals: false,
        }
    }

    /// Selects the emulation construction.
    pub fn emulation(mut self, kind: EmulationKind) -> Self {
        self.emulation = kind;
        self
    }

    /// Selects the workload shape (instantiated with the scenario's `k` and
    /// seed).
    pub fn workload(mut self, spec: crate::sweep::WorkloadSpec) -> Self {
        self.workload = WorkloadChoice::Spec(spec);
        self
    }

    /// Uses an explicit operation sequence instead of a workload shape.
    pub fn workload_steps(mut self, workload: Workload) -> Self {
        self.workload = WorkloadChoice::Explicit(workload);
        self
    }

    /// Selects the scheduler.
    pub fn scheduler(mut self, spec: SchedulerSpec) -> Self {
        self.scheduler = spec;
        self
    }

    /// Selects the crash plan by kind.
    pub fn crashes(mut self, spec: CrashPlanSpec) -> Self {
        self.crashes = CrashChoice::Spec(spec);
        self
    }

    /// Injects an explicit crash plan instead of a crash-plan kind.
    pub fn crash_plan(mut self, plan: CrashPlan) -> Self {
        self.crashes = CrashChoice::Explicit(plan);
        self
    }

    /// Selects how much of the event stream the run retains.
    ///
    /// [`RecordingModeSpec::Full`] (the default) keeps every event and
    /// checks consistency offline over the complete history.
    /// [`RecordingModeSpec::Ring`] keeps a sliding window and verifies the
    /// requested condition *online* with a
    /// [`regemu_spec::StreamingChecker`] fed from the window — the verdict
    /// covers the whole run unless the ring evicted events faster than the
    /// engine drained them (see [`RunReport::check_coverage`]).
    /// [`RecordingModeSpec::Digest`] retains nothing: the run is
    /// metrics-only. Metrics are byte-identical across modes for the same
    /// scenario.
    pub fn recording(mut self, mode: RecordingModeSpec) -> Self {
        self.recording = mode;
        self
    }

    /// Selects the consistency condition verified by the report.
    pub fn check(mut self, check: ConsistencyCheck) -> Self {
        self.check = check;
        self
    }

    /// Sets the seed every source of nondeterminism flows from.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the per-operation delivery budget before the run is declared
    /// stuck.
    pub fn max_steps_per_op(mut self, max_steps: u64) -> Self {
        self.max_steps_per_op = max_steps;
        self
    }

    /// Keeps delivering outstanding low-level operations after the last
    /// high-level operation completed (a "drain" phase).
    pub fn drain(mut self) -> Self {
        self.drain = true;
        self
    }

    /// Evicts high-level intervals from the recording's digest as soon as
    /// the online checker has folded them out of its window, bounding the
    /// interval digest by the run's point contention instead of its length.
    ///
    /// Only effective when the run is checked online (a bounded
    /// [`Scenario::recording`] mode with a [`Scenario::check`] selected) —
    /// without an online checker nothing ever signals that an interval is
    /// done. The price: [`RunReport::history`] then contains only the
    /// intervals still live at the end of the run, so leave this off when
    /// the report's full high-level schedule matters. Metrics and verdicts
    /// are unaffected.
    pub fn evict_folded_intervals(mut self) -> Self {
        self.evict_intervals = true;
        self
    }

    /// The parameter point of the scenario.
    pub fn params(&self) -> Params {
        self.params
    }

    /// The scheduler dimension of the scenario.
    pub fn scheduler_spec(&self) -> SchedulerSpec {
        self.scheduler
    }

    /// The recording dimension of the scenario.
    pub fn recording_spec(&self) -> RecordingModeSpec {
        self.recording
    }

    /// Materializes the scenario into a runnable [`ScenarioRun`].
    ///
    /// Building is cheap and side-effect free; a scenario can be built many
    /// times and every build replays the identical run.
    pub fn build(&self) -> ScenarioRun {
        let emulation = self.emulation.build(self.params);
        let workload = match &self.workload {
            WorkloadChoice::Spec(spec) => spec.instantiate(self.params.k, self.seed),
            WorkloadChoice::Explicit(w) => w.clone(),
        };
        let crash_plan = match &self.crashes {
            CrashChoice::Spec(spec) => spec.instantiate(self.params),
            CrashChoice::Explicit(plan) => plan.clone(),
        };
        let scheduler = self.scheduler.build(self.seed, crash_plan, self.params);
        let mut engine = Engine::with_recording(emulation.as_ref(), self.recording, self.check);
        if self.evict_intervals {
            engine.enable_interval_eviction();
        }
        if let CrashChoice::Spec(spec) = &self.crashes {
            engine.set_client_crash_plan(spec.client_crashes(self.params));
        }
        ScenarioRun {
            emulation,
            scheduler,
            scheduler_name: self.scheduler.name(),
            workload,
            engine,
            check: self.check,
            max_steps_per_op: self.max_steps_per_op,
            drain: self.drain,
        }
    }

    /// Builds the scenario, runs it to completion and returns the measured
    /// report — the one-call form of `build()` + `run()` + `into_report()`.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] if some operation cannot complete within the
    /// step budget.
    pub fn run(&self) -> Result<RunReport, SimError> {
        let mut run = self.build();
        run.run()?;
        Ok(run.into_report())
    }
}

/// A materialized, incrementally drivable scenario run.
pub struct ScenarioRun {
    emulation: Box<dyn Emulation>,
    scheduler: Box<dyn Scheduler>,
    scheduler_name: &'static str,
    workload: Workload,
    engine: Engine,
    check: ConsistencyCheck,
    max_steps_per_op: u64,
    drain: bool,
}

impl ScenarioRun {
    /// Advances the run by its smallest unit of progress: issues every
    /// workload operation that can start right now, then delivers one
    /// low-level operation.
    ///
    /// Returns `Ok(false)` once the run is complete (all workload operations
    /// finished and, when draining, quiescence reached).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Stuck`] when no progress is possible within the
    /// per-operation step budget, and propagates engine errors.
    pub fn step(&mut self) -> Result<bool, SimError> {
        self.engine.step(
            self.emulation.as_ref(),
            &self.workload,
            self.scheduler.as_mut(),
            self.max_steps_per_op,
            self.drain,
        )
    }

    /// Drives the run to completion.
    ///
    /// # Errors
    ///
    /// See [`ScenarioRun::step`].
    pub fn run(&mut self) -> Result<&mut Self, SimError> {
        while self.step()? {}
        Ok(self)
    }

    /// The recorded history of the run so far.
    pub fn history(&self) -> &History {
        self.engine.sim.history()
    }

    /// A snapshot of the space metrics of the run so far.
    pub fn metrics(&self) -> RunMetrics {
        RunMetrics::capture(&self.engine.sim)
    }

    /// Number of high-level operations completed so far.
    pub fn completed_ops(&self) -> usize {
        self.engine.sim.completed_high_count()
    }

    /// The simulation under the run (read-only).
    pub fn sim(&self) -> &Simulation {
        &self.engine.sim
    }

    /// The emulation instance under the run.
    pub fn emulation(&self) -> &dyn Emulation {
        self.emulation.as_ref()
    }

    /// The recording mode the run records under.
    pub fn recording_mode(&self) -> RecordingMode {
        self.engine.sim.recording_mode()
    }

    /// Crashes a server mid-run (counted against the fault budget `f`).
    ///
    /// # Errors
    ///
    /// Fails if the server is unknown or the fault budget is exhausted.
    pub fn crash_server(&mut self, server: ServerId) -> Result<(), SimError> {
        self.engine.sim.crash_server(server)
    }

    /// Crashes a client mid-run. Its in-flight high-level operation (if
    /// any) stays pending forever and its remaining workload operations are
    /// skipped; when the run is checked online the checker is told the
    /// operation is *abandoned*
    /// ([`regemu_spec::StreamingChecker::abandon`]), so it stops pinning
    /// later-overlapping operations in the checker's window while the
    /// verdict still accounts for the pending operation exactly as the
    /// offline checkers would.
    ///
    /// # Errors
    ///
    /// Fails if the client is unknown.
    pub fn crash_client(&mut self, client: ClientId) -> Result<(), SimError> {
        self.engine.crash_client(client)
    }

    /// Finalizes the run: captures metrics, extracts the high-level schedule
    /// and verifies the configured consistency condition — offline over the
    /// full history under [`RecordingModeSpec::Full`], from the online
    /// checker under the bounded recording modes.
    pub fn into_report(mut self) -> RunReport {
        self.engine
            .report(self.emulation.as_ref(), self.scheduler_name, self.check)
    }
}

impl fmt::Debug for ScenarioRun {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScenarioRun")
            .field("emulation", &self.emulation.name())
            .field("scheduler", &self.scheduler_name)
            .field("workload_ops", &self.workload.len())
            .field("issued", &self.engine.cursor)
            .field("completed", &self.engine.sim.completed_high_count())
            .finish()
    }
}

/// The incremental run engine shared by [`ScenarioRun`] and the
/// `run_workload` compatibility shim.
///
/// Issuing and delivering are interleaved exactly as the pre-`Scenario`
/// runner did (invoke as soon as the issuing client is free, deliver
/// otherwise), so for the same seed the history is byte-identical — the
/// golden-trace suite pins this. In-flight operations are tracked through
/// the simulation's own per-client state (O(1) per query) instead of the
/// former linear scan over a `Vec` of outstanding operations.
pub(crate) struct Engine {
    sim: Simulation,
    /// Lazily registered writer clients, indexed by writer slot (`i % k`).
    writer_clients: Vec<Option<ClientId>>,
    /// Lazily registered reader clients, indexed by reader index.
    reader_clients: Vec<Option<ClientId>>,
    /// Next workload operation to issue.
    cursor: usize,
    /// A `sequential` operation that must complete before the cursor moves
    /// (with its issuing client, so a crash of that client can release the
    /// wait — the operation will never complete).
    wait_for: Option<(regemu_fpsm::HighOpId, ClientId)>,
    /// High-level operations whose client crashed while they were in
    /// flight: they never complete and must not count against run
    /// completion.
    abandoned_ops: usize,
    /// Completion count at the last observed progress (for stuck detection).
    last_completed: usize,
    /// Deliveries since the last completed high-level operation.
    steps_since_progress: u64,
    /// Set once the post-completion drain reached quiescence.
    quiesced: bool,
    /// How much of the event stream the simulation retains.
    recording: RecordingMode,
    /// Online checker for bounded recording modes, fed from the retained
    /// event window after every engine step.
    checker: Option<StreamingChecker>,
    /// Sequence number of the next event the checker has not seen.
    checker_cursor: u64,
    /// When set, intervals the checker has folded out of its window are
    /// evicted from the history's digest right after every feed.
    evict_intervals: bool,
    /// Client crashes to inject: `(time, issuer)` pairs, fired once the
    /// clock passes `time` and the issuer's client is registered.
    client_crash_plan: Vec<(regemu_fpsm::Time, Issuer)>,
}

impl Engine {
    pub(crate) fn new(emulation: &dyn Emulation) -> Self {
        Engine::with_recording(emulation, RecordingMode::Full, ConsistencyCheck::None)
    }

    pub(crate) fn with_recording(
        emulation: &dyn Emulation,
        recording: RecordingMode,
        check: ConsistencyCheck,
    ) -> Self {
        let mut sim = emulation.build_simulation();
        sim.set_recording_mode(recording);
        // Under `Full` the report checks offline over the complete history;
        // under `Digest` nothing is retained to check. Only `Ring` needs the
        // online checker, draining the window as the run produces events.
        let checker = match (recording, condition_of(check)) {
            (RecordingMode::Ring(_), Some(condition)) => {
                Some(StreamingChecker::new(condition, SequentialSpec::register()))
            }
            _ => None,
        };
        Engine {
            sim,
            writer_clients: vec![None; emulation.params().k],
            reader_clients: Vec::new(),
            cursor: 0,
            wait_for: None,
            abandoned_ops: 0,
            last_completed: 0,
            steps_since_progress: 0,
            quiesced: false,
            recording,
            checker,
            checker_cursor: 0,
            evict_intervals: false,
            client_crash_plan: Vec::new(),
        }
    }

    /// Installs the client crashes to inject during the run.
    pub(crate) fn set_client_crash_plan(&mut self, plan: Vec<(regemu_fpsm::Time, Issuer)>) {
        self.client_crash_plan = plan;
    }

    /// Read access to the simulation under the engine.
    pub(crate) fn sim(&self) -> &Simulation {
        &self.sim
    }

    /// Mutable access to the simulation under the engine (used by the fuzz
    /// executor to enable decision tracing before the first delivery).
    pub(crate) fn sim_mut(&mut self) -> &mut Simulation {
        &mut self.sim
    }

    /// Crashes a client: its in-flight high-level operation (if any) is
    /// counted as abandoned and the online checker is told immediately.
    pub(crate) fn crash_client(&mut self, client: ClientId) -> Result<(), SimError> {
        let first_crash = !self.sim.is_client_crashed(client);
        let in_flight = self.sim.current_high_op(client).is_some();
        self.sim.crash_client(client)?;
        if first_crash && in_flight {
            self.abandoned_ops += 1;
        }
        // The crash event reaches the checker through the regular stream
        // feed; do it now so the abandonment is not deferred to the next
        // delivery step.
        self.feed_checker();
        Ok(())
    }

    /// Fires every due entry of the client-crash plan. An entry is due once
    /// the clock passed its time and its issuer has a registered client;
    /// entries for clients the workload never registers stay pending
    /// forever, deterministically.
    fn inject_due_client_crashes(&mut self) {
        if self.client_crash_plan.is_empty() {
            return;
        }
        let now = self.sim.time();
        let mut i = 0;
        while i < self.client_crash_plan.len() {
            let (at, issuer) = self.client_crash_plan[i];
            let registered = match issuer {
                Issuer::Writer(w) => {
                    let slot = w % self.writer_clients.len();
                    self.writer_clients[slot]
                }
                Issuer::Reader(r) => self.reader_clients.get(r).copied().flatten(),
            };
            match registered {
                Some(client) if now >= at => {
                    self.client_crash_plan.remove(i);
                    self.crash_client(client)
                        .expect("a registered client is a known client");
                }
                _ => i += 1,
            }
        }
    }

    /// Turns on interval-digest eviction: operations the online checker is
    /// done with are dropped from the history's interval digest. No-op
    /// without an online checker (there is no fold signal to act on).
    pub(crate) fn enable_interval_eviction(&mut self) {
        if let Some(checker) = self.checker.as_mut() {
            checker.set_track_retired(true);
            self.evict_intervals = true;
        }
    }

    /// Feeds every event the checker has not yet observed. Called after each
    /// engine step, so one ring capacity only needs to cover the events of a
    /// single step (issuing plus one delivery) to never miss anything; a gap
    /// is reported to the checker, which degrades the verdict to
    /// [`CheckCoverage::Truncated`] instead of guessing.
    fn feed_checker(&mut self) {
        let Some(checker) = self.checker.as_mut() else {
            return;
        };
        let history = self.sim.history();
        match history.events_since(self.checker_cursor) {
            Some(events) => {
                for event in events {
                    checker.observe(event);
                }
            }
            None => checker.note_gap(),
        }
        self.checker_cursor = history.total_events();
        if self.evict_intervals {
            for high_op in checker.take_retired() {
                self.sim.evict_interval(high_op);
            }
        }
    }

    fn client_for(&mut self, emulation: &dyn Emulation, issuer: Issuer) -> ClientId {
        match issuer {
            Issuer::Writer(i) => {
                let slot = i % emulation.params().k;
                if self.writer_clients[slot].is_none() {
                    let id = self.sim.register_client(emulation.writer_protocol(slot));
                    self.writer_clients[slot] = Some(id);
                }
                self.writer_clients[slot].expect("writer client registered above")
            }
            Issuer::Reader(i) => {
                if i >= self.reader_clients.len() {
                    self.reader_clients.resize(i + 1, None);
                }
                if self.reader_clients[i].is_none() {
                    let id = self.sim.register_client(emulation.reader_protocol());
                    self.reader_clients[i] = Some(id);
                }
                self.reader_clients[i].expect("reader client registered above")
            }
        }
    }

    /// Issues every workload operation that can start right now: the cursor
    /// advances while the previous `sequential` operation has completed and
    /// the next operation's client is idle.
    fn issue_ready(
        &mut self,
        emulation: &dyn Emulation,
        workload: &Workload,
    ) -> Result<(), SimError> {
        while self.cursor < workload.ops().len() {
            if let Some((w, issuer)) = self.wait_for {
                if self.sim.result_of(w).is_none() {
                    if !self.sim.is_client_crashed(issuer) {
                        return Ok(());
                    }
                    // The issuer crashed: the operation will never
                    // complete, so waiting for it would wedge the run.
                }
                self.wait_for = None;
            }
            let step = workload.ops()[self.cursor];
            let client = self.client_for(emulation, step.issuer);
            if self.sim.is_client_crashed(client) {
                // A dead client issues nothing: its remaining workload
                // operations are skipped.
                self.cursor += 1;
                continue;
            }
            if !self.sim.is_client_idle(client) {
                // The client's previous operation is still in flight; a
                // client's schedule must be sequential.
                return Ok(());
            }
            let high_op = self.sim.invoke(client, step.op)?;
            self.cursor += 1;
            if step.sequential {
                self.wait_for = Some((high_op, client));
            }
        }
        Ok(())
    }

    fn all_issued_complete(&self) -> bool {
        self.sim.completed_high_count() + self.abandoned_ops == self.sim.invoked_high_count()
    }

    fn finished(&self, workload: &Workload, drain: bool) -> bool {
        self.cursor == workload.ops().len()
            && self.all_issued_complete()
            && (!drain || self.quiesced)
    }

    pub(crate) fn step(
        &mut self,
        emulation: &dyn Emulation,
        workload: &Workload,
        scheduler: &mut dyn Scheduler,
        max_steps_per_op: u64,
        drain: bool,
    ) -> Result<bool, SimError> {
        self.issue_ready(emulation, workload)?;
        self.inject_due_client_crashes();
        if self.finished(workload, drain) {
            return Ok(false);
        }
        if !scheduler.step(&mut self.sim)? {
            // Nothing the scheduler is willing to deliver remains.
            if self.cursor == workload.ops().len() && self.all_issued_complete() {
                self.quiesced = true;
                return Ok(false);
            }
            return Err(SimError::Stuck {
                steps: self.steps_since_progress,
                waiting_for: format!(
                    "workload operation {} of {} to make progress",
                    self.cursor.min(workload.ops().len().saturating_sub(1)),
                    workload.ops().len()
                ),
            });
        }
        self.feed_checker();
        let completed = self.sim.completed_high_count();
        if completed > self.last_completed {
            self.last_completed = completed;
            self.steps_since_progress = 0;
        } else {
            self.steps_since_progress += 1;
            if self.steps_since_progress >= max_steps_per_op && !self.finished(workload, drain) {
                return Err(SimError::Stuck {
                    steps: self.steps_since_progress,
                    waiting_for: format!(
                        "progress within the {max_steps_per_op}-step budget \
                         ({} of {} operations issued)",
                        self.cursor,
                        workload.ops().len()
                    ),
                });
            }
        }
        Ok(true)
    }

    pub(crate) fn report(
        &mut self,
        emulation: &dyn Emulation,
        scheduler: &str,
        check: ConsistencyCheck,
    ) -> RunReport {
        self.feed_checker();
        let params = emulation.params();
        let metrics = RunMetrics::capture(&self.sim);
        let history = HighHistory::from_run(self.sim.history());
        let completed_ops = self.sim.completed_high_count();
        let spec = SequentialSpec::register();
        let (check_violation, check_coverage) = match (check, self.checker.take()) {
            // Nothing was requested: nothing could be missed.
            (ConsistencyCheck::None, _) => (None, CheckCoverage::Complete),
            // Bounded recording with an online checker (`Ring`): the verdict
            // is the stream's, conclusive only if no event was evicted
            // before the checker observed it.
            (_, Some(checker)) => {
                let outcome = checker.into_outcome();
                let coverage = if outcome.complete {
                    CheckCoverage::Complete
                } else {
                    CheckCoverage::Truncated
                };
                (outcome.violation, coverage)
            }
            // Full recording: check offline over the complete schedule.
            (_, None) if self.recording.is_full() => {
                let violation = match check {
                    ConsistencyCheck::None => unreachable!("handled above"),
                    ConsistencyCheck::WsSafe => check_ws_safe(&history, &spec).err(),
                    ConsistencyCheck::WsRegular => check_ws_regular(&history, &spec).err(),
                    ConsistencyCheck::Atomic => check_linearizable(&history, &spec).err(),
                };
                (violation, CheckCoverage::Complete)
            }
            // `Digest` retains nothing: the requested check never ran.
            (_, None) => (None, CheckCoverage::NotRecorded),
        };
        RunReport {
            emulation: emulation.name().to_string(),
            scheduler: scheduler.to_string(),
            params,
            provisioned_objects: emulation.base_object_count(),
            metrics,
            completed_ops,
            check_violation,
            check_coverage,
            history,
        }
    }
}

/// Maps the requested check to the spec-crate condition it verifies.
fn condition_of(check: ConsistencyCheck) -> Option<Condition> {
    match check {
        ConsistencyCheck::None => None,
        ConsistencyCheck::WsSafe => Some(Condition::WsSafety),
        ConsistencyCheck::WsRegular => Some(Condition::WsRegularity),
        ConsistencyCheck::Atomic => Some(Condition::Atomicity),
    }
}

/// Runs `workload` against an already-built emulation instance under an
/// arbitrary scheduler — the escape hatch for callers that hold a custom
/// [`Emulation`] implementation or a hand-constructed [`Scheduler`] and
/// therefore cannot describe their run as a [`Scenario`] value.
///
/// [`Scenario::run`] and the deprecated `run_workload` are both thin layers
/// over this function, so every execution path shares one engine.
///
/// # Errors
///
/// Returns a [`SimError`] if some operation cannot complete within the step
/// budget.
pub fn drive(
    emulation: &dyn Emulation,
    workload: &Workload,
    scheduler: &mut dyn Scheduler,
    check: ConsistencyCheck,
    max_steps_per_op: u64,
    drain: bool,
) -> Result<RunReport, SimError> {
    let mut engine = Engine::new(emulation);
    while engine.step(emulation, workload, scheduler, max_steps_per_op, drain)? {}
    Ok(engine.report(emulation, scheduler.name(), check))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::WorkloadSpec;
    use regemu_fpsm::{HighOp, HighResponse};

    fn params(k: usize, f: usize, n: usize) -> Params {
        Params::new(k, f, n).unwrap()
    }

    #[test]
    fn scenario_runs_every_emulation_under_every_scheduler() {
        let p = params(2, 1, 4);
        for kind in EmulationKind::ALL {
            for sched in SchedulerSpec::ALL {
                let report = Scenario::new(p)
                    .emulation(kind)
                    .scheduler(sched)
                    .seed(13)
                    .run()
                    .unwrap_or_else(|e| panic!("{kind} under {sched}: {e}"));
                assert!(
                    report.is_consistent(),
                    "{kind} under {sched}: {:?}",
                    report.check_violation
                );
                assert_eq!(report.scheduler, sched.name());
                assert!(report.completed_ops > 0);
            }
        }
    }

    #[test]
    fn scenario_builds_are_replayable() {
        let scenario = Scenario::new(params(2, 1, 4))
            .workload(WorkloadSpec::RandomMixed {
                readers: 2,
                total: 10,
                write_percent: 50,
            })
            .seed(99);
        let a = scenario.run().unwrap();
        let b = scenario.run().unwrap();
        assert_eq!(a.history, b.history);
        assert_eq!(a.metrics, b.metrics);
    }

    #[test]
    fn step_drives_the_run_incrementally() {
        let scenario = Scenario::new(params(2, 1, 4)).seed(3);
        let mut run = scenario.build();
        assert_eq!(run.completed_ops(), 0);
        let mut steps = 0;
        while run.step().unwrap() {
            steps += 1;
        }
        assert!(steps > 0);
        assert_eq!(run.completed_ops(), 4); // 2 writes + 2 reads
                                            // Once finished, further steps are no-ops.
        assert!(!run.step().unwrap());
        let report = run.into_report();
        assert!(report.is_consistent());
    }

    #[test]
    fn stepwise_and_one_shot_runs_are_identical() {
        let scenario = Scenario::new(params(2, 1, 4))
            .workload(WorkloadSpec::ConcurrentReadWrite { rounds: 2 })
            .scheduler(SchedulerSpec::Fair)
            .seed(21);
        let one_shot = scenario.run().unwrap();
        let mut stepped = scenario.build();
        while stepped.step().unwrap() {}
        let stepped = stepped.into_report();
        assert_eq!(one_shot.history, stepped.history);
    }

    #[test]
    fn mid_run_crash_is_survivable_and_observable() {
        let p = params(2, 1, 4);
        let scenario = Scenario::new(p).seed(8);
        let mut run = scenario.build();
        while run.completed_ops() < 1 {
            run.step().unwrap();
        }
        run.crash_server(ServerId::new(p.n - 1)).unwrap();
        run.run().unwrap();
        assert!(run.sim().is_server_crashed(ServerId::new(p.n - 1)));
        let report = run.into_report();
        assert!(report.is_consistent(), "{:?}", report.check_violation);
    }

    #[test]
    fn explicit_workload_steps_are_used_verbatim() {
        use crate::generator::WorkloadOp;
        let steps = vec![
            WorkloadOp {
                issuer: Issuer::Writer(0),
                op: HighOp::Write(77),
                sequential: true,
            },
            WorkloadOp {
                issuer: Issuer::Reader(0),
                op: HighOp::Read,
                sequential: true,
            },
        ];
        let report = Scenario::new(params(2, 1, 4))
            .workload_steps(Workload::from_steps(steps))
            .seed(4)
            .run()
            .unwrap();
        assert_eq!(report.completed_ops, 2);
        let read = report.history.ops().last().unwrap();
        assert_eq!(
            read.returned.map(|(_, r)| r),
            Some(HighResponse::ReadValue(77))
        );
    }

    #[test]
    fn crash_plan_specs_instantiate_within_the_fault_budget() {
        let p = params(3, 2, 7);
        let plan = CrashPlanSpec::CrashF.instantiate(p);
        assert_eq!(plan.remaining(), 2);
        assert!(plan.servers().all(|s| s.index() >= p.n - p.f));
        assert_eq!(CrashPlanSpec::None.instantiate(p).remaining(), 0);
        let report = Scenario::new(p)
            .crashes(CrashPlanSpec::CrashF)
            .seed(5)
            .run()
            .unwrap();
        assert!(report.is_consistent());
    }

    #[test]
    fn crash_clients_spec_abandons_and_stays_consistent() {
        let p = params(2, 1, 4);
        assert_eq!(CrashPlanSpec::CrashClients.instantiate(p).remaining(), 0);
        assert_eq!(
            CrashPlanSpec::CrashClients.client_crashes(p),
            vec![(10, Issuer::Writer(1)), (20, Issuer::Reader(0))]
        );
        // A long enough workload that both crash times land mid-run.
        let report = Scenario::new(p)
            .workload(WorkloadSpec::WriteSequential {
                rounds: 3,
                read_after_each: true,
            })
            .crashes(CrashPlanSpec::CrashClients)
            .seed(11)
            .run()
            .unwrap();
        assert!(report.is_consistent(), "{:?}", report.check_violation);
        assert!(report.is_fully_checked());
        // The crashed clients stopped issuing: fewer ops complete than the
        // workload describes, but the run still terminates cleanly.
        assert!(report.completed_ops > 0);
        assert!(report.completed_ops < 12);
        // Identical scenario values replay the identical run.
        let again = Scenario::new(p)
            .workload(WorkloadSpec::WriteSequential {
                rounds: 3,
                read_after_each: true,
            })
            .crashes(CrashPlanSpec::CrashClients)
            .seed(11)
            .run()
            .unwrap();
        assert_eq!(report.history, again.history);
        assert_eq!(report.completed_ops, again.completed_ops);
    }

    #[test]
    fn spec_names_round_trip() {
        for s in SchedulerSpec::ALL {
            assert_eq!(SchedulerSpec::from_name(s.name()), Some(s));
            assert_eq!(s.to_string(), s.name());
        }
        for c in CrashPlanSpec::ALL {
            assert_eq!(CrashPlanSpec::from_name(c.name()), Some(c));
            assert_eq!(c.to_string(), c.name());
        }
        assert_eq!(SchedulerSpec::from_name("nope"), None);
        assert_eq!(CrashPlanSpec::from_name("nope"), None);
    }

    #[test]
    fn bounded_recording_modes_leave_metrics_untouched() {
        let scenario = Scenario::new(params(2, 1, 4))
            .workload(WorkloadSpec::RandomMixed {
                readers: 2,
                total: 12,
                write_percent: 50,
            })
            .seed(41);
        let full = scenario.run().unwrap();
        assert!(full.is_fully_checked());
        for mode in [
            RecordingModeSpec::Digest,
            RecordingModeSpec::Ring(1024),
            RecordingModeSpec::Ring(1),
        ] {
            let bounded = scenario.clone().recording(mode).run().unwrap();
            assert_eq!(bounded.metrics, full.metrics, "{mode}");
            assert_eq!(bounded.completed_ops, full.completed_ops, "{mode}");
            assert_eq!(bounded.history, full.history, "{mode}");
        }
    }

    #[test]
    fn ring_recording_checks_online_with_full_coverage() {
        let scenario = Scenario::new(params(2, 1, 4))
            .workload(WorkloadSpec::ConcurrentReadWrite { rounds: 2 })
            .check(ConsistencyCheck::WsRegular)
            .seed(9);
        let full = scenario.run().unwrap();
        let ring = scenario
            .clone()
            .recording(RecordingModeSpec::Ring(1024))
            .run()
            .unwrap();
        assert!(ring.is_fully_checked(), "{:?}", ring.check_coverage);
        assert_eq!(ring.is_consistent(), full.is_consistent());
        assert_eq!(ring.check_coverage, crate::runner::CheckCoverage::Complete);
    }

    #[test]
    fn tiny_rings_report_truncated_instead_of_guessing() {
        // A one-event window cannot cover a whole engine step, so the online
        // checker must miss events and say so.
        let report = Scenario::new(params(2, 1, 4))
            .recording(RecordingModeSpec::Ring(1))
            .check(ConsistencyCheck::WsRegular)
            .seed(3)
            .run()
            .unwrap();
        assert!(!report.is_fully_checked());
        assert_eq!(
            report.check_coverage,
            crate::runner::CheckCoverage::Truncated
        );
        // No violation was *observed*; the report does not claim one.
        assert!(report.check_violation.is_none());
    }

    #[test]
    fn digest_recording_is_metrics_only() {
        let scenario = Scenario::new(params(2, 1, 4)).seed(5);
        let report = scenario
            .clone()
            .recording(RecordingModeSpec::Digest)
            .run()
            .unwrap();
        assert_eq!(
            report.check_coverage,
            crate::runner::CheckCoverage::NotRecorded
        );
        assert!(report.check_violation.is_none());
        // With no check requested there is nothing to miss.
        let unchecked = scenario
            .recording(RecordingModeSpec::Digest)
            .check(ConsistencyCheck::None)
            .run()
            .unwrap();
        assert!(unchecked.is_fully_checked());
    }

    #[test]
    fn ring_runs_retain_at_most_the_capacity() {
        let scenario = Scenario::new(params(2, 1, 4))
            .workload(WorkloadSpec::RandomMixed {
                readers: 1,
                total: 20,
                write_percent: 60,
            })
            .recording(RecordingModeSpec::Ring(16))
            .seed(77);
        let mut run = scenario.build();
        assert_eq!(run.recording_mode(), RecordingModeSpec::Ring(16));
        run.run().unwrap();
        let history = run.history();
        assert!(history.total_events() > 16);
        assert!(history.peak_retained_events() <= 16);
        // Digest runs retain nothing at all.
        let mut run = Scenario::new(params(2, 1, 4))
            .recording(RecordingModeSpec::Digest)
            .seed(77)
            .build();
        run.run().unwrap();
        assert_eq!(run.history().peak_retained_events(), 0);
        assert_eq!(run.history().retained_events(), 0);
        assert!(run.history().total_events() > 0);
    }

    #[test]
    fn crashed_clients_abandon_their_ops_and_the_run_completes() {
        // Writer 0 crashes while its second write is in flight; the rest of
        // the workload (other clients) must still complete, the report must
        // count the abandoned op as pending, and the online verdict must
        // stay complete — the abandoned write no longer pins the checker's
        // window.
        use crate::generator::WorkloadOp;
        use regemu_fpsm::HighOp;
        let steps = vec![
            WorkloadOp {
                issuer: Issuer::Writer(0),
                op: HighOp::Write(1),
                sequential: true,
            },
            WorkloadOp {
                issuer: Issuer::Writer(0),
                op: HighOp::Write(2),
                sequential: false,
            },
            WorkloadOp {
                issuer: Issuer::Reader(0),
                op: HighOp::Read,
                sequential: true,
            },
            // Skipped: the writer is dead by the time the cursor gets here.
            WorkloadOp {
                issuer: Issuer::Writer(0),
                op: HighOp::Write(3),
                sequential: true,
            },
            WorkloadOp {
                issuer: Issuer::Reader(1),
                op: HighOp::Read,
                sequential: true,
            },
        ];
        for recording in [RecordingModeSpec::Full, RecordingModeSpec::Ring(1024)] {
            let scenario = Scenario::new(params(2, 1, 4))
                .workload_steps(Workload::from_steps(steps.clone()))
                .recording(recording)
                .check(ConsistencyCheck::WsRegular)
                .seed(12);
            let mut run = scenario.build();
            // Drive until the second write is in flight, then kill writer 0.
            while run.completed_ops() < 1 {
                run.step().unwrap();
            }
            while run.sim().invoked_high_count() < 2 {
                run.step().unwrap();
            }
            let writer = ClientId::new(0);
            assert!(run.sim().current_high_op(writer).is_some());
            run.crash_client(writer).unwrap();
            assert!(run.sim().is_client_crashed(writer));
            run.run().unwrap_or_else(|e| panic!("{recording}: {e}"));
            let report = run.into_report();
            // Both reads completed; write 3 was skipped; write 2 is pending.
            assert_eq!(report.completed_ops, 3, "{recording}");
            let pending: Vec<_> = report
                .history
                .ops()
                .iter()
                .filter(|o| !o.is_complete())
                .collect();
            assert_eq!(pending.len(), 1, "{recording}");
            assert_eq!(pending[0].op, HighOp::Write(2));
            assert!(
                report.is_fully_checked(),
                "{recording}: {:?}",
                report.check_coverage
            );
            assert!(
                report.is_consistent(),
                "{recording}: {:?}",
                report.check_violation
            );
        }
    }

    #[test]
    fn folded_interval_eviction_bounds_the_digest() {
        let base = Scenario::new(params(2, 1, 4))
            .workload(WorkloadSpec::RandomMixed {
                readers: 2,
                total: 200,
                write_percent: 50,
            })
            .recording(RecordingModeSpec::Ring(1024))
            .check(ConsistencyCheck::WsRegular)
            .seed(33);
        let mut plain = base.clone().build();
        plain.run().unwrap();
        let full_intervals = plain.history().retained_intervals();
        assert_eq!(full_intervals as u64, plain.history().total_intervals());
        let plain_metrics = plain.metrics();

        let mut evicting = base.clone().evict_folded_intervals().build();
        evicting.run().unwrap();
        let history = evicting.history();
        assert_eq!(history.total_intervals(), full_intervals as u64);
        assert!(
            history.peak_retained_intervals() < full_intervals / 4,
            "peak {} of {} intervals retained",
            history.peak_retained_intervals(),
            full_intervals
        );
        // Metrics and the verdict are untouched by eviction.
        assert_eq!(evicting.metrics(), plain_metrics);
        let report = evicting.into_report();
        assert!(report.is_fully_checked());
        assert!(report.is_consistent(), "{:?}", report.check_violation);
        assert_eq!(report.completed_ops, 200);

        // Without an online checker the flag is inert.
        let mut unchecked = base
            .recording(RecordingModeSpec::Full)
            .evict_folded_intervals()
            .build();
        unchecked.run().unwrap();
        assert_eq!(
            unchecked.history().retained_intervals() as u64,
            unchecked.history().total_intervals()
        );
    }

    #[test]
    fn drain_reaches_quiescence_under_fair_scheduling() {
        let report = Scenario::new(params(2, 1, 4))
            .workload(WorkloadSpec::ConcurrentReadWrite { rounds: 1 })
            .seed(17)
            .drain()
            .run()
            .unwrap();
        assert!(report.is_consistent());
        assert_eq!(
            report.metrics.low_level_triggers,
            report.metrics.low_level_responses
        );
    }

    #[test]
    fn adversarial_drain_stops_at_blocked_quiescence() {
        // Under the covering adversary the blocked writes are never
        // delivered: the drain must settle instead of erroring.
        let report = Scenario::new(params(2, 1, 4))
            .scheduler(SchedulerSpec::CoverAdversary)
            .seed(17)
            .drain()
            .run()
            .unwrap();
        assert!(report.is_consistent());
    }
}
