//! Automatic failure shrinking (delta debugging).
//!
//! [`shrink_case`] reduces a failing [`FuzzCase`] to a minimal case that
//! still fails with the *same* [`FailureKind`]: it repeatedly runs a fixed
//! battery of reduction passes — minimal failing workload prefix, crash
//! removal, schedule-suffix truncation (largest chunk first), decision
//! zeroing, workload rewrite/flip removal, delay-perturbation clearing,
//! tail-seed zeroing — until one full round changes nothing. Every
//! pass is a deterministic function of the current case, so the result is a
//! fixed point: shrinking a shrunk case returns it unchanged, and the same
//! failure always shrinks to the same repro.
//!
//! [`shrink_failure`] wraps the shrunk case into a [`FailureReport`]: the
//! portable [`RecordedSchedule`] trace plus the replay command line.

use super::trace::RecordedSchedule;
use super::{execute, FailureKind, FuzzCase, FuzzConfig, FuzzFailure};

/// Re-executes `case` and reports its verdict when it fails with `kind`.
fn fails_same(config: &FuzzConfig, case: &FuzzCase, kind: &FailureKind) -> Option<String> {
    let outcome = execute(config, case);
    match outcome.kind {
        Some(ref k) if k == kind => Some(outcome.verdict),
        _ => None,
    }
}

/// Delta-debugs `case` to a minimal case still failing with `kind`.
///
/// Returns the shrunk case and the verdict of its failing run. The input
/// must actually fail with `kind` under `config` (which is what the fuzzer
/// recorded); if it does not — say the config was edited by hand — the case
/// is returned unshrunk with the verdict of the original failure re-derived.
pub fn shrink_case(config: &FuzzConfig, case: &FuzzCase, kind: &FailureKind) -> (FuzzCase, String) {
    let mut best = case.clone();
    let mut verdict = match fails_same(config, &best, kind) {
        Some(v) => v,
        None => {
            let verdict = execute(config, &best).verdict;
            return (best, verdict);
        }
    };

    // Pass 0, once: *close* the schedule. The executed decision ranks replay
    // the identical run without the fair tail or the delay perturbation, so
    // swapping them in (with a canonical zero seed) always preserves the
    // failure and makes the repro tail-independent. Applied only when the
    // case still depends on its seed, so re-shrinking a shrunk case (seed 0,
    // no delays) skips it and stays a fixed point.
    if best.seed != 0 || !best.delays.is_empty() {
        let outcome = execute(config, &best);
        let closed = FuzzCase {
            decisions: outcome.executed.iter().map(|&(c, _)| c).collect(),
            delays: Vec::new(),
            seed: 0,
            ..best.clone()
        };
        if let Some(v) = fails_same(config, &closed, kind) {
            best = closed;
            verdict = v;
        }
    }

    loop {
        let before = best.clone();

        // Pass 1: the shortest failing workload prefix, searched from 1 up.
        for len in 1..best.workload_len {
            let candidate = FuzzCase {
                workload_len: len,
                ..best.clone()
            };
            if let Some(v) = fails_same(config, &candidate, kind) {
                best = candidate;
                verdict = v;
                break;
            }
        }

        // Pass 2: drop crashes that the failure does not need.
        let mut idx = best.crashes.len();
        while idx > 0 {
            idx -= 1;
            let mut candidate = best.clone();
            candidate.crashes.remove(idx);
            if let Some(v) = fails_same(config, &candidate, kind) {
                best = candidate;
                verdict = v;
            }
        }

        // Pass 3: truncate the decision suffix, largest chunk first.
        let mut chunk = best.decisions.len();
        while chunk > 0 {
            while best.decisions.len() >= chunk {
                let mut candidate = best.clone();
                let keep = candidate.decisions.len() - chunk;
                candidate.decisions.truncate(keep);
                match fails_same(config, &candidate, kind) {
                    Some(v) => {
                        best = candidate;
                        verdict = v;
                    }
                    None => break,
                }
            }
            chunk /= 2;
        }

        // Pass 4: zero individual decisions (rank 0 = deliver the oldest op,
        // the least surprising choice). Bounded so pathological schedules do
        // not turn shrinking quadratic.
        if best.decisions.len() <= 128 {
            for idx in 0..best.decisions.len() {
                if best.decisions[idx] == 0 {
                    continue;
                }
                let mut candidate = best.clone();
                candidate.decisions[idx] = 0;
                if let Some(v) = fails_same(config, &candidate, kind) {
                    best = candidate;
                    verdict = v;
                }
            }
        }

        // Pass 5: drop workload rewrites and flips the failure does not
        // need (back-to-front, like crashes).
        let mut idx = best.rewrites.len();
        while idx > 0 {
            idx -= 1;
            let mut candidate = best.clone();
            candidate.rewrites.remove(idx);
            if let Some(v) = fails_same(config, &candidate, kind) {
                best = candidate;
                verdict = v;
            }
        }
        let mut idx = best.flips.len();
        while idx > 0 {
            idx -= 1;
            let mut candidate = best.clone();
            candidate.flips.remove(idx);
            if let Some(v) = fails_same(config, &candidate, kind) {
                best = candidate;
                verdict = v;
            }
        }

        // Pass 6: clear the delay perturbation wholesale (the repro is
        // simplest as a pure decision replay), else zero individual buckets.
        if !best.delays.is_empty() {
            let candidate = FuzzCase {
                delays: Vec::new(),
                ..best.clone()
            };
            if let Some(v) = fails_same(config, &candidate, kind) {
                best = candidate;
                verdict = v;
            } else {
                for idx in 0..best.delays.len() {
                    if best.delays[idx] == 0 {
                        continue;
                    }
                    let mut candidate = best.clone();
                    candidate.delays[idx] = 0;
                    if let Some(v) = fails_same(config, &candidate, kind) {
                        best = candidate;
                        verdict = v;
                    }
                }
            }
        }

        // Pass 7: a canonical fair tail.
        if best.seed != 0 {
            let candidate = FuzzCase {
                seed: 0,
                ..best.clone()
            };
            if let Some(v) = fails_same(config, &candidate, kind) {
                best = candidate;
                verdict = v;
            }
        }

        if best == before {
            break;
        }
    }
    (best, verdict)
}

/// A triaged, minimized failure: everything needed to reproduce it.
#[derive(Clone, Debug)]
pub struct FailureReport {
    /// The shrunk repro as a portable trace.
    pub trace: RecordedSchedule,
    /// Why the run fails.
    pub kind: FailureKind,
    /// Verdict of the shrunk failing run (what a replay must reproduce).
    pub verdict: String,
    /// Fuzzer iteration the original failure was found at.
    pub found_at: usize,
}

impl FailureReport {
    /// The command line that replays the repro from its trace file.
    pub fn replay_command(&self, trace_path: &str) -> String {
        format!("fuzz_campaign replay {trace_path}")
    }

    /// Deterministic text rendering: header lines followed by the embedded
    /// trace, so the report file is itself replayable after stripping the
    /// header.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("regemu-failure-report v1\n");
        out.push_str(&format!("kind {}\n", self.kind.label()));
        out.push_str(&format!("verdict {}\n", self.verdict));
        out.push_str(&format!("found-at {}\n", self.found_at));
        out.push_str(&format!("replay {}\n", self.replay_command("<trace-file>")));
        out.push_str(&self.trace.to_text());
        out
    }
}

/// Shrinks a fuzzer-found failure and packages it as a [`FailureReport`].
pub fn shrink_failure(config: &FuzzConfig, failure: &FuzzFailure) -> FailureReport {
    let (case, verdict) = shrink_case(config, &failure.case, &failure.kind);
    FailureReport {
        trace: RecordedSchedule::from_parts(config, &case),
        kind: failure.kind.clone(),
        verdict,
        found_at: failure.iteration,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuzz::{replay, FuzzEmulation};
    use regemu_bounds::Params;
    use regemu_core::FaultyKind;

    /// A config whose seed case already fails: the skipped-update bug loses
    /// every write even under a fair schedule.
    fn failing_setup() -> (FuzzConfig, FuzzCase, FailureKind, String) {
        let config = FuzzConfig::new(Params::new(1, 1, 3).unwrap())
            .emulation(FuzzEmulation::Faulty(FaultyKind::SkippedUpdateRound));
        let case = FuzzCase {
            decisions: vec![3, 1, 4, 1, 5, 9, 2, 6],
            crashes: vec![(40, 0)],
            // Noise the shrinker must strip: an irrelevant value rewrite on
            // an out-of-prefix op and a flip that never matches a write.
            rewrites: vec![(1, (2 << 32) | 5)],
            flips: vec![1],
            ..FuzzCase::seed_case(config.full_workload().len(), 77)
        };
        let outcome = execute(&config, &case);
        let kind = outcome.kind.expect("the seeded bug must fail");
        (config, case, kind, outcome.verdict)
    }

    #[test]
    fn the_shrunk_case_still_fails_the_same_kind_and_is_smaller() {
        let (config, case, kind, _) = failing_setup();
        let (shrunk, verdict) = shrink_case(&config, &case, &kind);
        assert_eq!(fails_same(&config, &shrunk, &kind), Some(verdict));
        // The noise we injected is gone: the crash, rewrite and flip were
        // all irrelevant, the workload shrinks to a single write+read pair,
        // the tail is canonical.
        assert!(shrunk.crashes.is_empty(), "{:?}", shrunk.crashes);
        assert!(shrunk.rewrites.is_empty(), "{:?}", shrunk.rewrites);
        assert!(shrunk.flips.is_empty(), "{:?}", shrunk.flips);
        assert!(shrunk.delays.is_empty(), "{:?}", shrunk.delays);
        assert!(shrunk.workload_len <= 2, "{}", shrunk.workload_len);
        assert_eq!(shrunk.seed, 0);
        assert!(shrunk.decisions.len() <= case.decisions.len());
    }

    #[test]
    fn shrinking_is_deterministic_and_idempotent() {
        let (config, case, kind, _) = failing_setup();
        let (a, va) = shrink_case(&config, &case, &kind);
        let (b, vb) = shrink_case(&config, &case, &kind);
        assert_eq!(a, b);
        assert_eq!(va, vb);
        // A shrunk case is a fixed point.
        let (again, v_again) = shrink_case(&config, &a, &kind);
        assert_eq!(again, a);
        assert_eq!(v_again, va);
    }

    #[test]
    fn the_failure_report_trace_replays_to_the_identical_verdict() {
        let (config, case, kind, verdict) = failing_setup();
        let failure = FuzzFailure {
            case,
            kind: kind.clone(),
            verdict,
            iteration: 3,
        };
        let report = shrink_failure(&config, &failure);
        assert_eq!(report.found_at, 3);
        assert_eq!(report.kind, kind);
        // Round-trip through text, then replay: byte-identical verdict.
        let parsed = RecordedSchedule::from_text(&report.trace.to_text()).unwrap();
        let outcome = replay(&parsed).unwrap();
        assert_eq!(outcome.kind, Some(kind));
        assert_eq!(outcome.verdict, report.verdict);
        let text = report.to_text();
        assert!(text.contains("fuzz_campaign replay"));
        assert!(text.contains("regemu-trace v1"));
    }

    #[test]
    fn a_case_that_does_not_fail_is_returned_unshrunk() {
        let (config, case, _, _) = failing_setup();
        // Ask for a kind the case does not exhibit.
        let (out, _) = shrink_case(&config, &case, &FailureKind::Stuck);
        assert_eq!(out, case);
    }
}
