//! # regemu-fpsm — asynchronous fault-prone shared memory
//!
//! A deterministic, fully-instrumented simulator of the *asynchronous
//! fault-prone shared memory* model of Jayanti, Chandra & Toueg, extended —
//! exactly as in Chockler & Spiegelman, *Space Complexity of Fault-Tolerant
//! Register Emulations* (PODC 2017) — with a placement function `δ : B → S`
//! mapping base objects to crash-prone servers.
//!
//! The crate provides:
//!
//! * [`topology::Topology`] — servers, base objects and the placement `δ`;
//! * [`object::BaseObject`] — atomic read/write registers, max-registers and
//!   CAS objects;
//! * [`client::ClientProtocol`] — the event-driven state-machine interface an
//!   emulation algorithm implements at each client;
//! * [`sim::Simulation`] — the engine exposing the primitive transitions
//!   (invoke / deliver / drop / crash) so that *any* environment behaviour,
//!   including the paper's lower-bound adversary, can be expressed as a
//!   driver;
//! * [`scheduler::Scheduler`] — the pluggable run-driver interface, with
//!   [`driver::FairDriver`] (seeded fair scheduling and crash plans),
//!   [`scheduler::RoundRobinScheduler`] and the strategy-driven
//!   [`scheduler::AdversarialScheduler`] as implementations;
//! * [`history::History`] and [`metrics::RunMetrics`] — the recorded run and
//!   its space-consumption metrics (resource consumption, covered registers,
//!   per-server occupancy, point contention). How much of the raw event
//!   stream is retained is selected by a [`history::RecordingMode`] (`Full`,
//!   `Digest`, `Ring`); the digests — and hence the metrics — are identical
//!   in every mode;
//! * [`telemetry::SimTelemetry`] — the sampled, observation-only telemetry
//!   hook the simulation attaches when `regemu_obs::enabled()` is on;
//!   histories and reports are byte-identical with telemetry on or off (the
//!   non-perturbation contract).
//!
//! ## Example
//!
//! ```
//! use regemu_fpsm::prelude::*;
//!
//! // One register on each of three servers.
//! let mut topology = Topology::new(3);
//! let objects = topology.add_object_per_server(ObjectKind::Register);
//!
//! // A trivial protocol that completes immediately.
//! let mut sim = Simulation::new(topology, SimConfig::with_fault_threshold(1));
//! let client = sim.register_client(Box::new(NoopProtocol));
//! let op = sim.invoke(client, HighOp::Write(7))?;
//! assert_eq!(sim.result_of(op), Some(HighResponse::WriteAck));
//! assert_eq!(objects.len(), 3);
//! # Ok::<(), regemu_fpsm::SimError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod driver;
pub mod error;
pub mod event;
pub mod history;
pub mod ids;
pub mod metrics;
pub mod node;
pub mod object;
pub mod op;
pub mod scheduler;
pub mod sim;
pub mod telemetry;
pub mod topology;
pub mod value;

pub use client::{ClientProtocol, Context, Delivery, NoopProtocol};
pub use driver::{CrashPlan, FairDriver};
pub use error::SimError;
pub use event::Event;
pub use history::{HighInterval, History, RecordingMode};
pub use ids::{ClientId, HighOpId, ObjectId, OpId, ServerId, Time};
pub use metrics::RunMetrics;
pub use node::{ClientEffects, ClientNode, NodeError, ServerNode};
pub use object::{BaseObject, ObjectError, ObjectKind};
pub use op::{BaseOp, BaseResponse, HighOp, HighResponse};
pub use scheduler::{
    AdversarialScheduler, BlockStrategy, DelayedScheduler, RoundRobinScheduler, Scheduler,
};
pub use sim::{DecisionRecord, DeliveryOutcome, PendingOp, SimConfig, Simulation};
pub use telemetry::SimTelemetry;
pub use topology::Topology;
pub use value::{Payload, Value};

/// Convenient glob import of the most frequently used types.
pub mod prelude {
    pub use crate::client::{ClientProtocol, Context, Delivery, NoopProtocol};
    pub use crate::driver::{CrashPlan, FairDriver};
    pub use crate::error::SimError;
    pub use crate::history::{History, RecordingMode};
    pub use crate::ids::{ClientId, HighOpId, ObjectId, OpId, ServerId, Time};
    pub use crate::metrics::RunMetrics;
    pub use crate::node::{ClientEffects, ClientNode, NodeError, ServerNode};
    pub use crate::object::ObjectKind;
    pub use crate::op::{BaseOp, BaseResponse, HighOp, HighResponse};
    pub use crate::scheduler::{
        AdversarialScheduler, BlockStrategy, DelayedScheduler, RoundRobinScheduler, Scheduler,
    };
    pub use crate::sim::{DecisionRecord, SimConfig, Simulation};
    pub use crate::topology::Topology;
    pub use crate::value::{Payload, Value};
}
