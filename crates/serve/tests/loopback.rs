//! End-to-end loopback TCP runs checked against the simulator's machinery.
//!
//! The acceptance bar for the live service: a clean n = 3 / k = 4 run's
//! recorded history gets the same verdict class the simulator gives (OK from
//! both the offline and streaming checkers), and the seeded
//! `faulty-weak-quorum` emulation is *caught* on a live run under the
//! ablation schedule (writes to two servers delayed, the acknowledging
//! server crashed, a fresh reader misses the completed write).

use regemu_bounds::Params;
use regemu_fpsm::{ClientId, HighOp, HighResponse, ServerId, ServerNode, Topology};
use regemu_serve::prelude::*;
use regemu_workloads::conform::{conform_verdict, ConformRecorder};
use regemu_workloads::fuzz::FuzzEmulation;
use regemu_workloads::runner::ConsistencyCheck;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Scratch directory for one test's conformance logs.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir =
            std::env::temp_dir().join(format!("regemu-loopback-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Boots one TCP server per topology server, logging to `dir`, and returns
/// the handles plus their addresses and log paths.
fn boot_cluster(
    topology: &Topology,
    scratch: &Scratch,
) -> (Vec<ServerHandle>, Vec<SocketAddr>, Vec<PathBuf>) {
    let mut handles = Vec::new();
    let mut addrs = Vec::new();
    let mut logs = Vec::new();
    for s in 0..topology.server_count() {
        let log = scratch.path(&format!("node{s}.conform"));
        let handle = serve_tcp(
            ServerNode::new(topology, ServerId::new(s)),
            "127.0.0.1:0".parse().unwrap(),
            Some(log.as_path()),
        )
        .unwrap();
        addrs.push(handle.local_addr().unwrap());
        handles.push(handle);
        logs.push(log);
    }
    (handles, addrs, logs)
}

#[test]
fn clean_k4_fleet_run_agrees_with_the_simulator_verdict() {
    let scratch = Scratch::new("clean");
    let params = Params::new(4, 1, 3).unwrap();
    let emulation = FuzzEmulation::from_name("space-optimal").unwrap();
    let topology = emulation.build(params).topology().clone();
    let (handles, addrs, mut logs) = boot_cluster(&topology, &scratch);

    let recorder = Arc::new(ConformRecorder::new());
    let spec = FleetSpec {
        emulation,
        params,
        writers: 4,
        readers: 2,
        rounds: 3,
        read_after_each: true,
        rate: None,
    };
    let outcome = run_fleet(
        spec,
        &addrs,
        &ClientOptions::default(),
        Some(Arc::clone(&recorder)),
    )
    .unwrap();
    // 4 writers × 3 (write + read-back) + 2 readers × 3 reads.
    assert_eq!(outcome.ops, 4 * 3 * 2 + 2 * 3);
    assert_eq!(outcome.timeouts, 0);
    assert_eq!(outcome.errors, 0);
    assert_eq!(outcome.histogram.count(), outcome.ops);
    assert!(outcome.histogram.p50() <= outcome.histogram.p999());

    let client_log = scratch.path("clients.conform");
    recorder.save(&client_log).unwrap();
    logs.push(client_log);
    for handle in handles {
        handle.join().unwrap();
    }

    for check in [ConsistencyCheck::WsSafe, ConsistencyCheck::WsRegular] {
        let verdict = conform_verdict(&logs, check).unwrap();
        assert_eq!(verdict.complete_ops, outcome.ops as usize);
        assert!(
            verdict.is_consistent(),
            "clean run flagged by {check}: {verdict}"
        );
        assert!(verdict.agrees(), "checkers disagree: {verdict}");
    }
}

/// The ablation schedule, shared by the faulty run and its control: the
/// writer's low-level *writes* to servers 1 and 2 are delayed forever (reads
/// pass), then server 0 — the only server that could acknowledge — crashes,
/// then a fresh reader (no delays) reads from the surviving majority.
///
fn ablation_run(tag: &str, emulation: FuzzEmulation, expect_write_ack: bool) {
    let scratch = Scratch::new(tag);
    let params = Params::new(1, 1, 3).unwrap();
    let built = emulation.build(params);
    let topology = built.topology().clone();
    let (mut handles, addrs, mut logs) = boot_cluster(&topology, &scratch);
    let recorder = Arc::new(ConformRecorder::new());

    let writer_options = ClientOptions {
        // The control writer blocks forever on its 2-ack quorum; keep the
        // test fast.
        op_timeout: Duration::from_millis(500),
        hold_writes: vec![1, 2],
        ..ClientOptions::default()
    };
    let mut writer = LiveClient::connect_tcp(
        topology.clone(),
        ClientId::new(0),
        built.writer_protocol(0),
        &addrs,
        writer_options,
    )
    .unwrap()
    .with_recorder(Arc::clone(&recorder), 0);
    let write = writer.run_op(HighOp::Write(9));
    if expect_write_ack {
        // The weak-quorum writer is satisfied by server 0 alone.
        assert_eq!(write.unwrap(), HighResponse::WriteAck);
    } else {
        // The paper's writer needs |R_0| - f = 2 acknowledgements and only
        // server 0 can answer: the write must still be pending.
        assert!(
            matches!(write, Err(ServeError::Timeout { .. })),
            "correct writer completed under the ablation schedule"
        );
    }
    drop(writer);

    // Crash the one server that acknowledged (within the f = 1 budget).
    let node0 = handles.remove(0);
    node0.join().unwrap();

    // A fresh reader sees only the surviving majority {1, 2}.
    let mut reader = LiveClient::connect_tcp(
        topology,
        ClientId::new(1),
        built.reader_protocol(),
        &addrs,
        ClientOptions::default(),
    )
    .unwrap()
    .with_recorder(Arc::clone(&recorder), 1);
    assert_eq!(reader.live_servers(), 2);
    assert_eq!(
        reader.run_op(HighOp::Read).unwrap(),
        HighResponse::ReadValue(0)
    );
    drop(reader);

    let client_log = scratch.path("clients.conform");
    recorder.save(&client_log).unwrap();
    logs.push(client_log);
    for handle in handles {
        handle.join().unwrap();
    }

    let verdict = conform_verdict(&logs, ConsistencyCheck::WsSafe).unwrap();
    assert!(verdict.agrees(), "checkers disagree: {verdict}");
    if expect_write_ack {
        assert!(
            !verdict.is_consistent(),
            "live weak-quorum run escaped the checkers: {verdict}"
        );
    } else {
        assert!(
            verdict.is_consistent(),
            "correct emulation flagged under the ablation schedule: {verdict}"
        );
    }
}

#[test]
fn live_weak_quorum_node_is_caught_by_the_conformance_checkers() {
    ablation_run(
        "faulty",
        FuzzEmulation::from_name("faulty-weak-quorum").unwrap(),
        true,
    );
}

#[test]
fn correct_emulation_survives_the_same_ablation_schedule() {
    ablation_run(
        "control",
        FuzzEmulation::from_name("space-optimal").unwrap(),
        false,
    );
}

#[test]
fn clients_degrade_gracefully_when_a_node_dies_mid_run() {
    let scratch = Scratch::new("degrade");
    let params = Params::new(2, 1, 3).unwrap();
    let emulation = FuzzEmulation::from_name("space-optimal").unwrap();
    let topology = emulation.build(params).topology().clone();
    let (mut handles, addrs, _logs) = boot_cluster(&topology, &scratch);

    let built = emulation.build(params);
    let mut writer = LiveClient::connect_tcp(
        topology,
        ClientId::new(0),
        built.writer_protocol(0),
        &addrs,
        ClientOptions::default(),
    )
    .unwrap();
    assert_eq!(
        writer.run_op(HighOp::Write(1)).unwrap(),
        HighResponse::WriteAck
    );

    // Kill server 2 mid-run: f = 1 crash, the emulation must keep going.
    let node2 = handles.remove(2);
    node2.join().unwrap();

    for round in 2..6 {
        assert_eq!(
            writer.run_op(HighOp::Write(round)).unwrap(),
            HighResponse::WriteAck,
            "write {round} did not survive the crash"
        );
        assert_eq!(
            writer.run_op(HighOp::Read).unwrap(),
            HighResponse::ReadValue(round)
        );
    }
    assert!(writer.live_servers() >= 2);
    for handle in handles {
        handle.join().unwrap();
    }
}
