//! End-to-end `frontier_campaign` binary: typed rejection of infeasible
//! grid points (exit code 2, no silent skip), and a real multi-process
//! sharded campaign — killed mid-run via `--exit-after`, resumed, and
//! merge-only'd — whose frontier table stays byte-identical to the
//! single-process run.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

fn frontier_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_frontier_campaign"))
}

fn worker_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_campaign_worker"))
}

fn temp_path(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "regemu-frontier-process-{tag}-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&path);
    let _ = fs::remove_file(&path);
    path
}

const GRID: &str = "2/1/4,5/2/6";
const SEEDS: &str = "1,2";

#[test]
fn infeasible_grid_points_are_rejected_with_a_typed_error() {
    // n = 4 < 2f+1 = 5 makes z = 0: the binary must refuse the whole grid
    // up front with the bound-level reason, not run the feasible points.
    let out = Command::new(frontier_bin())
        .args(["--grid", "2/1/4,3/2/4", "--quiet"])
        .output()
        .expect("spawn frontier_campaign");
    assert_eq!(out.status.code(), Some(2), "usage-error exit code");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("infeasible frontier grid point k=3, f=2, n=4"),
        "stderr must name the offending point: {stderr}"
    );
    assert!(
        stderr.contains("z = ⌊(n-f-1)/f⌋ is 0"),
        "stderr must carry the bound-level reason: {stderr}"
    );
    assert!(
        String::from_utf8_lossy(&out.stdout).is_empty(),
        "no partial table on a rejected grid"
    );
}

#[test]
fn sharded_kill_resume_campaign_matches_the_single_process_table() {
    // Single-process reference.
    let single = temp_path("single.txt");
    let status = Command::new(frontier_bin())
        .args(["--grid", GRID, "--seeds", SEEDS, "--quiet", "--text"])
        .arg(&single)
        .status()
        .expect("spawn frontier_campaign");
    assert!(status.success());
    let single_table = fs::read_to_string(&single).unwrap();
    assert!(single_table.contains("lower"), "{single_table}");
    assert!(single_table.contains("upper"));
    assert!(single_table.contains("2f+1"));

    // 2-shard campaign over real worker processes, killed after 1 shard.
    let spool = temp_path("spool");
    let paused = Command::new(frontier_bin())
        .args(["--grid", GRID, "--seeds", SEEDS, "--quiet"])
        .args(["--spool"])
        .arg(&spool)
        .args(["--shards", "2", "--workers", "2", "--exit-after", "1"])
        .args(["--worker-bin"])
        .arg(worker_bin())
        .output()
        .expect("spawn frontier_campaign");
    assert_eq!(
        paused.status.code(),
        Some(3),
        "exit-after must pause with the resumable exit code: {}",
        String::from_utf8_lossy(&paused.stderr)
    );

    // Resume the same spool (config comes from the spool, not the flags).
    let sharded = temp_path("sharded.txt");
    let resumed = Command::new(frontier_bin())
        .args(["--quiet", "--spool"])
        .arg(&spool)
        .args(["--worker-bin"])
        .arg(worker_bin())
        .args(["--text"])
        .arg(&sharded)
        .output()
        .expect("spawn frontier_campaign");
    assert!(
        resumed.status.success(),
        "{}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert_eq!(
        fs::read_to_string(&sharded).unwrap(),
        single_table,
        "resumed sharded campaign must merge byte-identically"
    );

    // Merge-only re-reads the finished shard files without running anything.
    let merged = temp_path("merged.txt");
    let merge = Command::new(frontier_bin())
        .args(["--quiet", "--merge-only", "--spool"])
        .arg(&spool)
        .args(["--text"])
        .arg(&merged)
        .status()
        .expect("spawn frontier_campaign");
    assert!(merge.success());
    assert_eq!(fs::read_to_string(&merged).unwrap(), single_table);

    for p in [single, sharded, merged] {
        let _ = fs::remove_file(p);
    }
    let _ = fs::remove_dir_all(spool);
}
