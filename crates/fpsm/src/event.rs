//! Run events.
//!
//! A run of an emulation algorithm is a sequence of configurations and
//! actions; the [`Event`] type records each action together with the logical
//! time at which it occurred, producing a complete, replayable trace of the
//! run. The trace is consumed by the consistency checkers (`regemu-spec`), by
//! the metrics module and by the lower-bound adversary.

use crate::ids::{ClientId, HighOpId, ObjectId, OpId, ServerId, Time};
use crate::op::{BaseOp, BaseResponse, HighOp, HighResponse};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A single action recorded in a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Event {
    /// A high-level operation was invoked at a client.
    Invoke {
        /// Step at which the invocation occurred.
        time: Time,
        /// Invoking client.
        client: ClientId,
        /// Identifier of the high-level operation.
        high_op: HighOpId,
        /// The invoked operation.
        op: HighOp,
    },
    /// A high-level operation returned at a client.
    Return {
        /// Step at which the return occurred.
        time: Time,
        /// Returning client.
        client: ClientId,
        /// Identifier of the high-level operation.
        high_op: HighOpId,
        /// The response returned to the client.
        response: HighResponse,
    },
    /// A low-level operation was triggered on a base object.
    Trigger {
        /// Step at which the trigger occurred.
        time: Time,
        /// Triggering client.
        client: ClientId,
        /// High-level operation on whose behalf this trigger was issued, if
        /// the client had one in progress.
        high_op: Option<HighOpId>,
        /// Identifier of the low-level operation.
        op_id: OpId,
        /// Target base object.
        object: ObjectId,
        /// The triggered operation.
        op: BaseOp,
    },
    /// A low-level operation responded (and, per Assumption 1, took effect).
    Respond {
        /// Step at which the response occurred.
        time: Time,
        /// Client that had triggered the operation.
        client: ClientId,
        /// Identifier of the low-level operation.
        op_id: OpId,
        /// Target base object.
        object: ObjectId,
        /// The response produced by the object.
        response: BaseResponse,
    },
    /// A server crashed (crashing every base object mapped to it).
    ServerCrash {
        /// Step at which the crash occurred.
        time: Time,
        /// The crashed server.
        server: ServerId,
    },
    /// A client crashed.
    ClientCrash {
        /// Step at which the crash occurred.
        time: Time,
        /// The crashed client.
        client: ClientId,
    },
}

impl Event {
    /// The logical time at which the event occurred.
    pub fn time(&self) -> Time {
        match self {
            Event::Invoke { time, .. }
            | Event::Return { time, .. }
            | Event::Trigger { time, .. }
            | Event::Respond { time, .. }
            | Event::ServerCrash { time, .. }
            | Event::ClientCrash { time, .. } => *time,
        }
    }

    /// The client involved in the event, if any.
    pub fn client(&self) -> Option<ClientId> {
        match self {
            Event::Invoke { client, .. }
            | Event::Return { client, .. }
            | Event::Trigger { client, .. }
            | Event::Respond { client, .. }
            | Event::ClientCrash { client, .. } => Some(*client),
            Event::ServerCrash { .. } => None,
        }
    }

    /// Returns `true` for events concerning high-level operations.
    pub fn is_high_level(&self) -> bool {
        matches!(self, Event::Invoke { .. } | Event::Return { .. })
    }

    /// Returns `true` for events concerning low-level operations.
    pub fn is_low_level(&self) -> bool {
        matches!(self, Event::Trigger { .. } | Event::Respond { .. })
    }

    /// Returns `true` for crash events.
    pub fn is_crash(&self) -> bool {
        matches!(self, Event::ServerCrash { .. } | Event::ClientCrash { .. })
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::Invoke {
                time,
                client,
                high_op,
                op,
            } => {
                write!(f, "[{time}] {client} invokes {op} ({high_op})")
            }
            Event::Return {
                time,
                client,
                high_op,
                response,
            } => {
                write!(f, "[{time}] {client} returns {response} ({high_op})")
            }
            Event::Trigger {
                time,
                client,
                op_id,
                object,
                op,
                ..
            } => {
                write!(f, "[{time}] {client} triggers {op} on {object} ({op_id})")
            }
            Event::Respond {
                time,
                client,
                op_id,
                object,
                response,
            } => {
                write!(
                    f,
                    "[{time}] {object} responds {response} to {client} ({op_id})"
                )
            }
            Event::ServerCrash { time, server } => write!(f, "[{time}] {server} crashes"),
            Event::ClientCrash { time, client } => write!(f, "[{time}] {client} crashes"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn event_accessors() {
        let e = Event::Trigger {
            time: 3,
            client: ClientId::new(1),
            high_op: Some(HighOpId::new(0)),
            op_id: OpId::new(7),
            object: ObjectId::new(2),
            op: BaseOp::Write(Value::new(1, 1)),
        };
        assert_eq!(e.time(), 3);
        assert_eq!(e.client(), Some(ClientId::new(1)));
        assert!(e.is_low_level());
        assert!(!e.is_high_level());
        assert!(!e.is_crash());

        let c = Event::ServerCrash {
            time: 9,
            server: ServerId::new(0),
        };
        assert_eq!(c.time(), 9);
        assert_eq!(c.client(), None);
        assert!(c.is_crash());
    }

    #[test]
    fn events_display() {
        let e = Event::Invoke {
            time: 1,
            client: ClientId::new(0),
            high_op: HighOpId::new(4),
            op: HighOp::Write(5),
        };
        assert_eq!(e.to_string(), "[1] c0 invokes WRITE(5) (hop4)");
        let r = Event::Return {
            time: 2,
            client: ClientId::new(0),
            high_op: HighOpId::new(4),
            response: HighResponse::WriteAck,
        };
        assert_eq!(r.to_string(), "[2] c0 returns OK (hop4)");
    }
}
