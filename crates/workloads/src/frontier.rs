//! Frontier campaigns: measured peak space versus the paper's bounds.
//!
//! The paper's central result is a *gap*: any `f`-tolerant `k`-writer
//! register emulation from read/write base registers needs at least
//! `kf + ⌈kf/(n-f-1)⌉·(f+1)` of them (Theorem 1), the wait-free
//! construction uses `kf + ⌈k/z⌉·(f+1)` (Theorem 3), and max-register/CAS
//! base objects collapse both to `2f + 1`. This module turns those closed
//! forms into executable oracles over real runs: a [`FrontierConfig`]
//! sweeps a `(k, f, n) × emulation × scheduler × crash-plan` grid, samples
//! **peak** space metrics per run (peak `|Cov(t)|`, per-server occupancy,
//! resource consumption — tracked incrementally by the engine, not
//! snapshotted at the end), and judges every `(point, construction)` pair
//! with [`regemu_bounds::BoundVerdict`]. The result is a Figure-1-style
//! [`FrontierReport`]: measured peaks next to the lower bound, the upper
//! bound and the `2f + 1` max-register/CAS row, with slack columns.
//!
//! A frontier run is a pure function of its [`FrontierConfig`]: the
//! underlying sweep is deterministic at any thread count, and
//! [`FrontierReport::from_sweep`] is a pure fold over the
//! [`SweepReport`] — so sharding the campaign over worker processes with
//! [`crate::campaign`] (kill/resume included) merges to a byte-identical
//! frontier table.
//!
//! ```
//! use regemu_workloads::frontier::{run_frontier, FrontierConfig};
//!
//! let mut config = FrontierConfig::quick();
//! config.threads = 2;
//! let report = run_frontier(&config)?;
//! assert!(report.all_within_upper());
//! # Ok::<(), regemu_workloads::frontier::FrontierError>(())
//! ```

use crate::campaign::{run_campaign, CampaignError, CampaignOptions};
use crate::runner::ConsistencyCheck;
use crate::scenario::{CrashPlanSpec, RecordingModeSpec, SchedulerSpec};
use crate::sweep::{run_sweep, SweepConfig, SweepReport, WorkloadSpec};
use crate::table::TextTable;
use regemu_bounds::{
    checked_register_bounds, max_register_bound, BoundClass, BoundError, BoundVerdict, Params,
};
use regemu_core::EmulationKind;
use std::collections::BTreeMap;
use std::fmt;

/// Errors of the frontier layer.
#[derive(Debug)]
pub enum FrontierError {
    /// A grid point is infeasible for an `f`-tolerant emulation — rejected
    /// up front with the bound-level reason instead of silently skipped.
    InfeasiblePoint {
        /// Number of writers requested.
        k: usize,
        /// Failure threshold requested.
        f: usize,
        /// Number of servers requested.
        n: usize,
        /// Why the bounds are undefined at this point.
        source: BoundError,
    },
    /// A config axis (grid, emulations, workloads, schedulers, crash plans
    /// or seeds) is empty, so the sweep would measure nothing.
    EmptyAxis(&'static str),
    /// The sweep report does not cover the config's case space (e.g. a
    /// report merged from a different config).
    CaseCountMismatch {
        /// Cases the config expands to.
        expected: usize,
        /// Cases the report holds.
        got: usize,
    },
    /// A report case references a `(params, emulation)` pair outside the
    /// config's grid.
    UnknownCase {
        /// Index of the offending case.
        index: usize,
    },
    /// A spooled sweep config was not produced by a frontier campaign (its
    /// recording axis differs from the frontier's fixed `[Full]`).
    ForeignSweepConfig,
    /// The underlying sharded campaign failed.
    Campaign(CampaignError),
}

impl fmt::Display for FrontierError {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrontierError::InfeasiblePoint { k, f, n, source } => write!(
                out,
                "infeasible frontier grid point k={k}, f={f}, n={n}: {source}"
            ),
            FrontierError::EmptyAxis(axis) => {
                write!(out, "frontier config has an empty {axis} axis")
            }
            FrontierError::CaseCountMismatch { expected, got } => write!(
                out,
                "sweep report does not match the frontier config: expected {expected} cases, \
                 got {got}"
            ),
            FrontierError::UnknownCase { index } => write!(
                out,
                "sweep report case {index} is outside the frontier config's grid"
            ),
            FrontierError::ForeignSweepConfig => write!(
                out,
                "spool holds a sweep config that is not a frontier campaign \
                 (recording axis is not [full])"
            ),
            FrontierError::Campaign(e) => write!(out, "frontier campaign failed: {e}"),
        }
    }
}

impl std::error::Error for FrontierError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrontierError::InfeasiblePoint { source, .. } => Some(source),
            FrontierError::Campaign(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CampaignError> for FrontierError {
    fn from(e: CampaignError) -> Self {
        FrontierError::Campaign(e)
    }
}

/// The Table-1 row a construction's measurements are judged against.
pub fn bound_class_of(kind: EmulationKind) -> BoundClass {
    match kind {
        EmulationKind::AbdMaxRegister | EmulationKind::AbdMaxRegisterAtomic => {
            BoundClass::MaxRegister
        }
        EmulationKind::AbdCas | EmulationKind::AbdCasAtomic => BoundClass::Cas,
        EmulationKind::SpaceOptimal => BoundClass::Register,
        EmulationKind::RegisterBank | EmulationKind::RegisterBankAtomic => BoundClass::RegisterBank,
    }
}

/// Declarative description of a frontier campaign: which `(k, f, n)` points
/// and constructions to measure, and which schedules to measure them under.
///
/// Expands to one [`SweepConfig`] ([`FrontierConfig::to_sweep_config`])
/// whose deterministic report the frontier table is folded from.
#[derive(Clone, Debug)]
pub struct FrontierConfig {
    /// Parameter points `(k, f, n)` to map.
    pub grid: Vec<Params>,
    /// Constructions to measure at each point.
    pub emulations: Vec<EmulationKind>,
    /// Workload shapes driving the runs.
    pub workloads: Vec<WorkloadSpec>,
    /// Schedulers: the fair ones establish the clean baseline, the
    /// adversarial ones ([`SchedulerSpec::CoverAdversary`]) drive coverage
    /// toward the lower-bound frontier.
    pub schedulers: Vec<SchedulerSpec>,
    /// Crash plans injected into the runs.
    pub crash_plans: Vec<CrashPlanSpec>,
    /// Scheduler/workload seeds; each seed is a separate case.
    pub seeds: Vec<u64>,
    /// Consistency condition verified after every run.
    pub check: ConsistencyCheck,
    /// Per-operation step budget before a case is reported as stuck.
    pub max_steps_per_op: u64,
    /// Sweep worker threads; `0` means one per available CPU core.
    pub threads: usize,
}

impl FrontierConfig {
    /// The default frontier instrument over `grid`: all four constructions,
    /// a concurrent write-sequential workload, fair scheduling next to the
    /// covering adversary, failure-free and `CrashF` plans, three seeds.
    pub fn over_grid(grid: Vec<Params>) -> Self {
        FrontierConfig {
            grid,
            emulations: EmulationKind::ALL.to_vec(),
            workloads: vec![WorkloadSpec::WriteSequential {
                rounds: 2,
                read_after_each: true,
            }],
            schedulers: vec![SchedulerSpec::Fair, SchedulerSpec::CoverAdversary],
            crash_plans: vec![CrashPlanSpec::None, CrashPlanSpec::CrashF],
            seeds: vec![1, 2, 3],
            check: ConsistencyCheck::WsRegular,
            max_steps_per_op: 100_000,
            threads: 0,
        }
    }

    /// A small fixed grid (9 points spanning `f ∈ {1, 2}` from minimal to
    /// saturated `n`) — the golden-table and smoke-test configuration.
    pub fn quick() -> Self {
        let grid = [
            (1, 1, 3),
            (2, 1, 3),
            (4, 1, 3),
            (2, 1, 4),
            (4, 1, 5),
            (4, 1, 6),
            (2, 2, 5),
            (3, 2, 6),
            (5, 2, 6),
        ]
        .into_iter()
        .map(|(k, f, n)| Params::new(k, f, n).expect("valid quick frontier point"))
        .collect();
        let mut config = Self::over_grid(grid);
        config.seeds = vec![1, 2];
        config
    }

    /// Builds a grid from raw `(k, f, n)` triples, rejecting every
    /// infeasible point with a typed [`FrontierError::InfeasiblePoint`]
    /// (never silently skipping it).
    pub fn grid_from_raw(points: &[(usize, usize, usize)]) -> Result<Vec<Params>, FrontierError> {
        points
            .iter()
            .map(|&(k, f, n)| {
                checked_register_bounds(k, f, n)
                    .map_err(|source| FrontierError::InfeasiblePoint { k, f, n, source })?;
                Ok(Params::new(k, f, n).expect("checked_register_bounds validated the point"))
            })
            .collect()
    }

    /// Parses a CLI-style grid spec (`k/f/n,k/f/n,..`), rejecting malformed
    /// syntax and infeasible points with typed errors.
    pub fn grid_from_spec(spec: &str) -> Result<Vec<Params>, String> {
        let mut raw = Vec::new();
        for point in spec.split(',') {
            let nums: Vec<usize> = point
                .trim()
                .split('/')
                .map(|s| {
                    s.parse()
                        .map_err(|_| format!("invalid grid point {point:?}"))
                })
                .collect::<Result<_, _>>()?;
            let [k, f, n] = nums.as_slice() else {
                return Err(format!("grid point {point:?} must be k/f/n (e.g. 2/1/4)"));
            };
            raw.push((*k, *f, *n));
        }
        if raw.is_empty() {
            return Err("grid spec needs at least one k/f/n point".to_string());
        }
        Self::grid_from_raw(&raw).map_err(|e| e.to_string())
    }

    /// Validates the config: every axis non-empty, every grid point
    /// feasible.
    pub fn validate(&self) -> Result<(), FrontierError> {
        for (axis, empty) in [
            ("grid", self.grid.is_empty()),
            ("emulations", self.emulations.is_empty()),
            ("workloads", self.workloads.is_empty()),
            ("schedulers", self.schedulers.is_empty()),
            ("crash plans", self.crash_plans.is_empty()),
            ("seeds", self.seeds.is_empty()),
        ] {
            if empty {
                return Err(FrontierError::EmptyAxis(axis));
            }
        }
        for p in &self.grid {
            checked_register_bounds(p.k, p.f, p.n).map_err(|source| {
                FrontierError::InfeasiblePoint {
                    k: p.k,
                    f: p.f,
                    n: p.n,
                    source,
                }
            })?;
        }
        Ok(())
    }

    /// Reconstructs the frontier config a spooled [`SweepConfig`] was
    /// expanded from ([`FrontierConfig::to_sweep_config`] inverted), so a
    /// frontier campaign can resume or merge from its spool directory alone.
    pub fn from_sweep_config(config: &SweepConfig) -> Result<Self, FrontierError> {
        if config.recordings != vec![RecordingModeSpec::Full] {
            return Err(FrontierError::ForeignSweepConfig);
        }
        let frontier = FrontierConfig {
            grid: config.grid.clone(),
            emulations: config.emulations.clone(),
            workloads: config.workloads.clone(),
            schedulers: config.schedulers.clone(),
            crash_plans: config.crash_plans.clone(),
            seeds: config.seeds.clone(),
            check: config.check,
            max_steps_per_op: config.max_steps_per_op,
            threads: config.threads,
        };
        frontier.validate()?;
        Ok(frontier)
    }

    /// The sweep this frontier config expands to. The recording axis is
    /// pinned to `[Full]`: the metrics (and therefore the frontier table)
    /// are byte-identical in every recording mode, so sweeping that axis
    /// would only duplicate rows.
    pub fn to_sweep_config(&self) -> SweepConfig {
        SweepConfig {
            grid: self.grid.clone(),
            emulations: self.emulations.clone(),
            workloads: self.workloads.clone(),
            schedulers: self.schedulers.clone(),
            crash_plans: self.crash_plans.clone(),
            recordings: vec![RecordingModeSpec::Full],
            seeds: self.seeds.clone(),
            check: self.check,
            max_steps_per_op: self.max_steps_per_op,
            threads: self.threads,
        }
    }

    /// Number of sweep cases the config expands to.
    pub fn case_count(&self) -> usize {
        self.to_sweep_config().case_count()
    }
}

/// One `(k, f, n) × construction` row of the frontier table: the measured
/// peaks, aggregated over every workload, scheduler, crash plan and seed of
/// the config, judged against the paper's bounds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrontierRow {
    /// The parameter point.
    pub params: Params,
    /// The construction measured.
    pub emulation: EmulationKind,
    /// Base objects the construction provisioned.
    pub provisioned: usize,
    /// Peak resource consumption over all runs of this row (`touched` is
    /// monotone, so this is also the per-run peak).
    pub peak_used: usize,
    /// Peak `|Cov(t)|` over all runs of this row.
    pub peak_covered: usize,
    /// Peak `|Cov(t)|` restricted to [`SchedulerSpec::Fair`] runs, when the
    /// config has any — the clean-schedule baseline.
    pub fair_peak_covered: Option<usize>,
    /// Peak `|Cov(t)|` restricted to [`SchedulerSpec::CoverAdversary`]
    /// runs, when the config has any — the `Ad_i`-style pressure reading.
    pub adversary_peak_covered: Option<usize>,
    /// Peak per-server occupancy over all runs of this row.
    pub max_occupancy: usize,
    /// `peak_used` judged against this construction's Table-1 row.
    pub verdict: BoundVerdict,
    /// Sweep cases aggregated into this row.
    pub cases: usize,
    /// Cases whose consistency check failed.
    pub inconsistent: usize,
    /// Cases whose run errored (e.g. stuck past the step budget).
    pub errors: usize,
}

impl FrontierRow {
    /// The `2f + 1` max-register/CAS bound at this row's parameters — the
    /// separation column of Table 1.
    pub fn rmw_bound(&self) -> usize {
        max_register_bound(self.params.f)
    }
}

/// The frontier table: one [`FrontierRow`] per `(k, f, n) × construction`,
/// in config order (grid-major, then emulation).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrontierReport {
    rows: Vec<FrontierRow>,
}

impl FrontierReport {
    /// Folds a sweep report into the frontier table — a pure function of
    /// `(config, report)`, so a report merged from campaign shards yields a
    /// byte-identical table to a single-process [`run_sweep`].
    ///
    /// # Errors
    ///
    /// Fails when the report does not cover exactly the config's case space.
    pub fn from_sweep(
        config: &FrontierConfig,
        report: &SweepReport,
    ) -> Result<Self, FrontierError> {
        config.validate()?;
        if report.len() != config.case_count() {
            return Err(FrontierError::CaseCountMismatch {
                expected: config.case_count(),
                got: report.len(),
            });
        }

        // Row slots in config order; cases are folded in by group lookup.
        let mut rows = Vec::with_capacity(config.grid.len() * config.emulations.len());
        let mut slot_of: BTreeMap<(usize, usize, usize, &'static str), usize> = BTreeMap::new();
        for &params in &config.grid {
            for &emulation in &config.emulations {
                slot_of
                    .entry((params.k, params.f, params.n, emulation.name()))
                    .or_insert_with(|| {
                        rows.push(FrontierRow {
                            params,
                            emulation,
                            provisioned: 0,
                            peak_used: 0,
                            peak_covered: 0,
                            fair_peak_covered: None,
                            adversary_peak_covered: None,
                            max_occupancy: 0,
                            verdict: BoundVerdict::judge(bound_class_of(emulation), params, 0),
                            cases: 0,
                            inconsistent: 0,
                            errors: 0,
                        });
                        rows.len() - 1
                    });
            }
        }

        for r in report.results() {
            let c = &r.case;
            let key = (c.params.k, c.params.f, c.params.n, c.emulation.name());
            let &slot = slot_of
                .get(&key)
                .ok_or(FrontierError::UnknownCase { index: c.index })?;
            let row = &mut rows[slot];
            row.provisioned = row.provisioned.max(r.provisioned_objects);
            row.peak_used = row.peak_used.max(r.resource_consumption);
            row.peak_covered = row.peak_covered.max(r.peak_covered);
            row.max_occupancy = row.max_occupancy.max(r.max_occupancy);
            match c.scheduler {
                SchedulerSpec::Fair => {
                    row.fair_peak_covered =
                        Some(row.fair_peak_covered.unwrap_or(0).max(r.peak_covered));
                }
                SchedulerSpec::CoverAdversary => {
                    row.adversary_peak_covered =
                        Some(row.adversary_peak_covered.unwrap_or(0).max(r.peak_covered));
                }
                _ => {}
            }
            row.cases += 1;
            if !r.consistent {
                row.inconsistent += 1;
            }
            if r.error.is_some() {
                row.errors += 1;
            }
        }

        for row in &mut rows {
            row.verdict =
                BoundVerdict::judge(bound_class_of(row.emulation), row.params, row.peak_used);
        }
        Ok(FrontierReport { rows })
    }

    /// The rows, in config order.
    pub fn rows(&self) -> &[FrontierRow] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// `true` when every row's measured peak respects its upper bound — the
    /// headline property of the campaign.
    pub fn all_within_upper(&self) -> bool {
        self.rows.iter().all(|r| r.verdict.within_upper())
    }

    /// Rows whose measured peak exceeds the construction's upper bound.
    pub fn violations(&self) -> impl Iterator<Item = &FrontierRow> {
        self.rows.iter().filter(|r| !r.verdict.within_upper())
    }

    /// Renders the Figure-1-style frontier table.
    pub fn to_text(&self) -> String {
        let mut table = TextTable::new(
            format!(
                "Space-complexity frontier — measured peaks vs the paper's bounds ({} rows)",
                self.rows.len()
            ),
            &[
                "k",
                "f",
                "n",
                "emulation",
                "class",
                "prov",
                "peak-used",
                "occ",
                "cov-peak",
                "cov-fair",
                "cov-adv",
                "lower",
                "upper",
                "2f+1",
                "slack",
                "verdict",
            ],
        );
        let opt = |v: Option<usize>| v.map(|v| v.to_string()).unwrap_or_else(|| "-".to_string());
        for r in &self.rows {
            table.push_row([
                r.params.k.to_string(),
                r.params.f.to_string(),
                r.params.n.to_string(),
                r.emulation.name().to_string(),
                r.verdict.class.name().to_string(),
                r.provisioned.to_string(),
                r.peak_used.to_string(),
                r.max_occupancy.to_string(),
                r.peak_covered.to_string(),
                opt(r.fair_peak_covered),
                opt(r.adversary_peak_covered),
                r.verdict.lower.to_string(),
                r.verdict.upper.to_string(),
                r.rmw_bound().to_string(),
                r.verdict.slack().to_string(),
                r.verdict.label().to_string(),
            ]);
        }
        table.to_string()
    }

    /// Serializes the table as a deterministic JSON document.
    pub fn to_json(&self) -> String {
        let opt = |v: Option<usize>| {
            v.map(|v| v.to_string())
                .unwrap_or_else(|| "null".to_string())
        };
        let mut out = String::from("{\n  \"rows\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"k\": {}, \"f\": {}, \"n\": {}, \"emulation\": \"{}\", \
                 \"class\": \"{}\", \"provisioned\": {}, \"peak_used\": {}, \
                 \"max_occupancy\": {}, \"peak_covered\": {}, \"fair_peak_covered\": {}, \
                 \"adversary_peak_covered\": {}, \"lower\": {}, \"upper\": {}, \
                 \"rmw_bound\": {}, \"slack\": {}, \"verdict\": \"{}\", \
                 \"cases\": {}, \"inconsistent\": {}, \"errors\": {}}}{}\n",
                r.params.k,
                r.params.f,
                r.params.n,
                r.emulation.name(),
                r.verdict.class.name(),
                r.provisioned,
                r.peak_used,
                r.max_occupancy,
                r.peak_covered,
                opt(r.fair_peak_covered),
                opt(r.adversary_peak_covered),
                r.verdict.lower,
                r.verdict.upper,
                r.rmw_bound(),
                r.verdict.slack(),
                r.verdict.label(),
                r.cases,
                r.inconsistent,
                r.errors,
                if i + 1 < self.rows.len() { "," } else { "" },
            ));
        }
        let within = self
            .rows
            .iter()
            .filter(|r| r.verdict.within_upper())
            .count();
        out.push_str(&format!(
            "  ],\n  \"row_count\": {},\n  \"within_upper_count\": {}\n}}\n",
            self.rows.len(),
            within,
        ));
        out
    }

    /// Serializes the table as CSV with a fixed header. Optional columns
    /// render empty when the config has no matching scheduler.
    pub fn to_csv(&self) -> String {
        let opt = |v: Option<usize>| v.map(|v| v.to_string()).unwrap_or_default();
        let mut out = String::from(
            "k,f,n,emulation,class,provisioned,peak_used,max_occupancy,peak_covered,\
             fair_peak_covered,adversary_peak_covered,lower,upper,rmw_bound,slack,verdict,\
             cases,inconsistent,errors\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
                r.params.k,
                r.params.f,
                r.params.n,
                r.emulation.name(),
                r.verdict.class.name(),
                r.provisioned,
                r.peak_used,
                r.max_occupancy,
                r.peak_covered,
                opt(r.fair_peak_covered),
                opt(r.adversary_peak_covered),
                r.verdict.lower,
                r.verdict.upper,
                r.rmw_bound(),
                r.verdict.slack(),
                r.verdict.label(),
                r.cases,
                r.inconsistent,
                r.errors,
            ));
        }
        out
    }
}

/// Runs the frontier campaign single-process: expands the config to its
/// sweep, runs it over the local thread pool, folds the frontier table.
pub fn run_frontier(config: &FrontierConfig) -> Result<FrontierReport, FrontierError> {
    config.validate()?;
    let report = run_sweep(&config.to_sweep_config());
    FrontierReport::from_sweep(config, &report)
}

/// Runs (or resumes) the frontier campaign sharded over a spool directory
/// (the PR 5 protocol: kill/resume, multi-process workers, deterministic
/// merge). Returns `None` when the invocation stopped early
/// ([`CampaignOptions::exit_after`]) with the campaign resumable on disk.
pub fn run_frontier_campaign(
    config: &FrontierConfig,
    options: &CampaignOptions,
) -> Result<Option<FrontierReport>, FrontierError> {
    config.validate()?;
    let outcome = run_campaign(&config.to_sweep_config(), options)?;
    match outcome.report {
        Some(report) => Ok(Some(FrontierReport::from_sweep(config, &report)?)),
        None => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regemu_bounds::ParamError;

    #[test]
    fn quick_frontier_stays_within_every_upper_bound() {
        let mut config = FrontierConfig::quick();
        config.threads = 2;
        let report = run_frontier(&config).unwrap();
        assert_eq!(report.len(), config.grid.len() * config.emulations.len());
        assert!(
            report.all_within_upper(),
            "{:?}",
            report.violations().next()
        );
        for row in report.rows() {
            assert_eq!(
                row.cases,
                2 * 2 * 2,
                "workloads × schedulers × plans × seeds"
            );
            assert_eq!(row.errors, 0);
            assert_eq!(row.inconsistent, 0);
            assert!(row.peak_used <= row.provisioned);
            assert!(row.peak_covered >= row.fair_peak_covered.unwrap_or(0));
            assert!(row.peak_covered >= row.adversary_peak_covered.unwrap_or(0));
        }
    }

    #[test]
    fn frontier_table_is_a_pure_fold_of_the_sweep() {
        let mut config = FrontierConfig::quick();
        config.grid.truncate(3);
        config.seeds = vec![1];
        config.threads = 1;
        let sweep = run_sweep(&config.to_sweep_config());
        let a = FrontierReport::from_sweep(&config, &sweep).unwrap();
        let b = FrontierReport::from_sweep(&config, &sweep).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_text(), b.to_text());
        config.threads = 4;
        let c = run_frontier(&config).unwrap();
        assert_eq!(a.to_json(), c.to_json());
        assert_eq!(a.to_csv(), c.to_csv());
    }

    #[test]
    fn infeasible_grid_points_are_rejected_with_typed_errors() {
        let err = FrontierConfig::grid_from_raw(&[(2, 1, 4), (3, 2, 4)]).unwrap_err();
        match err {
            FrontierError::InfeasiblePoint {
                k: 3,
                f: 2,
                n: 4,
                source,
            } => {
                assert_eq!(source, BoundError::ZeroSetCapacity { k: 3, f: 2, n: 4 });
            }
            other => panic!("expected InfeasiblePoint, got {other:?}"),
        }
        let err = FrontierConfig::grid_from_raw(&[(0, 1, 3)]).unwrap_err();
        assert!(matches!(
            err,
            FrontierError::InfeasiblePoint {
                source: BoundError::InvalidParams(ParamError::NoWriters),
                ..
            }
        ));
        // The CLI-spec form surfaces the same rejection as a message.
        let msg = FrontierConfig::grid_from_spec("2/1/4,1/1/2").unwrap_err();
        assert!(msg.contains("infeasible"), "{msg}");
        assert!(FrontierConfig::grid_from_spec("2/1").is_err());
        assert!(FrontierConfig::grid_from_spec("a/b/c").is_err());
        let ok = FrontierConfig::grid_from_spec("2/1/4, 5/2/6").unwrap();
        assert_eq!(ok.len(), 2);
        assert_eq!(ok[1], Params::new(5, 2, 6).unwrap());
    }

    #[test]
    fn empty_axes_and_mismatched_reports_are_rejected() {
        let mut config = FrontierConfig::quick();
        config.seeds.clear();
        assert!(matches!(
            run_frontier(&config),
            Err(FrontierError::EmptyAxis("seeds"))
        ));

        let config = {
            let mut c = FrontierConfig::quick();
            c.grid.truncate(1);
            c.seeds = vec![1];
            c.threads = 1;
            c
        };
        let sweep = run_sweep(&config.to_sweep_config());
        let mut smaller = config.clone();
        smaller.emulations.truncate(1);
        assert!(matches!(
            FrontierReport::from_sweep(&smaller, &sweep),
            Err(FrontierError::CaseCountMismatch { .. })
        ));
    }

    #[test]
    fn rendered_table_carries_the_bound_columns() {
        let mut config = FrontierConfig::quick();
        config.grid = vec![Params::new(5, 2, 6).unwrap()]; // Figure 1 point
        config.seeds = vec![1];
        config.threads = 2;
        let report = run_frontier(&config).unwrap();
        let text = report.to_text();
        assert!(text.contains("lower"), "{text}");
        assert!(text.contains("upper"));
        assert!(text.contains("2f+1"));
        // Figure 1: lower 22, upper 25, rmw bound 5.
        let space_optimal = report
            .rows()
            .iter()
            .find(|r| r.emulation == EmulationKind::SpaceOptimal)
            .unwrap();
        assert_eq!(space_optimal.verdict.lower, 22);
        assert_eq!(space_optimal.verdict.upper, 25);
        assert_eq!(space_optimal.rmw_bound(), 5);
        let json = report.to_json();
        assert!(json.contains("\"lower\": 22"));
        assert!(json.contains("\"upper\": 25"));
        let csv = report.to_csv();
        assert!(csv.starts_with("k,f,n,emulation,class,provisioned,peak_used"));
        assert_eq!(csv.lines().count(), report.len() + 1);
    }
}
