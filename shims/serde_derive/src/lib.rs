//! No-op stand-in for `serde_derive`: accepts the same derive invocations
//! (including `#[serde(...)]` helper attributes) and emits no code. The
//! workspace derives `Serialize`/`Deserialize` for forward compatibility but
//! does not serialize anything in-tree yet.

use proc_macro::TokenStream;

/// Derive `serde::Serialize` (no-op: emits no impl).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Derive `serde::Deserialize` (no-op: emits no impl).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
