//! Scenario-API smoke: a tiny grid across *all* schedulers × *all*
//! emulations through the facade, plus the sweep axes and the incremental
//! run surface. This is the test the CI `scenario-smoke` job runs.

use regemu::prelude::*;

#[test]
fn every_scheduler_drives_every_emulation_through_the_facade() {
    let params = Params::new(2, 1, 4).unwrap();
    for scheduler in SchedulerSpec::ALL {
        for kind in EmulationKind::ALL.into_iter().chain(EmulationKind::ATOMIC) {
            let report = Scenario::new(params)
                .emulation(kind)
                .workload(WorkloadSpec::WriteSequential {
                    rounds: 1,
                    read_after_each: true,
                })
                .scheduler(scheduler)
                .check(ConsistencyCheck::WsRegular)
                .seed(31)
                .run()
                .unwrap_or_else(|e| panic!("{kind} under {scheduler}: {e}"));
            assert!(
                report.is_consistent(),
                "{kind} under {scheduler}: {:?}",
                report.check_violation
            );
            assert_eq!(report.scheduler, scheduler.name());
            assert_eq!(report.completed_ops, 2 * params.k);
        }
    }
}

#[test]
fn sweeps_cross_scheduler_and_crash_plan_axes_deterministically() {
    let mut config = SweepConfig::quick();
    config.grid.truncate(2);
    config.workloads.truncate(1);
    config.schedulers = SchedulerSpec::ALL.to_vec();
    config.crash_plans = CrashPlanSpec::ALL.to_vec();
    config.threads = 1;
    let single = run_sweep(&config);
    assert_eq!(single.len(), config.case_count());
    assert_eq!(single.len(), 2 * 4 * 4 * 2);
    assert!(single.all_consistent(), "{:?}", single.failures().next());
    config.threads = 4;
    let multi = run_sweep(&config);
    assert_eq!(single.to_json(), multi.to_json());
    assert_eq!(single.to_csv(), multi.to_csv());
    // The new axes are part of the serialized identity of each case.
    assert!(multi
        .to_json()
        .contains("\"scheduler\": \"adversary-silence\""));
    assert!(multi.to_json().contains("\"crashes\": \"crash-f\""));
}

#[test]
fn scenario_run_exposes_the_incremental_surface() {
    let params = Params::new(2, 1, 4).unwrap();
    let scenario = Scenario::new(params)
        .workload(WorkloadSpec::ConcurrentReadWrite { rounds: 2 })
        .seed(5)
        .drain();
    let mut run = scenario.build();
    // Step until the first completion, inspect mid-run state.
    while run.completed_ops() == 0 {
        assert!(run.step().unwrap());
    }
    assert!(run.history().len() > 0);
    let mid = run.metrics();
    assert!(mid.low_level_triggers > 0);
    // Crash within the budget, then finish.
    run.crash_server(ServerId::new(params.n - 1)).unwrap();
    run.run().unwrap();
    let report = run.into_report();
    assert!(report.is_consistent(), "{:?}", report.check_violation);
    assert_eq!(report.completed_ops, 2 * params.k * 2);
}

#[test]
fn pending_snapshot_agrees_with_the_event_log_scan_mid_run() {
    let params = Params::new(2, 1, 4).unwrap();
    let mut run = Scenario::new(params).seed(3).build();
    run.step().unwrap();
    run.step().unwrap();
    let snapshot = run.sim().pending_snapshot();
    assert_eq!(snapshot.len(), run.sim().pending_count());
    let ids: Vec<OpId> = snapshot.iter().map(|p| p.op_id).collect();
    let from_log: Vec<OpId> = run.history().pending_low_level().into_iter().collect();
    assert_eq!(ids, from_log);
}
