//! Property-based integration tests: consistency guarantees hold across
//! random schedules, random workloads and random crash points — all driven
//! through the [`Scenario`] pipeline.

use proptest::prelude::*;
use regemu::prelude::*;

/// Strategy over the parameter points used by the property tests (kept small
/// so each case stays fast; the checkers are exponential in history size).
fn small_params() -> impl Strategy<Value = Params> {
    (1usize..=3, 1usize..=2, 0usize..=3).prop_map(|(k, f, extra)| {
        Params::new(k, f, 2 * f + 1 + extra).expect("n ≥ 2f + 1 by construction")
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Theorem 3's guarantee: the space-optimal construction is WS-Regular in
    /// every fair schedule of a write-sequential workload, with or without a
    /// crash of up to f servers.
    #[test]
    fn space_optimal_is_ws_regular_under_random_schedules(
        params in small_params(),
        seed in 0u64..1000,
        crash in proptest::bool::ANY,
    ) {
        let mut scenario = Scenario::new(params)
            .emulation(EmulationKind::SpaceOptimal)
            .workload(WorkloadSpec::WriteSequential { rounds: 1, read_after_each: true })
            .check(ConsistencyCheck::WsRegular)
            .seed(seed);
        if crash {
            let victim = ServerId::new((seed as usize) % params.n);
            scenario = scenario.crash_plan(CrashPlan::none().crash_at(seed % 7, victim));
        }
        let report = scenario.run().unwrap();
        prop_assert!(report.is_consistent(), "violation: {:?}", report.check_violation);
        prop_assert_eq!(report.metrics.resource_consumption(), register_upper_bound(params));
    }

    /// The same property for the ABD-style emulations over max-registers and
    /// CAS, whose space cost must stay at 2f + 1.
    #[test]
    fn rmw_emulations_are_ws_regular_and_small(
        params in small_params(),
        seed in 0u64..1000,
    ) {
        for kind in [EmulationKind::AbdMaxRegister, EmulationKind::AbdCas] {
            let report = Scenario::new(params)
                .emulation(kind)
                .workload(WorkloadSpec::WriteSequential { rounds: 1, read_after_each: true })
                .check(ConsistencyCheck::WsRegular)
                .seed(seed)
                .run()
                .unwrap();
            prop_assert!(report.is_consistent(), "{}: {:?}", kind, report.check_violation);
            prop_assert_eq!(report.metrics.resource_consumption(), 2 * params.f + 1);
        }
    }

    /// Reads that overlap writes still satisfy WS-Regularity (the condition
    /// constrains them through the write-sequential order of the writes) —
    /// under the fair scheduler and the deterministic round-robin alike.
    #[test]
    fn concurrent_reads_remain_ws_regular(
        params in small_params(),
        seed in 0u64..500,
        round_robin in proptest::bool::ANY,
    ) {
        let report = Scenario::new(params)
            .emulation(EmulationKind::SpaceOptimal)
            .workload(WorkloadSpec::ConcurrentReadWrite { rounds: 1 })
            .scheduler(if round_robin { SchedulerSpec::RoundRobin } else { SchedulerSpec::Fair })
            .check(ConsistencyCheck::WsRegular)
            .seed(seed)
            .drain()
            .run()
            .unwrap();
        prop_assert!(report.is_consistent(), "violation: {:?}", report.check_violation);
    }

    /// The write-back variant of ABD is atomic under small mixed workloads.
    #[test]
    fn atomic_abd_is_linearizable(
        seed in 0u64..300,
        write_ratio in 0.2f64..0.8,
    ) {
        let params = Params::new(2, 1, 3).unwrap();
        let workload = Workload::random_mixed(params.k, 2, 10, write_ratio, seed);
        let report = Scenario::new(params)
            .emulation(EmulationKind::AbdMaxRegisterAtomic)
            .workload_steps(workload)
            .check(ConsistencyCheck::Atomic)
            .seed(seed)
            .run()
            .unwrap();
        prop_assert!(report.is_consistent(), "violation: {:?}", report.check_violation);
    }

    /// Simulator invariants: no response without a trigger, crashed servers
    /// never respond, resource consumption never exceeds the provisioned
    /// object count, and coverage is always a subset of the touched objects.
    #[test]
    fn simulator_invariants_hold_on_random_runs(
        params in small_params(),
        seed in 0u64..1000,
    ) {
        let report = Scenario::new(params)
            .emulation(EmulationKind::SpaceOptimal)
            .workload(WorkloadSpec::RandomMixed { readers: 1, total: 6, write_percent: 60 })
            .check(ConsistencyCheck::None)
            .seed(seed)
            .run()
            .unwrap();
        let metrics = &report.metrics;
        prop_assert!(metrics.resource_consumption() <= report.provisioned_objects);
        prop_assert!(metrics.covered.iter().all(|b| metrics.written.contains(b)));
        prop_assert!(metrics.written.iter().all(|b| metrics.touched.contains(b)));
        prop_assert!(metrics.low_level_responses <= metrics.low_level_triggers);
    }
}

/// A deterministic (non-proptest) regression: the legal-read-value window of
/// the WS-Regularity checker agrees with a brute-force linearizability check
/// on write-sequential schedules with a single read.
#[test]
fn ws_regularity_agrees_with_linearizability_on_single_read_schedules() {
    let spec = SequentialSpec::register();
    for read_start in 0..8u64 {
        for read_end in read_start..9u64 {
            for value in [0u64, 1, 2, 99] {
                let mut h = HighHistory::default();
                h.push_complete(0, HighOp::Write(1), HighResponse::WriteAck, 0, 2);
                h.push_complete(1, HighOp::Write(2), HighResponse::WriteAck, 4, 6);
                h.push_complete(
                    2,
                    HighOp::Read,
                    HighResponse::ReadValue(value),
                    read_start,
                    read_end,
                );
                let regular = check_ws_regular(&h, &spec).is_ok();
                let linearizable = check_linearizable(&h, &spec).is_ok();
                // Atomicity implies WS-Regularity; on single-read schedules
                // the two coincide.
                assert_eq!(
                    regular, linearizable,
                    "read [{read_start},{read_end}] = {value}: regular={regular}, linearizable={linearizable}"
                );
            }
        }
    }
}
