//! Regenerates **Figure 1** of the paper: a possible mapping from the
//! register sets `R` to the servers `S` for `n = 6`, `k = 5`, `f = 2`
//! (plus a few other parameter choices for comparison).
//!
//! ```text
//! cargo run -p regemu-bench --bin figure1
//! ```

use regemu_bench::experiments::figure1;
use regemu_bounds::Params;

fn main() {
    // The exact parameterization shown in the paper.
    println!(
        "{}",
        figure1(Params::new(5, 2, 6).expect("paper parameters"))
    );

    // Two further layouts showing how the sets shrink as servers are added.
    for (k, f, n) in [(5usize, 2usize, 9usize), (5, 2, 16)] {
        println!(
            "{}",
            figure1(Params::new(k, f, n).expect("valid parameters"))
        );
    }
}
