//! The `regemu-trace` text format: a self-contained, portable schedule.
//!
//! A [`RecordedSchedule`] captures everything needed to re-execute one run —
//! the parameter point, the emulation (clean or seeded-bug), the workload
//! shape and prefix length, the check, both seeds, the server crash plan and
//! the delivery-order decision stream. The line-based format mirrors the
//! campaign config spool: one `key value` pair per line, order fixed,
//! `end`-terminated, so files diff cleanly and external tools can emit them.
//!
//! ```text
//! regemu-trace v1
//! params 1 1 3
//! emulation space-optimal
//! workload write-seq/r1+read
//! workload-len 2
//! check ws-regular
//! workload-seed 61525
//! tail-seed 0
//! max-steps 50000
//! crash 4 2
//! decisions 0 2 1
//! end
//! ```
//!
//! `crash` lines repeat (zero or more, one per crashed server); `rewrite`
//! lines repeat likewise (one per rewritten workload value); `flips` and
//! `delays` are optional single lines (omitted when empty); `decisions` is a
//! single line holding the whole rank stream (possibly empty). Parse errors
//! name the 1-based line they occurred on and never panic. See
//! [`RecordedSchedule::to_text`] / [`RecordedSchedule::from_text`].

use super::{FuzzCase, FuzzConfig, FuzzEmulation};
use crate::runner::ConsistencyCheck;
use crate::sweep::WorkloadSpec;
use regemu_bounds::Params;
use regemu_fpsm::Time;

/// A recorded adversary schedule, exportable and importable as text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecordedSchedule {
    /// The `(k, f, n)` parameter point.
    pub params: Params,
    /// Name of the emulation under test (clean or faulty).
    pub emulation: String,
    /// The workload shape.
    pub workload: WorkloadSpec,
    /// Number of workload operations the run issues.
    pub workload_len: usize,
    /// The consistency condition to verify.
    pub check: ConsistencyCheck,
    /// Seed the workload is instantiated with (the campaign master seed).
    pub workload_seed: u64,
    /// Seed of the scheduler's fair tail.
    pub tail_seed: u64,
    /// Per-operation delivery budget before the run is declared stuck.
    pub max_steps_per_op: u64,
    /// Server crashes as `(time, server index)` pairs.
    pub crashes: Vec<(Time, usize)>,
    /// Workload value rewrites as `(op index, value)` pairs.
    pub rewrites: Vec<(usize, u64)>,
    /// Workload kind flips (writer writes demoted to reads).
    pub flips: Vec<usize>,
    /// Delay-tick perturbation (non-empty switches the run to the delayed
    /// scheduler).
    pub delays: Vec<u32>,
    /// The delivery-order decision stream.
    pub decisions: Vec<u32>,
}

impl RecordedSchedule {
    /// Captures a case under its config.
    pub fn from_parts(config: &FuzzConfig, case: &FuzzCase) -> Self {
        RecordedSchedule {
            params: config.params,
            emulation: config.emulation.name().to_string(),
            workload: config.workload,
            workload_len: case.workload_len,
            check: config.check,
            workload_seed: config.seed,
            tail_seed: case.seed,
            max_steps_per_op: config.max_steps_per_op,
            crashes: case.crashes.clone(),
            rewrites: case.rewrites.clone(),
            flips: case.flips.clone(),
            delays: case.delays.clone(),
            decisions: case.decisions.clone(),
        }
    }

    /// The variable part of the schedule, ready for the executor.
    pub fn case(&self) -> FuzzCase {
        FuzzCase {
            decisions: self.decisions.clone(),
            crashes: self.crashes.clone(),
            workload_len: self.workload_len,
            rewrites: self.rewrites.clone(),
            flips: self.flips.clone(),
            delays: self.delays.clone(),
            seed: self.tail_seed,
        }
    }

    /// Rebuilds the invariant part of the schedule as a [`FuzzConfig`]
    /// (budget 0 — a trace describes one run, not a campaign).
    ///
    /// # Errors
    ///
    /// Returns a message when the emulation name is unknown.
    pub fn config(&self) -> Result<FuzzConfig, String> {
        let emulation = FuzzEmulation::from_name(&self.emulation)
            .ok_or_else(|| format!("unknown emulation {:?}", self.emulation))?;
        Ok(FuzzConfig {
            params: self.params,
            emulation,
            workload: self.workload,
            check: self.check,
            seed: self.workload_seed,
            budget: 0,
            max_steps_per_op: self.max_steps_per_op,
            stop_on_failure: false,
        })
    }

    /// Serializes the schedule to the `regemu-trace v1` text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("regemu-trace v1\n");
        out.push_str(&format!(
            "params {} {} {}\n",
            self.params.k, self.params.f, self.params.n
        ));
        out.push_str(&format!("emulation {}\n", self.emulation));
        out.push_str(&format!("workload {}\n", self.workload.label()));
        out.push_str(&format!("workload-len {}\n", self.workload_len));
        out.push_str(&format!("check {}\n", self.check.name()));
        out.push_str(&format!("workload-seed {}\n", self.workload_seed));
        out.push_str(&format!("tail-seed {}\n", self.tail_seed));
        out.push_str(&format!("max-steps {}\n", self.max_steps_per_op));
        for &(time, server) in &self.crashes {
            out.push_str(&format!("crash {time} {server}\n"));
        }
        for &(idx, value) in &self.rewrites {
            out.push_str(&format!("rewrite {idx} {value}\n"));
        }
        if !self.flips.is_empty() {
            out.push_str("flips");
            for i in &self.flips {
                out.push_str(&format!(" {i}"));
            }
            out.push('\n');
        }
        if !self.delays.is_empty() {
            out.push_str("delays");
            for d in &self.delays {
                out.push_str(&format!(" {d}"));
            }
            out.push('\n');
        }
        out.push_str("decisions");
        for d in &self.decisions {
            out.push_str(&format!(" {d}"));
        }
        out.push_str("\nend\n");
        out
    }

    /// Parses the `regemu-trace v1` text format.
    ///
    /// # Errors
    ///
    /// Returns a message naming the 1-based line the first problem occurred
    /// on. Malformed, truncated and version-bumped inputs all error; none
    /// panic.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l.trim()));
        let (_, header) = lines.next().ok_or("line 1: empty trace")?;
        if header != "regemu-trace v1" {
            return Err(format!("line 1: unsupported trace header {header:?}"));
        }

        fn field<'a>(
            entry: Option<(usize, &'a str)>,
            key: &str,
        ) -> Result<(usize, &'a str), String> {
            let (no, line) =
                entry.ok_or_else(|| format!("missing {key} line (truncated trace)"))?;
            line.strip_prefix(key)
                .filter(|rest| rest.is_empty() || rest.starts_with(' '))
                .map(|rest| (no, rest.trim()))
                .ok_or_else(|| format!("line {no}: expected {key} line, found {line:?}"))
        }
        fn num<T: std::str::FromStr>(no: usize, value: &str, key: &str) -> Result<T, String> {
            value
                .parse()
                .map_err(|_| format!("line {no}: malformed {key} value {value:?}"))
        }

        let (no, params_line) = field(lines.next(), "params")?;
        let mut parts = params_line.split_whitespace();
        let missing = || format!("line {no}: params needs k f n");
        let k: usize = num(no, parts.next().ok_or_else(missing)?, "params k")?;
        let f: usize = num(no, parts.next().ok_or_else(missing)?, "params f")?;
        let n: usize = num(no, parts.next().ok_or_else(missing)?, "params n")?;
        let params = Params::new(k, f, n).map_err(|e| format!("line {no}: invalid params: {e}"))?;

        let emulation = field(lines.next(), "emulation")?.1.to_string();
        let (no, workload_label) = field(lines.next(), "workload")?;
        let workload = WorkloadSpec::from_label(workload_label)
            .ok_or_else(|| format!("line {no}: unknown workload {workload_label:?}"))?;
        let (no, value) = field(lines.next(), "workload-len")?;
        let workload_len = num(no, value, "workload-len")?;
        let (no, check_name) = field(lines.next(), "check")?;
        let check = ConsistencyCheck::from_name(check_name)
            .ok_or_else(|| format!("line {no}: unknown check {check_name:?}"))?;
        let (no, value) = field(lines.next(), "workload-seed")?;
        let workload_seed = num(no, value, "workload-seed")?;
        let (no, value) = field(lines.next(), "tail-seed")?;
        let tail_seed = num(no, value, "tail-seed")?;
        let (no, value) = field(lines.next(), "max-steps")?;
        let max_steps_per_op = num(no, value, "max-steps")?;

        let mut crashes = Vec::new();
        let mut rewrites = Vec::new();
        let mut flips = Vec::new();
        let mut delays = Vec::new();
        let mut decisions = Vec::new();
        let mut saw_decisions = false;
        for (no, line) in lines.by_ref() {
            if let Some(rest) = line.strip_prefix("crash ") {
                let mut parts = rest.split_whitespace();
                let missing = || format!("line {no}: crash needs time server");
                let time: Time = num(no, parts.next().ok_or_else(missing)?, "crash time")?;
                let server: usize = num(no, parts.next().ok_or_else(missing)?, "crash server")?;
                crashes.push((time, server));
            } else if let Some(rest) = line.strip_prefix("rewrite ") {
                let mut parts = rest.split_whitespace();
                let missing = || format!("line {no}: rewrite needs index value");
                let idx: usize = num(no, parts.next().ok_or_else(missing)?, "rewrite index")?;
                let value: u64 = num(no, parts.next().ok_or_else(missing)?, "rewrite value")?;
                rewrites.push((idx, value));
            } else if let Some(rest) = line.strip_prefix("flips") {
                for token in rest.split_whitespace() {
                    flips.push(num(no, token, "flips")?);
                }
            } else if let Some(rest) = line.strip_prefix("delays") {
                for token in rest.split_whitespace() {
                    delays.push(num(no, token, "delays")?);
                }
            } else if let Some(rest) = line.strip_prefix("decisions") {
                for token in rest.split_whitespace() {
                    decisions.push(num(no, token, "decisions")?);
                }
                saw_decisions = true;
                break;
            } else if line == "end" {
                return Err(format!("line {no}: missing decisions line"));
            } else {
                return Err(format!("line {no}: unexpected line {line:?}"));
            }
        }
        if !saw_decisions {
            return Err("missing decisions line (truncated trace)".to_string());
        }
        match lines.next() {
            Some((_, "end")) => {}
            Some((no, other)) => return Err(format!("line {no}: expected end, found {other:?}")),
            None => return Err("missing end line (truncated trace)".to_string()),
        }
        if let Some((no, extra)) = lines.find(|(_, l)| !l.is_empty()) {
            return Err(format!(
                "line {no}: unexpected content after end: {extra:?}"
            ));
        }

        Ok(RecordedSchedule {
            params,
            emulation,
            workload,
            workload_len,
            check,
            workload_seed,
            tail_seed,
            max_steps_per_op,
            crashes,
            rewrites,
            flips,
            delays,
            decisions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RecordedSchedule {
        RecordedSchedule {
            params: Params::new(2, 1, 4).unwrap(),
            emulation: "space-optimal".to_string(),
            workload: WorkloadSpec::WriteSequential {
                rounds: 1,
                read_after_each: true,
            },
            workload_len: 3,
            check: ConsistencyCheck::WsRegular,
            workload_seed: 17,
            tail_seed: 4,
            max_steps_per_op: 50_000,
            crashes: vec![(5, 3), (9, 2)],
            rewrites: vec![(0, (1 << 32) | 99)],
            flips: vec![1],
            delays: vec![3, 0, 11],
            decisions: vec![0, 2, 1, 7],
        }
    }

    #[test]
    fn text_round_trips_byte_identically() {
        let schedule = sample();
        let text = schedule.to_text();
        let parsed = RecordedSchedule::from_text(&text).unwrap();
        assert_eq!(parsed, schedule);
        assert_eq!(parsed.to_text(), text);
    }

    #[test]
    fn empty_schedules_round_trip_too() {
        let mut schedule = sample();
        schedule.crashes.clear();
        schedule.rewrites.clear();
        schedule.flips.clear();
        schedule.delays.clear();
        schedule.decisions.clear();
        let text = schedule.to_text();
        // Empty optional fields leave no trace lines at all.
        assert!(!text.contains("flips") && !text.contains("delays"));
        let parsed = RecordedSchedule::from_text(&text).unwrap();
        assert_eq!(parsed, schedule);
    }

    #[test]
    fn pr6_era_traces_without_the_optional_lines_still_parse() {
        let text = "regemu-trace v1\nparams 1 1 3\nemulation space-optimal\n\
                    workload write-seq/r1+read\nworkload-len 2\ncheck ws-regular\n\
                    workload-seed 61525\ntail-seed 0\nmax-steps 50000\n\
                    crash 4 2\ndecisions 0 2 1\nend\n";
        let parsed = RecordedSchedule::from_text(text).unwrap();
        assert!(parsed.rewrites.is_empty());
        assert!(parsed.flips.is_empty());
        assert!(parsed.delays.is_empty());
        assert_eq!(parsed.decisions, vec![0, 2, 1]);
        assert_eq!(parsed.to_text(), text);
    }

    #[test]
    fn malformed_traces_fail_with_line_numbered_errors_and_never_panic() {
        // (mangle, expected error fragment) — one row per failure family.
        let table: &[(&dyn Fn(String) -> String, &str)] = &[
            (&|_| String::new(), "line 1: empty trace"),
            (
                &|t: String| t.replace("regemu-trace v1", "regemu-trace v2"),
                "line 1: unsupported trace header",
            ),
            (
                &|t: String| t.replace("params 2 1 4", "params 2 1"),
                "line 2: params needs k f n",
            ),
            (
                &|t: String| t.replace("params 2 1 4", "params 2 x 4"),
                "line 2: malformed params f",
            ),
            (
                &|t: String| t.replace("params 2 1 4", "params 4 4 4"),
                "line 2: invalid params",
            ),
            (
                &|t: String| t.replace("workload write-seq/r1+read", "workload nope"),
                "line 4: unknown workload",
            ),
            (
                &|t: String| t.replace("workload-len 3", "workload-len many"),
                "line 5: malformed workload-len",
            ),
            (
                &|t: String| t.replace("check ws-regular", "check bogus"),
                "line 6: unknown check \"bogus\"",
            ),
            (
                &|t: String| t.replace("tail-seed 4", "banana 4"),
                "line 8: expected tail-seed line",
            ),
            (
                &|t: String| t.replace("crash 5 3", "crash 5"),
                "line 10: crash needs time server",
            ),
            (
                &|t: String| t.replace("crash 5 3", "crash five 3"),
                "line 10: malformed crash time",
            ),
            (
                &|t: String| t.replace("rewrite 0", "rewrite zero"),
                "line 12: malformed rewrite index",
            ),
            (
                &|t: String| t.replace("flips 1", "flips one"),
                "line 13: malformed flips",
            ),
            (
                &|t: String| t.replace("delays 3 0 11", "delays 3 -1"),
                "line 14: malformed delays",
            ),
            (
                &|t: String| t.replace("decisions 0 2 1 7", "decisions 0 2 1 x"),
                "line 15: malformed decisions",
            ),
            (
                &|t: String| t.replace("decisions 0 2 1 7\n", ""),
                "missing decisions line",
            ),
            (&|t: String| t.replace("end\n", ""), "missing end line"),
            (
                &|t: String| t.replace("end\n", "fin\n"),
                "line 16: expected end",
            ),
            (
                &|t: String| t + "trailing\n",
                "line 17: unexpected content after end",
            ),
            (
                &|t: String| t.replace("crash 5 3", "garbage line"),
                "line 10: unexpected line",
            ),
            (
                &|t: String| {
                    // Truncate after the header block: every body line gone.
                    t.lines().take(3).collect::<Vec<_>>().join("\n")
                },
                "missing workload line (truncated trace)",
            ),
        ];
        let base = sample().to_text();
        for (i, (mangle, want)) in table.iter().enumerate() {
            let text = mangle(base.clone());
            let err = RecordedSchedule::from_text(&text)
                .expect_err(&format!("row {i} must fail: {text:?}"));
            assert!(err.contains(want), "row {i}: {err:?} missing {want:?}");
        }
    }

    #[test]
    fn faulty_emulations_resolve_through_config() {
        let mut schedule = sample();
        schedule.emulation = "faulty-skipped-update".to_string();
        let config = schedule.config().unwrap();
        assert_eq!(config.emulation.name(), "faulty-skipped-update");
        schedule.emulation = "no-such-thing".to_string();
        assert!(schedule.config().is_err());
    }
}
