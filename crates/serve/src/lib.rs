//! # regemu-serve — a live replicated-register service
//!
//! Everything else in this workspace runs the paper's register emulations
//! inside a deterministic simulator. This crate runs the *same* state
//! machines — [`regemu_fpsm::ClientNode`] and [`regemu_fpsm::ServerNode`] —
//! over real transports, so a deployment-shaped run can be checked against
//! the paper's consistency conditions with the existing machinery:
//!
//! * [`transport`] — the [`transport::Transport`] trait with an in-process
//!   channel implementation and a length-prefixed `std::net` TCP
//!   implementation (thread-per-connection; no async runtime);
//! * [`server`] — [`server::serve_tcp`] / [`server::serve_channel`] host one
//!   paper server's base objects; applying a request under the state lock is
//!   the linearization point (Assumption 1);
//! * [`client`] — [`client::LiveClient`] drives one emulation client;
//!   [`client::run_fleet`] fans k writers plus readers out across threads.
//!
//! Latency is measured into [`regemu_obs::LatencyHistogram`] (re-exported
//! here as [`LatencyHistogram`] — it lived in this crate before the
//! telemetry registry existed), and every server keeps per-node
//! request/response/fault counters plus an in-flight gauge in the global
//! [`regemu_obs`] registry, scrapeable over the wire protocol's
//! version-gated `Stats` frame ([`server::node_stats`],
//! [`client::scrape_stats`]).
//!
//! ## Conformance checking
//!
//! With a [`regemu_workloads::conform::ConformRecorder`] attached, clients
//! append `invoke`/`return` records and servers append `respond` records to
//! per-process logs. `regemu_workloads::conform::merge_logs` orders them into
//! a [`regemu_spec`-checkable](regemu_workloads::conform::check_history)
//! history, so the **offline and streaming checkers give a live run the same
//! verdict class they give the simulator** — including catching the seeded
//! `faulty-weak-quorum` emulation on a real socket run (see this crate's
//! `loopback` integration test).
//!
//! ## Example
//!
//! ```
//! use regemu_serve::prelude::*;
//! use regemu_fpsm::prelude::*;
//! use regemu_workloads::fuzz::FuzzEmulation;
//! use regemu_bounds::Params;
//!
//! // One server of the space-optimal emulation at (k=1, f=1, n=3),
//! // served in-process; a writer and reader drive it over the wire codec.
//! let params = Params::new(1, 1, 3)?;
//! let emulation = FuzzEmulation::from_name("space-optimal").unwrap();
//! let topology = emulation.build(params).topology().clone();
//! let cluster: Vec<_> = (0..3)
//!     .map(|s| serve_channel(ServerNode::new(&topology, ServerId::new(s)), None))
//!     .collect::<Result<_, _>>()?;
//! let connect = |_| -> Result<_, ServeError> {
//!     Ok(cluster
//!         .iter()
//!         .map(|(_, connector)| {
//!             connector.connect().ok().map(|t| Box::new(t) as Box<dyn Transport>)
//!         })
//!         .collect())
//! };
//! let build = emulation.build(params);
//! let mut writer = LiveClient::new(
//!     topology.clone(),
//!     ClientId::new(0),
//!     build.writer_protocol(0),
//!     connect(0)?,
//!     ClientOptions::default(),
//! )?;
//! let mut reader = LiveClient::new(
//!     topology,
//!     ClientId::new(1),
//!     build.reader_protocol(),
//!     connect(1)?,
//!     ClientOptions::default(),
//! )?;
//! assert_eq!(writer.run_op(HighOp::Write(7))?, HighResponse::WriteAck);
//! assert_eq!(reader.run_op(HighOp::Read)?, HighResponse::ReadValue(7));
//! for (handle, _) in cluster {
//!     handle.join()?;
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod server;
pub mod transport;

pub use client::{run_fleet, scrape_stats, ClientOptions, FleetOutcome, FleetSpec, LiveClient};
pub use regemu_obs::LatencyHistogram;
pub use server::{node_stats, serve_channel, serve_tcp, ChannelConnector, ServerHandle};
pub use transport::{ChannelTransport, ServeError, TcpTransport, Transport};

/// Convenient glob import of the most frequently used items.
pub mod prelude {
    pub use crate::client::{
        run_fleet, scrape_stats, ClientOptions, FleetOutcome, FleetSpec, LiveClient,
    };
    pub use crate::server::{node_stats, serve_channel, serve_tcp, ChannelConnector, ServerHandle};
    pub use crate::transport::{ChannelTransport, ServeError, TcpTransport, Transport};
    pub use regemu_obs::LatencyHistogram;
}
