//! The recorded history of a run.
//!
//! [`History`] is an event log plus convenience queries used by the metrics
//! module, the consistency checkers and the lower-bound adversary. Alongside
//! the raw [`Event`] stream it maintains *incremental digests* (high-level
//! intervals, touched/written object sets, trigger/respond counters, point
//! contention), so metrics never re-scan the log.
//!
//! ## Recording modes
//!
//! How much of the raw event stream is *retained* is controlled by a
//! [`RecordingMode`]:
//!
//! * [`RecordingMode::Full`] — every event is kept forever (the default, and
//!   the only mode in which offline checkers and trace renderers see the
//!   whole run);
//! * [`RecordingMode::Digest`] — events update the digests and are dropped
//!   immediately: the run is metrics-only, with zero retained events;
//! * [`RecordingMode::Ring`] — a sliding window of the last `capacity`
//!   events, for consumers (such as the online checkers in `regemu-spec`)
//!   that drain the stream incrementally via [`History::events_since`].
//!
//! The digests are maintained identically in every mode, so
//! [`crate::metrics::RunMetrics`] is a pure function of the run — byte
//! identical across modes for the same seed. Peak memory is accounted in
//! O(1) per push ([`History::peak_retained_events`]).

use crate::event::Event;
use crate::ids::{ClientId, HighOpId, ObjectId, OpId, Time};
use crate::op::{HighOp, HighResponse};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// How much of the raw event stream a [`History`] retains.
///
/// Only *retention* varies: every mode updates the incremental digests the
/// same way, so metrics and run behaviour are mode-independent.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecordingMode {
    /// Keep every event (unbounded memory, full offline checkability).
    #[default]
    Full,
    /// Keep no events: digests/metrics only.
    Digest,
    /// Keep a sliding window of the last `capacity` events.
    Ring(
        /// Maximum number of events retained at any moment.
        usize,
    ),
}

impl RecordingMode {
    /// Stable label used in reports and CLI flags: `full`, `digest`,
    /// `ring:N`.
    pub fn label(self) -> String {
        match self {
            RecordingMode::Full => "full".to_string(),
            RecordingMode::Digest => "digest".to_string(),
            RecordingMode::Ring(cap) => format!("ring:{cap}"),
        }
    }

    /// The inverse of [`RecordingMode::label`], for CLI flags.
    pub fn from_label(label: &str) -> Option<Self> {
        match label {
            "full" => Some(RecordingMode::Full),
            "digest" => Some(RecordingMode::Digest),
            other => {
                let cap = other.strip_prefix("ring:")?;
                cap.parse().ok().map(RecordingMode::Ring)
            }
        }
    }

    /// Returns `true` when this mode keeps the complete event log.
    pub fn is_full(self) -> bool {
        matches!(self, RecordingMode::Full)
    }
}

impl fmt::Display for RecordingMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// A completed or pending high-level operation extracted from a history.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HighInterval {
    /// Identifier of the high-level operation.
    pub id: HighOpId,
    /// The invoking client.
    pub client: ClientId,
    /// The operation.
    pub op: HighOp,
    /// Invocation time.
    pub invoked_at: Time,
    /// Return time and response, or `None` if the operation is pending.
    pub returned: Option<(Time, HighResponse)>,
}

impl HighInterval {
    /// Returns `true` if the operation completed.
    pub fn is_complete(&self) -> bool {
        self.returned.is_some()
    }

    /// Returns `true` if `self` precedes `other` (returned before the other
    /// was invoked), i.e. `self ≺ other` in the schedule's real-time order.
    pub fn precedes(&self, other: &HighInterval) -> bool {
        match self.returned {
            Some((t, _)) => t < other.invoked_at,
            None => false,
        }
    }

    /// Returns `true` if the two operations are concurrent (neither precedes
    /// the other).
    pub fn concurrent_with(&self, other: &HighInterval) -> bool {
        !self.precedes(other) && !other.precedes(self)
    }
}

/// A growable bitset over dense indices (object ids are indices), used for
/// the touched/written digests: marking is a word-indexed store — no tree
/// rebalancing or node allocation on the simulator's per-trigger hot path.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
struct IndexBitSet {
    words: Vec<u64>,
}

impl IndexBitSet {
    fn insert(&mut self, index: usize) {
        let word = index / 64;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        self.words[word] |= 1u64 << (index % 64);
    }

    fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(w, bits)| {
            let mut bits = *bits;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let bit = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(w * 64 + bit)
            })
        })
    }
}

/// Record of every action taken in a run.
///
/// Alongside the (mode-bounded) raw event log, `History` maintains
/// *incremental digests* — the high-level intervals, the touched/written
/// object sets, running trigger/respond counters and the point contention —
/// updated in O(1) amortized time per [`History::push`]. The query methods
/// below therefore never re-scan the event log, which keeps
/// [`crate::metrics::RunMetrics::capture`] cheap even at the end of
/// million-step runs, *in every [`RecordingMode`]*. (The exception is
/// [`History::pending_low_level`], a debugging aid that still scans the
/// retained window on demand so the hot path does not pay for a churning id
/// set.)
///
/// Events carry implicit sequence numbers `0..total_events()`; the retained
/// window is always a contiguous suffix of that sequence, drained
/// incrementally with [`History::events_since`].
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct History {
    mode: RecordingMode,
    /// The retained suffix of the event stream; slot 0 holds the event with
    /// sequence number `dropped`.
    events: VecDeque<Event>,
    /// Events recorded but no longer retained (evicted from the ring, or
    /// never stored in `Digest` mode).
    dropped: u64,
    /// High-water mark of `events.len()`.
    peak_retained: usize,
    /// Time stamp of the most recent event (tracked incrementally so
    /// [`History::end_time`] works in every mode).
    last_time: Time,
    /// Retained high-level intervals, keyed by operation id. Ids are
    /// assigned in invocation order, so iteration order *is* invocation
    /// order (first wins when an id is invoked twice, matching the previous
    /// scan-based extraction). Intervals evicted with
    /// [`History::evict_interval`] are gone; the scalar digests below keep
    /// the whole-run answers exact regardless.
    intervals: BTreeMap<HighOpId, HighInterval>,
    /// Intervals recorded over the run, evicted or not.
    total_intervals: u64,
    /// Intervals removed by [`History::evict_interval`].
    evicted_intervals: u64,
    /// High-water mark of `intervals.len()`.
    peak_retained_intervals: usize,
    /// Number of high-level writes currently open (invoked, not returned).
    open_writes: usize,
    /// Set once two high-level writes were observed concurrent — from then
    /// on the run is not write-sequential, no matter what else happens.
    /// Tracked incrementally so [`History::is_write_sequential`] stays exact
    /// after interval eviction.
    writes_overlapped: bool,
    /// Number of high-level reads invoked over the run.
    invoked_reads: u64,
    touched: IndexBitSet,
    written: IndexBitSet,
    trigger_count: u64,
    respond_count: u64,
    /// Clients with a high-level operation currently in progress.
    open_clients: BTreeSet<ClientId>,
    max_contention: usize,
}

impl History {
    /// Creates an empty history recording in [`RecordingMode::Full`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty history recording in the given mode.
    pub fn with_mode(mode: RecordingMode) -> Self {
        History {
            mode,
            ..Self::default()
        }
    }

    /// The active recording mode.
    pub fn recording_mode(&self) -> RecordingMode {
        self.mode
    }

    /// Switches the recording mode, immediately applying the new retention
    /// policy to the already-retained events (switching to `Digest` drops
    /// them all; switching to `Ring` evicts down to the capacity; switching
    /// to `Full` keeps whatever is still retained — evicted events do not
    /// come back). Digests are unaffected.
    pub fn set_recording_mode(&mut self, mode: RecordingMode) {
        self.mode = mode;
        self.apply_retention();
    }

    fn apply_retention(&mut self) {
        let keep = match self.mode {
            RecordingMode::Full => usize::MAX,
            RecordingMode::Digest => 0,
            RecordingMode::Ring(cap) => cap,
        };
        while self.events.len() > keep {
            self.events.pop_front();
            self.dropped += 1;
        }
    }

    /// Appends an event: updates the digests (in every mode), then retains
    /// the event according to the recording mode.
    pub fn push(&mut self, event: Event) {
        match event {
            Event::Invoke {
                time,
                client,
                high_op,
                op,
            } => {
                if let std::collections::btree_map::Entry::Vacant(slot) =
                    self.intervals.entry(high_op)
                {
                    slot.insert(HighInterval {
                        id: high_op,
                        client,
                        op,
                        invoked_at: time,
                        returned: None,
                    });
                    self.total_intervals += 1;
                    self.peak_retained_intervals =
                        self.peak_retained_intervals.max(self.intervals.len());
                    if op.is_write() {
                        if self.open_writes > 0 {
                            self.writes_overlapped = true;
                        }
                        self.open_writes += 1;
                    } else {
                        self.invoked_reads += 1;
                    }
                }
                self.open_clients.insert(client);
                self.max_contention = self.max_contention.max(self.open_clients.len());
            }
            Event::Return {
                time,
                client,
                high_op,
                response,
            } => {
                if let Some(interval) = self.intervals.get_mut(&high_op) {
                    if interval.returned.is_none() && interval.op.is_write() {
                        self.open_writes = self.open_writes.saturating_sub(1);
                    }
                    interval.returned = Some((time, response));
                }
                self.open_clients.remove(&client);
            }
            Event::Trigger { object, op, .. } => {
                self.trigger_count += 1;
                self.touched.insert(object.index());
                if op.is_write() {
                    self.written.insert(object.index());
                }
            }
            Event::Respond { .. } => {
                self.respond_count += 1;
            }
            Event::ServerCrash { .. } | Event::ClientCrash { .. } => {}
        }
        self.last_time = event.time();
        // The retention policy lives in `apply_retention` alone; pushing
        // then evicting keeps the two call sites (per-event and
        // mode-switch) impossible to desynchronize.
        self.events.push_back(event);
        self.apply_retention();
        self.peak_retained = self.peak_retained.max(self.events.len());
    }

    /// The retained events, in the order they occurred. In
    /// [`RecordingMode::Full`] this is the complete run; in the bounded
    /// modes it is the current window (empty under `Digest`).
    pub fn events(&self) -> impl Iterator<Item = &Event> + '_ {
        self.events.iter()
    }

    /// The events with sequence numbers `seq..total_events()`, or `None` if
    /// part of that range has already been evicted — the caller missed
    /// events and any incremental consumer (e.g. an online checker) should
    /// treat its state as incomplete.
    ///
    /// Draining `events_since(cursor)` after every simulation transition and
    /// advancing `cursor` to [`History::total_events`] never misses an event
    /// as long as the window capacity covers the events of one transition.
    pub fn events_since(&self, seq: u64) -> Option<impl Iterator<Item = &Event> + '_> {
        if seq < self.dropped {
            return None;
        }
        let start = usize::try_from(seq - self.dropped)
            .ok()?
            .min(self.events.len());
        Some(self.events.range(start..))
    }

    /// Total number of events recorded over the run so far, retained or not.
    pub fn total_events(&self) -> u64 {
        self.dropped + self.events.len() as u64
    }

    /// Number of events currently retained.
    pub fn retained_events(&self) -> usize {
        self.events.len()
    }

    /// Number of events recorded but no longer retained.
    pub fn evicted_events(&self) -> u64 {
        self.dropped
    }

    /// High-water mark of [`History::retained_events`] over the run — the
    /// O(1) peak-memory accounting of the event log.
    pub fn peak_retained_events(&self) -> usize {
        self.peak_retained
    }

    /// Returns `true` if nothing has been recorded.
    ///
    /// There is intentionally no `len()`: under the bounded recording modes
    /// "length" is ambiguous between [`History::total_events`] (recorded)
    /// and [`History::retained_events`] (still held) — callers must pick
    /// the one that matches how they consume [`History::events`].
    pub fn is_empty(&self) -> bool {
        self.total_events() == 0
    }

    /// All *retained* high-level operation intervals, in invocation order,
    /// borrowed from the incrementally-maintained digest. Available in every
    /// recording mode: intervals are part of the digests, sized by the
    /// number of high-level operations rather than by the run length — and
    /// further boundable with [`History::evict_interval`] once a consumer
    /// (such as an online checker) is done with an operation.
    pub fn intervals(&self) -> impl Iterator<Item = &HighInterval> + '_ {
        self.intervals.values()
    }

    /// The interval of a specific high-level operation, if it was invoked
    /// and has not been evicted.
    pub fn interval_of(&self, high_op: HighOpId) -> Option<&HighInterval> {
        self.intervals.get(&high_op)
    }

    /// Extracts the retained high-level operation intervals, in invocation
    /// order.
    ///
    /// Prefer [`History::intervals`] when a borrow suffices; this method is
    /// kept for callers that need an owned copy.
    pub fn high_intervals(&self) -> Vec<HighInterval> {
        self.intervals.values().copied().collect()
    }

    /// Evicts a *completed* interval from the digest, freeing its memory.
    ///
    /// Callers that verify a run online (the `StreamingChecker` in
    /// `regemu-spec`) fold operations out of their own window as soon as the
    /// verdict no longer depends on them; evicting the matching interval
    /// here bounds the interval digest the same way — the retained interval
    /// set then tracks the checker's window instead of growing with every
    /// high-level operation of the run. Only do this when the report surface
    /// does not need the full schedule ([`History::high_intervals`] and the
    /// extracted `HighHistory` only contain what is still retained).
    ///
    /// The scalar digests ([`History::point_contention`],
    /// [`History::is_write_sequential`], [`History::is_write_only`],
    /// [`History::total_intervals`]) are maintained incrementally and stay
    /// exact for the whole run regardless of eviction.
    ///
    /// Returns `false` (and evicts nothing) when the operation is unknown,
    /// already evicted, or still open — evicting an open interval would
    /// desynchronize the open-write digest.
    pub fn evict_interval(&mut self, high_op: HighOpId) -> bool {
        match self.intervals.get(&high_op) {
            Some(interval) if interval.is_complete() => {
                self.intervals.remove(&high_op);
                self.evicted_intervals += 1;
                true
            }
            _ => false,
        }
    }

    /// Number of intervals currently retained in the digest.
    pub fn retained_intervals(&self) -> usize {
        self.intervals.len()
    }

    /// Number of intervals removed with [`History::evict_interval`].
    pub fn evicted_intervals(&self) -> u64 {
        self.evicted_intervals
    }

    /// High-water mark of [`History::retained_intervals`] over the run — the
    /// O(1) peak-memory accounting of the interval digest.
    pub fn peak_retained_intervals(&self) -> usize {
        self.peak_retained_intervals
    }

    /// Total number of high-level operations invoked over the run, retained
    /// or evicted.
    pub fn total_intervals(&self) -> u64 {
        self.total_intervals
    }

    /// The set of base objects on which at least one low-level operation was
    /// triggered — the *resource consumption* of the run (Section 2).
    pub fn touched_objects(&self) -> BTreeSet<ObjectId> {
        self.touched.iter().map(ObjectId::new).collect()
    }

    /// The set of base objects on which at least one low-level *write-class*
    /// operation was triggered.
    pub fn written_objects(&self) -> BTreeSet<ObjectId> {
        self.written.iter().map(ObjectId::new).collect()
    }

    /// Number of low-level operations triggered so far.
    pub fn trigger_count(&self) -> u64 {
        self.trigger_count
    }

    /// Number of low-level operations that responded so far.
    pub fn respond_count(&self) -> u64 {
        self.respond_count
    }

    /// Identifiers of low-level operations that were triggered but have not
    /// responded *within the retained window* (pending operations).
    ///
    /// Computed on demand by scanning the retained events (O(retained)): the
    /// live pending set is tracked by [`crate::sim::Simulation`] itself, so
    /// the recording hot path does not maintain a second, churning id set
    /// just for this query. Only complete in [`RecordingMode::Full`]; in the
    /// bounded modes use [`crate::sim::Simulation::pending_snapshot`].
    pub fn pending_low_level(&self) -> BTreeSet<OpId> {
        let mut pending = BTreeSet::new();
        for e in &self.events {
            match e {
                Event::Trigger { op_id, .. } => {
                    pending.insert(*op_id);
                }
                Event::Respond { op_id, .. } => {
                    pending.remove(op_id);
                }
                _ => {}
            }
        }
        pending
    }

    /// Returns `true` if no two high-level *writes* are concurrent — the
    /// run is *write-sequential* (Section 2). Tracked incrementally (a
    /// write invoked while another write is open breaks the property for
    /// good), so the answer covers the whole run even after interval
    /// eviction. Events must be pushed in time order, which the simulator
    /// guarantees.
    pub fn is_write_sequential(&self) -> bool {
        !self.writes_overlapped
    }

    /// Returns `true` if the run is write-only (no high-level reads
    /// invoked). Counted incrementally, so the answer covers evicted
    /// intervals too.
    pub fn is_write_only(&self) -> bool {
        self.invoked_reads == 0
    }

    /// Maximum number of clients with an incomplete high-level operation at
    /// any single point of the run — the *point contention* (Appendix C).
    pub fn point_contention(&self) -> usize {
        self.max_contention
    }

    /// The largest time stamp recorded, i.e. the length of the run in steps.
    /// Tracked incrementally, so it is exact in every recording mode.
    pub fn end_time(&self) -> Time {
        self.last_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{BaseOp, BaseResponse};
    use crate::value::Value;

    fn mk_events() -> Vec<Event> {
        vec![
            // c0: WRITE(1) [t1..t4] touching b0 (write, responds) and b1
            // (write, pending)
            Event::Invoke {
                time: 1,
                client: ClientId::new(0),
                high_op: HighOpId::new(0),
                op: HighOp::Write(1),
            },
            Event::Trigger {
                time: 2,
                client: ClientId::new(0),
                high_op: Some(HighOpId::new(0)),
                op_id: OpId::new(0),
                object: ObjectId::new(0),
                op: BaseOp::Write(Value::new(1, 1)),
            },
            Event::Trigger {
                time: 2,
                client: ClientId::new(0),
                high_op: Some(HighOpId::new(0)),
                op_id: OpId::new(1),
                object: ObjectId::new(1),
                op: BaseOp::Write(Value::new(1, 1)),
            },
            Event::Respond {
                time: 3,
                client: ClientId::new(0),
                op_id: OpId::new(0),
                object: ObjectId::new(0),
                response: BaseResponse::WriteAck,
            },
            Event::Return {
                time: 4,
                client: ClientId::new(0),
                high_op: HighOpId::new(0),
                response: HighResponse::WriteAck,
            },
            // c1: READ() [t5..] pending, triggers read on b0
            Event::Invoke {
                time: 5,
                client: ClientId::new(1),
                high_op: HighOpId::new(1),
                op: HighOp::Read,
            },
            Event::Trigger {
                time: 6,
                client: ClientId::new(1),
                high_op: Some(HighOpId::new(1)),
                op_id: OpId::new(2),
                object: ObjectId::new(0),
                op: BaseOp::Read,
            },
        ]
    }

    fn mk_history() -> History {
        let mut h = History::new();
        for e in mk_events() {
            h.push(e);
        }
        h
    }

    fn mk_history_in(mode: RecordingMode) -> History {
        let mut h = History::with_mode(mode);
        for e in mk_events() {
            h.push(e);
        }
        h
    }

    #[test]
    fn high_intervals_and_precedence() {
        let h = mk_history();
        let ivs = h.high_intervals();
        assert_eq!(ivs.len(), 2);
        assert!(ivs[0].is_complete());
        assert!(!ivs[1].is_complete());
        assert!(ivs[0].precedes(&ivs[1]));
        assert!(!ivs[1].precedes(&ivs[0]));
        assert!(!ivs[0].concurrent_with(&ivs[1]));
        assert_eq!(h.interval_of(HighOpId::new(1)).unwrap().op, HighOp::Read);
        assert!(h.interval_of(HighOpId::new(9)).is_none());
    }

    #[test]
    fn touched_and_pending_sets() {
        let h = mk_history();
        let touched = h.touched_objects();
        assert!(touched.contains(&ObjectId::new(0)));
        assert!(touched.contains(&ObjectId::new(1)));
        assert_eq!(touched.len(), 2);
        assert_eq!(h.written_objects().len(), 2);
        let pending = h.pending_low_level();
        assert!(pending.contains(&OpId::new(1)));
        assert!(pending.contains(&OpId::new(2)));
        assert!(!pending.contains(&OpId::new(0)));
    }

    #[test]
    fn write_sequential_and_write_only_detection() {
        let h = mk_history();
        assert!(h.is_write_sequential());
        assert!(!h.is_write_only());

        // Two overlapping writes are not write-sequential.
        let mut h2 = History::new();
        h2.push(Event::Invoke {
            time: 1,
            client: ClientId::new(0),
            high_op: HighOpId::new(0),
            op: HighOp::Write(1),
        });
        h2.push(Event::Invoke {
            time: 2,
            client: ClientId::new(1),
            high_op: HighOpId::new(1),
            op: HighOp::Write(2),
        });
        h2.push(Event::Return {
            time: 3,
            client: ClientId::new(0),
            high_op: HighOpId::new(0),
            response: HighResponse::WriteAck,
        });
        assert!(!h2.is_write_sequential());
        assert!(h2.is_write_only());
    }

    #[test]
    fn point_contention_counts_concurrent_high_ops() {
        let h = mk_history();
        assert_eq!(h.point_contention(), 1);
        let mut h2 = History::new();
        for i in 0..3u64 {
            h2.push(Event::Invoke {
                time: i,
                client: ClientId::new(i as usize),
                high_op: HighOpId::new(i),
                op: HighOp::Write(i),
            });
        }
        h2.push(Event::Return {
            time: 4,
            client: ClientId::new(0),
            high_op: HighOpId::new(0),
            response: HighResponse::WriteAck,
        });
        assert_eq!(h2.point_contention(), 3);
    }

    #[test]
    fn end_time_and_event_counts() {
        let h = mk_history();
        assert_eq!(h.end_time(), 6);
        assert_eq!(h.total_events(), 7);
        assert_eq!(h.retained_events(), 7);
        assert!(!h.is_empty());
        assert!(History::new().is_empty());
    }

    #[test]
    fn digest_mode_retains_nothing_but_keeps_all_digests() {
        let full = mk_history();
        let digest = mk_history_in(RecordingMode::Digest);
        assert_eq!(digest.retained_events(), 0);
        assert_eq!(digest.peak_retained_events(), 0);
        assert_eq!(digest.total_events(), 7);
        assert_eq!(digest.evicted_events(), 7);
        assert_eq!(digest.total_events(), full.total_events());
        assert_eq!(digest.end_time(), full.end_time());
        assert_eq!(digest.high_intervals(), full.high_intervals());
        assert_eq!(digest.touched_objects(), full.touched_objects());
        assert_eq!(digest.written_objects(), full.written_objects());
        assert_eq!(digest.trigger_count(), full.trigger_count());
        assert_eq!(digest.respond_count(), full.respond_count());
        assert_eq!(digest.point_contention(), full.point_contention());
        assert_eq!(digest.events().count(), 0);
    }

    #[test]
    fn ring_mode_keeps_a_bounded_suffix() {
        let h = mk_history_in(RecordingMode::Ring(3));
        assert_eq!(h.retained_events(), 3);
        assert_eq!(h.peak_retained_events(), 3);
        assert_eq!(h.total_events(), 7);
        assert_eq!(h.evicted_events(), 4);
        // The window is the last three events, in order.
        let times: Vec<Time> = h.events().map(Event::time).collect();
        assert_eq!(times, vec![4, 5, 6]);
        // Digests are unaffected by the eviction.
        assert_eq!(h.high_intervals().len(), 2);
        assert_eq!(h.trigger_count(), 3);
        // A zero-capacity ring degenerates to digest-only retention.
        let zero = mk_history_in(RecordingMode::Ring(0));
        assert_eq!(zero.retained_events(), 0);
        assert_eq!(zero.peak_retained_events(), 0);
        assert_eq!(zero.total_events(), 7);
    }

    #[test]
    fn events_since_drains_incrementally_and_reports_gaps() {
        let h = mk_history_in(RecordingMode::Ring(3));
        // Sequence numbers 0..4 were evicted.
        assert!(h.events_since(0).is_none());
        assert!(h.events_since(3).is_none());
        // The retained suffix starts at sequence number 4.
        let tail: Vec<Time> = h.events_since(4).unwrap().map(Event::time).collect();
        assert_eq!(tail, vec![4, 5, 6]);
        let tail: Vec<Time> = h.events_since(6).unwrap().map(Event::time).collect();
        assert_eq!(tail, vec![6]);
        // At (or past) the end the drain is empty but not a gap.
        assert_eq!(h.events_since(7).unwrap().count(), 0);
        assert_eq!(h.events_since(99).unwrap().count(), 0);

        // In full mode a cursor-driven drain sees every event exactly once.
        let full = mk_history();
        let mut cursor = 0u64;
        let mut seen = 0;
        while cursor < full.total_events() {
            for _ in full.events_since(cursor).unwrap() {
                seen += 1;
            }
            cursor = full.total_events();
        }
        assert_eq!(seen, 7);
    }

    #[test]
    fn switching_modes_applies_retention_immediately() {
        let mut h = mk_history();
        assert_eq!(h.retained_events(), 7);
        h.set_recording_mode(RecordingMode::Ring(2));
        assert_eq!(h.retained_events(), 2);
        assert_eq!(h.evicted_events(), 5);
        h.set_recording_mode(RecordingMode::Digest);
        assert_eq!(h.retained_events(), 0);
        assert_eq!(h.evicted_events(), 7);
        // Switching back to full does not resurrect evicted events.
        h.set_recording_mode(RecordingMode::Full);
        assert_eq!(h.retained_events(), 0);
        assert_eq!(h.total_events(), 7);
        // Peak reflects the maximum ever retained.
        assert_eq!(h.peak_retained_events(), 7);
    }

    #[test]
    fn interval_eviction_bounds_the_digest_but_keeps_scalar_answers() {
        let mut h = mk_history();
        assert_eq!(h.total_intervals(), 2);
        assert_eq!(h.retained_intervals(), 2);
        assert_eq!(h.peak_retained_intervals(), 2);
        // The completed write can be evicted; the pending read cannot.
        assert!(h.evict_interval(HighOpId::new(0)));
        assert!(!h.evict_interval(HighOpId::new(0)), "already evicted");
        assert!(!h.evict_interval(HighOpId::new(1)), "still open");
        assert!(!h.evict_interval(HighOpId::new(9)), "unknown");
        assert_eq!(h.retained_intervals(), 1);
        assert_eq!(h.evicted_intervals(), 1);
        assert_eq!(h.total_intervals(), 2);
        assert_eq!(h.peak_retained_intervals(), 2);
        assert!(h.interval_of(HighOpId::new(0)).is_none());
        assert_eq!(h.high_intervals().len(), 1);
        // Scalar digests still answer for the whole run.
        assert!(h.is_write_sequential());
        assert!(!h.is_write_only());
        assert_eq!(h.point_contention(), 1);
        // A write invoked after the eviction still sees the earlier pending
        // read for contention, and write-sequentiality tracking continues.
        h.push(Event::Invoke {
            time: 7,
            client: ClientId::new(2),
            high_op: HighOpId::new(2),
            op: HighOp::Write(9),
        });
        assert_eq!(h.point_contention(), 2);
        assert!(h.is_write_sequential());
        h.push(Event::Invoke {
            time: 8,
            client: ClientId::new(3),
            high_op: HighOpId::new(3),
            op: HighOp::Write(10),
        });
        assert!(!h.is_write_sequential(), "two open writes are concurrent");
    }

    #[test]
    fn pending_write_breaks_write_sequentiality_for_later_writes() {
        // A forever-pending write is concurrent with any write invoked
        // after it — the incremental digest must agree with the pairwise
        // definition.
        let mut h = History::new();
        h.push(Event::Invoke {
            time: 1,
            client: ClientId::new(0),
            high_op: HighOpId::new(0),
            op: HighOp::Write(1),
        });
        h.push(Event::Invoke {
            time: 2,
            client: ClientId::new(1),
            high_op: HighOpId::new(1),
            op: HighOp::Write(2),
        });
        assert!(!h.is_write_sequential());
    }

    #[test]
    fn recording_mode_labels_round_trip() {
        for mode in [
            RecordingMode::Full,
            RecordingMode::Digest,
            RecordingMode::Ring(1),
            RecordingMode::Ring(1024),
        ] {
            assert_eq!(RecordingMode::from_label(&mode.label()), Some(mode));
            assert_eq!(mode.to_string(), mode.label());
        }
        assert_eq!(RecordingMode::from_label("ring:"), None);
        assert_eq!(RecordingMode::from_label("ring:x"), None);
        assert_eq!(RecordingMode::from_label("nope"), None);
        assert!(RecordingMode::Full.is_full());
        assert!(!RecordingMode::Digest.is_full());
        assert_eq!(RecordingMode::default(), RecordingMode::Full);
    }
}
