//! The metric registry: named counters, gauges and histograms.
//!
//! Handles ([`Counter`], [`Gauge`], [`HistogramCell`]) are cheap `Arc`s;
//! hot paths clone a handle once and bump it lock-free ([`Counter::add`] is
//! a relaxed atomic add). The registry itself is only locked when a metric
//! is first named or a [`Snapshot`] is taken.

use crate::histogram::LatencyHistogram;
use crate::snapshot::{HistogramSummary, Snapshot};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one to the counter.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous signed level (queue depth, in-flight operations, ...).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is larger (peak tracking).
    pub fn raise_to(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A shared, thread-safe [`LatencyHistogram`].
#[derive(Debug, Default)]
pub struct HistogramCell(Mutex<LatencyHistogram>);

impl HistogramCell {
    /// A fresh, empty cell.
    pub fn new() -> Self {
        HistogramCell(Mutex::new(LatencyHistogram::new()))
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.lock().record(value);
    }

    /// Folds a whole histogram in (e.g. a worker thread's local one).
    pub fn merge(&self, other: &LatencyHistogram) {
        self.lock().merge(other);
    }

    /// An owned copy of the current state.
    pub fn snapshot(&self) -> LatencyHistogram {
        self.lock().clone()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, LatencyHistogram> {
        // A poisoned histogram still holds valid counts.
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Times a scope and records the elapsed **microseconds** into a histogram
/// cell when dropped.
///
/// Scope timers read the wallclock, so they belong at process edges (request
/// handling, report publication) — never inside the deterministic simulator
/// paths (see the non-perturbation contract in the crate docs).
#[derive(Debug)]
pub struct ScopeTimer {
    cell: Arc<HistogramCell>,
    started: Instant,
}

impl ScopeTimer {
    /// Starts timing into `cell`.
    pub fn new(cell: Arc<HistogramCell>) -> Self {
        ScopeTimer {
            cell,
            started: Instant::now(),
        }
    }
}

impl Drop for ScopeTimer {
    fn drop(&mut self) {
        self.cell
            .record(self.started.elapsed().as_micros().min(u64::MAX as u128) as u64);
    }
}

/// A named collection of counters, gauges and histograms.
///
/// Metric names are free-form dotted strings (`"sim.steps"`,
/// `"serve.requests"`); renderers normalize them per output format.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramCell>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter named `name`, created at zero on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = lock(&self.counters);
        map.entry(name.to_string()).or_default().clone()
    }

    /// The gauge named `name`, created at zero on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = lock(&self.gauges);
        map.entry(name.to_string()).or_default().clone()
    }

    /// The histogram cell named `name`, created empty on first use.
    pub fn histogram(&self, name: &str) -> Arc<HistogramCell> {
        let mut map = lock(&self.histograms);
        map.entry(name.to_string()).or_default().clone()
    }

    /// Starts a [`ScopeTimer`] recording into the histogram named `name`.
    pub fn scope(&self, name: &str) -> ScopeTimer {
        ScopeTimer::new(self.histogram(name))
    }

    /// A point-in-time [`Snapshot`] of every registered metric.
    pub fn snapshot(&self) -> Snapshot {
        let counters = lock(&self.counters)
            .iter()
            .map(|(name, c)| (name.clone(), c.get()))
            .collect();
        let gauges = lock(&self.gauges)
            .iter()
            .map(|(name, g)| (name.clone(), g.get()))
            .collect();
        let histograms = lock(&self.histograms)
            .iter()
            .map(|(name, cell)| (name.clone(), HistogramSummary::of(&cell.snapshot())))
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// Drops every metric. Existing handles keep working but are no longer
    /// reachable from the registry; tests use this to start from a clean
    /// slate.
    pub fn clear(&self) {
        lock(&self.counters).clear();
        lock(&self.gauges).clear();
        lock(&self.histograms).clear();
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

// --------------------------------------------------------------------------
// The process-global registry and the enable flag
// --------------------------------------------------------------------------

static GLOBAL: OnceLock<Registry> = OnceLock::new();
static ENABLED: AtomicBool = AtomicBool::new(false);

/// The process-global registry every instrumented subsystem publishes to.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

/// Turns global telemetry collection on or off.
///
/// Off by default. Instrumented hot loops (the simulator) only attach their
/// sampled hooks when this is on at construction time; publication sites
/// check it before rendering. Toggling is safe at any point because
/// telemetry is observation-only — it never changes behaviour (see the
/// non-perturbation contract in the crate docs).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// `true` when global telemetry collection is on.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Process-edge helper: enables telemetry when the `REGEMU_TELEMETRY`
/// environment variable is `1`, `on` or `true`. Returns the resulting state.
pub fn init_from_env() -> bool {
    let on = std::env::var("REGEMU_TELEMETRY")
        .map(|v| matches!(v.as_str(), "1" | "on" | "true"))
        .unwrap_or(false);
    if on {
        set_enabled(true);
    }
    enabled()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let r = Registry::new();
        let c = r.counter("a.events");
        c.incr();
        c.add(4);
        assert_eq!(r.counter("a.events").get(), 5);
        let g = r.gauge("a.depth");
        g.set(3);
        g.add(-1);
        g.raise_to(10);
        g.raise_to(7);
        assert_eq!(r.gauge("a.depth").get(), 10);
    }

    #[test]
    fn histogram_cells_share_state_across_handles() {
        let r = Registry::new();
        r.histogram("lat").record(5);
        let mut local = LatencyHistogram::new();
        local.record(100);
        r.histogram("lat").merge(&local);
        let snap = r.histogram("lat").snapshot();
        assert_eq!(snap.count(), 2);
        assert_eq!(snap.max(), 100);
    }

    #[test]
    fn scope_timer_records_on_drop() {
        let r = Registry::new();
        {
            let _t = r.scope("span");
        }
        assert_eq!(r.histogram("span").snapshot().count(), 1);
    }

    #[test]
    fn snapshot_lists_metrics_sorted_by_name() {
        let r = Registry::new();
        r.counter("z.last").add(1);
        r.counter("a.first").add(2);
        r.gauge("m.mid").set(-4);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a.first", "z.last"]);
        assert_eq!(snap.gauges, vec![("m.mid".to_string(), -4)]);
    }

    #[test]
    fn clear_resets_the_registry_view() {
        let r = Registry::new();
        let held = r.counter("kept");
        held.add(9);
        r.clear();
        assert!(r.snapshot().counters.is_empty());
        // The held handle still works; the name is simply re-registered fresh.
        held.add(1);
        assert_eq!(r.counter("kept").get(), 0);
    }

    #[test]
    fn enable_flag_round_trips() {
        // Serialize against other tests touching the global flag by using
        // only this test's own observations.
        let before = enabled();
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
        set_enabled(before);
    }
}
