//! Minimal stand-in for `rand` 0.8 used by the offline build (see
//! `shims/README.md`). Implements exactly the API surface the workspace uses:
//! `rngs::StdRng` + `SeedableRng::seed_from_u64`, `Rng::{gen_range, gen_bool}`
//! and `seq::SliceRandom::choose`. `StdRng` is a SplitMix64 generator —
//! deterministic per seed, which the simulator's reproducibility tests rely
//! on (the real `StdRng` gives the same guarantee, with a different stream).

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next pseudo-random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// An RNG that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    fn gen_range<R: distributions::uniform::UniformRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (panics unless `0 ≤ p ≤ 1`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        // 53 uniform mantissa bits, exactly as rand's `gen_bool`.
        ((self.next_u64() >> 11) as f64) / ((1u64 << 53) as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

pub mod rngs {
    //! Concrete generators.
    use super::{RngCore, SeedableRng};

    /// Deterministic generator (SplitMix64) standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood) — full-period, passes BigCrush.
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

pub mod distributions {
    //! Distribution helpers backing [`Rng::gen_range`](crate::Rng::gen_range).
    pub mod uniform {
        //! Uniform sampling over ranges.
        use crate::RngCore;
        use std::ops::{Range, RangeInclusive};

        /// A range that can be sampled uniformly; implemented for
        /// `Range`/`RangeInclusive` over the primitive integer types.
        pub trait UniformRange {
            /// The sampled value type.
            type Output;
            /// Draws one uniform sample from the range.
            fn sample_from<R: RngCore>(self, rng: &mut R) -> Self::Output;
        }

        macro_rules! impl_uniform_int {
            ($($t:ty),*) => {$(
                impl UniformRange for Range<$t> {
                    type Output = $t;
                    fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "gen_range: empty range");
                        let span = (self.end as u128).wrapping_sub(self.start as u128);
                        self.start + (rng.next_u64() as u128 % span) as $t
                    }
                }
                impl UniformRange for RangeInclusive<$t> {
                    type Output = $t;
                    fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "gen_range: empty range");
                        let span = (hi as u128) - (lo as u128) + 1;
                        lo + (rng.next_u64() as u128 % span) as $t
                    }
                }
            )*};
        }

        impl_uniform_int!(u8, u16, u32, u64, usize);
    }
}

pub mod seq {
    //! Sequence-related extension traits.
    use super::Rng;

    /// Extension methods on slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Returns a uniformly chosen element, or `None` if the slice is empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}
