//! Workspace smoke test: one write/read round-trip through each of the four
//! emulations of Table 1 (`all_emulations`) under a seeded [`FairDriver`],
//! exercising the whole stack — `bounds` (parameters), `core` (algorithms),
//! `fpsm` (simulator) — in a few milliseconds.

use regemu::core::all_emulations;
use regemu::prelude::*;

#[test]
fn quick_sweep_through_the_facade_is_deterministic_and_consistent() {
    let mut config = SweepConfig::quick();
    config.threads = 2;
    let parallel = run_sweep(&config);
    config.threads = 1;
    let serial = run_sweep(&config);
    assert_eq!(parallel.len(), config.case_count());
    assert!(parallel.all_consistent());
    assert_eq!(parallel.to_json(), serial.to_json());
    assert_eq!(parallel.to_csv(), serial.to_csv());
}

#[test]
fn every_emulation_round_trips_under_a_fair_driver() {
    let params = Params::new(2, 1, 4).expect("k=2, f=1, n=4 is a valid parameter point");

    for emulation in all_emulations(params) {
        let mut sim = emulation.build_simulation();
        let writer = sim.register_client(emulation.writer_protocol(0));
        let reader = sim.register_client(emulation.reader_protocol());
        let mut driver = FairDriver::new(7);

        let write = sim
            .invoke(writer, HighOp::Write(41))
            .unwrap_or_else(|e| panic!("{}: write invocation failed: {e}", emulation.name()));
        driver
            .run_until_complete(&mut sim, write, 50_000)
            .unwrap_or_else(|e| panic!("{}: write did not complete: {e}", emulation.name()));
        assert_eq!(
            sim.result_of(write),
            Some(HighResponse::WriteAck),
            "{}: write must acknowledge",
            emulation.name()
        );

        let read = sim
            .invoke(reader, HighOp::Read)
            .unwrap_or_else(|e| panic!("{}: read invocation failed: {e}", emulation.name()));
        driver
            .run_until_complete(&mut sim, read, 50_000)
            .unwrap_or_else(|e| panic!("{}: read did not complete: {e}", emulation.name()));
        assert_eq!(
            sim.result_of(read),
            Some(HighResponse::ReadValue(41)),
            "{}: read must observe the completed write",
            emulation.name()
        );
    }
}
