//! A miniature "cloud object store" cell built on crash-prone disks.
//!
//! ```text
//! cargo run --example cloud_kv
//! ```
//!
//! The paper's motivation is cloud storage built from fault-prone servers
//! whose interfaces are limited to basic read/write (network-attached disks)
//! or simple conditional updates (CAS). This example builds a tiny replicated
//! key-value cell — one emulated register per key — and compares the space
//! cost of three server interfaces side by side:
//!
//! * plain read/write registers (Algorithm 2),
//! * max-registers (multi-writer ABD),
//! * CAS (ABD with Algorithm 1 per server).
//!
//! It then runs the same update/lookup workload against each backend, with a
//! server crash in the middle, and verifies the observed schedule.

use regemu::prelude::*;
use std::collections::BTreeMap;

/// A replicated key-value cell: one emulated register per key.
struct KvCell<'a> {
    emulation: &'a dyn Emulation,
    sims: BTreeMap<&'static str, Simulation>,
    writers: BTreeMap<&'static str, Vec<ClientId>>,
    readers: BTreeMap<&'static str, ClientId>,
    driver: FairDriver,
}

impl<'a> KvCell<'a> {
    fn new(emulation: &'a dyn Emulation, keys: &[&'static str], seed: u64) -> Self {
        let mut sims = BTreeMap::new();
        let mut writers = BTreeMap::new();
        let mut readers = BTreeMap::new();
        for key in keys {
            let mut sim = emulation.build_simulation();
            let ws: Vec<ClientId> = (0..emulation.params().k)
                .map(|i| sim.register_client(emulation.writer_protocol(i)))
                .collect();
            let r = sim.register_client(emulation.reader_protocol());
            sims.insert(*key, sim);
            writers.insert(*key, ws);
            readers.insert(*key, r);
        }
        KvCell {
            emulation,
            sims,
            writers,
            readers,
            driver: FairDriver::new(seed),
        }
    }

    fn put(&mut self, key: &'static str, tenant: usize, value: u64) -> Result<(), SimError> {
        let sim = self.sims.get_mut(key).expect("unknown key");
        let client = self.writers[key][tenant % self.emulation.params().k];
        let op = sim.invoke(client, HighOp::Write(value))?;
        self.driver.run_until_complete(sim, op, 100_000)
    }

    fn get(&mut self, key: &'static str) -> Result<u64, SimError> {
        let sim = self.sims.get_mut(key).expect("unknown key");
        let op = sim.invoke(self.readers[key], HighOp::Read)?;
        self.driver.run_until_complete(sim, op, 100_000)?;
        Ok(sim.result_of(op).and_then(|r| r.payload()).unwrap_or(0))
    }

    fn crash_disk(&mut self, server: usize) -> Result<(), SimError> {
        for sim in self.sims.values_mut() {
            sim.crash_server(ServerId::new(server))?;
        }
        Ok(())
    }

    fn space_per_key(&self) -> usize {
        self.emulation.base_object_count()
    }

    fn verify(&self) -> Result<(), Violation> {
        for sim in self.sims.values() {
            let history = HighHistory::from_run(sim.history());
            check_ws_regular(&history, &SequentialSpec::register())?;
        }
        Ok(())
    }
}

fn exercise(emulation: &dyn Emulation) -> Result<(), Box<dyn std::error::Error>> {
    let keys = ["users/alice", "users/bob", "billing/invoice-7"];
    let mut cell = KvCell::new(emulation, &keys, 7);

    println!(
        "backend {:<18} [{}]: {} base objects per key, {} per 3-key cell",
        emulation.name(),
        emulation.base_object_kind(),
        cell.space_per_key(),
        3 * cell.space_per_key(),
    );

    // Three tenants (writers) update the keys; one disk crashes mid-way.
    cell.put("users/alice", 0, 1001)?;
    cell.put("users/bob", 1, 2001)?;
    cell.crash_disk(emulation.params().n - 1)?;
    cell.put("billing/invoice-7", 2, 777)?;
    cell.put("users/alice", 1, 1002)?;

    assert_eq!(cell.get("users/alice")?, 1002);
    assert_eq!(cell.get("users/bob")?, 2001);
    assert_eq!(cell.get("billing/invoice-7")?, 777);
    cell.verify()?;
    println!("    lookups correct after a disk crash, schedules WS-Regular ✔");
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 3 tenants may update each key, the cell tolerates one disk crash, and
    // 5 disks are available.
    let params = Params::new(3, 1, 5)?;
    println!("replicated KV cell with {params}\n");

    let register_backend = SpaceOptimalEmulation::new(params);
    let max_register_backend = AbdMaxRegisterEmulation::new(params, false);
    let cas_backend = AbdCasEmulation::new(params, false);

    exercise(&register_backend)?;
    exercise(&max_register_backend)?;
    exercise(&cas_backend)?;

    println!(
        "\nSpace separation (Table 1): plain disks need {} registers per key, \
         while max-register or CAS disks need only {} — and the gap grows \
         linearly with the number of tenants.",
        register_upper_bound(params),
        max_register_bound(params.f),
    );
    Ok(())
}
