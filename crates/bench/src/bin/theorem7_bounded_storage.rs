//! Regenerates the **Theorem 7** table: minimum number of servers when every
//! server stores at most `m` registers, compared with the smallest `n` at
//! which Algorithm 2's layout fits the per-server budget.
//!
//! ```text
//! cargo run -p regemu-bench --bin theorem7_bounded_storage
//! ```

use regemu_bench::experiments::theorem7_bounded_storage;

fn main() {
    for (k, f) in [(4usize, 1usize), (6, 1), (4, 2)] {
        println!("{}", theorem7_bounded_storage(k, f, &[1, 2, 3, 4, 8]));
        println!();
    }
}
