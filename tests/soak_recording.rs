//! Bounded-memory soak: million-step runs under every recording mode.
//!
//! The full soak (`#[ignore]`, run it with `cargo test --release --test
//! soak_recording -- --include-ignored`) drives a single scenario past one
//! million simulation events and asserts the tentpole guarantees:
//!
//! * under `Ring(1024)` the peak retained-event count never exceeds the
//!   capacity, and the configured consistency condition is still verified —
//!   *online*, with complete coverage (the offline checkers are quadratic in
//!   run length and could not check a run this long);
//! * under `Digest` zero events are retained;
//! * the `RunMetrics` of the bounded runs are byte-identical to the `Full`
//!   run of the same seed, and match the closed-form golden values.
//!
//! CI runs the same assertions with a reduced operation count via the
//! `REGEMU_SOAK_OPS` environment variable; the non-ignored smoke test keeps
//! a small version in every local `cargo test`.

use regemu::prelude::*;

/// Workload size of the ignored soak (the smoke test uses a fixed small
/// count). Overridable with `REGEMU_SOAK_OPS` for CI.
fn soak_ops() -> usize {
    std::env::var("REGEMU_SOAK_OPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_SOAK_OPS)
}

/// Enough high-level operations to push the event stream past one million
/// events at `(k, f, n) = (2, 1, 4)` under the space-optimal construction.
const DEFAULT_SOAK_OPS: usize = 80_000;

const RING_CAPACITY: usize = 1024;

fn scenario(ops: usize, mode: RecordingModeSpec, check: ConsistencyCheck) -> Scenario {
    Scenario::new(Params::new(2, 1, 4).unwrap())
        .emulation(EmulationKind::SpaceOptimal)
        .workload(WorkloadSpec::RandomMixed {
            readers: 2,
            total: ops,
            write_percent: 50,
        })
        .recording(mode)
        .check(check)
        .seed(2024)
}

fn run(ops: usize, mode: RecordingModeSpec, check: ConsistencyCheck) -> (RunReport, u64, usize) {
    let mut run = scenario(ops, mode, check).build();
    run.run().expect("soak scenario completes");
    let total = run.history().total_events();
    let peak = run.history().peak_retained_events();
    (run.into_report(), total, peak)
}

fn soak(ops: usize, expect_million: bool) {
    // Full recording is metrics-only here on purpose: offline checking is
    // O(reads × writes) and would dominate the soak; proving verdict
    // agreement at scale is the online checker's job below (and the
    // property suite's at small scale).
    let (full, full_total, full_peak) = run(ops, RecordingModeSpec::Full, ConsistencyCheck::None);
    let (ring, ring_total, ring_peak) = run(
        ops,
        RecordingModeSpec::Ring(RING_CAPACITY),
        ConsistencyCheck::WsRegular,
    );
    let (digest, digest_total, digest_peak) =
        run(ops, RecordingModeSpec::Digest, ConsistencyCheck::None);

    eprintln!(
        "soak({ops} ops): {full_total} events; peak retained full={full_peak} \
         ring={ring_peak} digest={digest_peak}"
    );
    if expect_million {
        assert!(
            full_total >= 1_000_000,
            "soak run too short: {full_total} events (raise DEFAULT_SOAK_OPS)"
        );
    }

    // The run itself is recording-independent: same event count, same
    // metrics, same completions, same high-level schedule.
    assert_eq!(ring_total, full_total);
    assert_eq!(digest_total, full_total);
    assert_eq!(ring.metrics, full.metrics);
    assert_eq!(digest.metrics, full.metrics);
    assert_eq!(ring.completed_ops, full.completed_ops);
    assert_eq!(digest.history, full.history);
    assert_eq!(ring.history, full.history);

    // Memory bounds: Full retains everything, Ring at most its capacity,
    // Digest nothing.
    assert_eq!(full_peak as u64, full_total);
    assert!(
        ring_peak <= RING_CAPACITY,
        "ring peak {ring_peak} exceeds capacity {RING_CAPACITY}"
    );
    assert_eq!(digest_peak, 0);

    // The bounded run is still *checked*: online, over the whole stream.
    assert!(ring.is_fully_checked(), "{:?}", ring.check_coverage);
    assert!(ring.is_consistent(), "{:?}", ring.check_violation);

    // With folded-interval eviction the *interval digest* is bounded too:
    // retained intervals track the checker's window (point contention), not
    // the number of high-level operations, while metrics and the online
    // verdict are untouched.
    let mut evicting = scenario(
        ops,
        RecordingModeSpec::Ring(RING_CAPACITY),
        ConsistencyCheck::WsRegular,
    )
    .evict_folded_intervals()
    .build();
    evicting.run().expect("evicting soak scenario completes");
    let peak_intervals = evicting.history().peak_retained_intervals();
    let total_intervals = evicting.history().total_intervals();
    eprintln!("soak({ops} ops): interval digest peak {peak_intervals} of {total_intervals}");
    assert_eq!(total_intervals, ops as u64);
    assert!(
        peak_intervals <= 64,
        "interval digest grew to {peak_intervals} (of {total_intervals}) despite eviction"
    );
    let evicting_report = evicting.into_report();
    assert_eq!(evicting_report.metrics, full.metrics);
    assert!(evicting_report.is_fully_checked());
    assert!(evicting_report.is_consistent());

    // Golden values (tier-1 metrics): the space-optimal construction uses
    // exactly its provisioned layout, which is the Theorem 3 closed form.
    let params = Params::new(2, 1, 4).unwrap();
    assert_eq!(
        full.metrics.resource_consumption(),
        register_upper_bound(params)
    );
    assert_eq!(full.completed_ops, ops);
    assert_eq!(full.metrics.point_contention, ring.metrics.point_contention);
    assert!(full.metrics.low_level_responses <= full.metrics.low_level_triggers);
}

/// Small enough for every local `cargo test` run, asserting the same
/// invariants as the full soak.
#[test]
fn soak_smoke_bounded_recording() {
    soak(1_500, false);
}

/// The million-step soak. `#[ignore]`d locally (seconds of release-mode
/// work, much longer unoptimized); CI runs it with `--include-ignored` and
/// a reduced `REGEMU_SOAK_OPS`.
#[test]
#[ignore = "million-step soak; run with --release --include-ignored"]
fn soak_million_step_ring_is_bounded_and_checked() {
    let ops = soak_ops();
    soak(ops, ops >= DEFAULT_SOAK_OPS);
}
