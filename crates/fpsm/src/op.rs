//! Low-level and high-level operation types.
//!
//! *Low-level* operations ([`BaseOp`]/[`BaseResponse`]) are **triggered** on
//! base objects and eventually **respond**; *high-level* operations
//! ([`HighOp`]/[`HighResponse`]) are **invoked** on the emulated register and
//! eventually **return**. The vocabulary mirrors Section 2 of the paper.

use crate::value::{Payload, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A low-level operation triggered on a base object.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum BaseOp {
    /// `read()` on a read/write register.
    Read,
    /// `write(v)` on a read/write register.
    Write(Value),
    /// `read-max()` on a max-register.
    ReadMax,
    /// `write-max(v)` on a max-register.
    WriteMax(Value),
    /// `CAS(expected, new)` on a compare-and-swap object; returns the old value.
    Cas {
        /// Value the object must currently hold for the swap to take effect.
        expected: Value,
        /// Value installed if the comparison succeeds.
        new: Value,
    },
}

impl BaseOp {
    /// Returns `true` if the operation can modify the state of the object.
    ///
    /// Note that a `CAS` is always counted as a (potential) writer, matching
    /// the treatment of RMW primitives in the paper: a pending `CAS` may take
    /// effect arbitrarily late and overwrite the object.
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            BaseOp::Write(_) | BaseOp::WriteMax(_) | BaseOp::Cas { .. }
        )
    }

    /// Returns `true` if the operation only observes the object state.
    pub fn is_read(&self) -> bool {
        !self.is_write()
    }

    /// Returns the value this operation attempts to install, if any.
    pub fn written_value(&self) -> Option<Value> {
        match self {
            BaseOp::Write(v) | BaseOp::WriteMax(v) => Some(*v),
            BaseOp::Cas { new, .. } => Some(*new),
            BaseOp::Read | BaseOp::ReadMax => None,
        }
    }
}

impl fmt::Display for BaseOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaseOp::Read => write!(f, "read()"),
            BaseOp::Write(v) => write!(f, "write({v})"),
            BaseOp::ReadMax => write!(f, "read-max()"),
            BaseOp::WriteMax(v) => write!(f, "write-max({v})"),
            BaseOp::Cas { expected, new } => write!(f, "CAS({expected},{new})"),
        }
    }
}

/// The response matching a [`BaseOp`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum BaseResponse {
    /// Response to [`BaseOp::Read`]: the current value of the register.
    ReadValue(Value),
    /// Acknowledgement of [`BaseOp::Write`].
    WriteAck,
    /// Response to [`BaseOp::ReadMax`]: the maximum value written so far.
    MaxValue(Value),
    /// Acknowledgement of [`BaseOp::WriteMax`].
    WriteMaxAck,
    /// Response to [`BaseOp::Cas`]: the value held *before* the operation.
    CasOld(Value),
}

impl BaseResponse {
    /// Returns the value carried by the response, if any.
    pub fn value(&self) -> Option<Value> {
        match self {
            BaseResponse::ReadValue(v) | BaseResponse::MaxValue(v) | BaseResponse::CasOld(v) => {
                Some(*v)
            }
            BaseResponse::WriteAck | BaseResponse::WriteMaxAck => None,
        }
    }

    /// Returns `true` if this is an acknowledgement of a write-class operation.
    pub fn is_write_ack(&self) -> bool {
        matches!(self, BaseResponse::WriteAck | BaseResponse::WriteMaxAck)
    }
}

impl fmt::Display for BaseResponse {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaseResponse::ReadValue(v) => write!(f, "value({v})"),
            BaseResponse::WriteAck => write!(f, "ack"),
            BaseResponse::MaxValue(v) => write!(f, "max({v})"),
            BaseResponse::WriteMaxAck => write!(f, "ack-max"),
            BaseResponse::CasOld(v) => write!(f, "old({v})"),
        }
    }
}

/// A high-level operation invoked on the emulated multi-writer register.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum HighOp {
    /// An emulated `write(v)`.
    Write(Payload),
    /// An emulated `read()`.
    Read,
}

impl HighOp {
    /// Returns `true` for emulated writes.
    pub fn is_write(&self) -> bool {
        matches!(self, HighOp::Write(_))
    }

    /// Returns `true` for emulated reads.
    pub fn is_read(&self) -> bool {
        matches!(self, HighOp::Read)
    }

    /// Returns the payload of an emulated write, if any.
    pub fn payload(&self) -> Option<Payload> {
        match self {
            HighOp::Write(v) => Some(*v),
            HighOp::Read => None,
        }
    }
}

impl fmt::Display for HighOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HighOp::Write(v) => write!(f, "WRITE({v})"),
            HighOp::Read => write!(f, "READ()"),
        }
    }
}

/// The return value of a high-level operation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum HighResponse {
    /// Acknowledgement of an emulated write.
    WriteAck,
    /// Value returned by an emulated read.
    ReadValue(Payload),
}

impl HighResponse {
    /// Returns the payload returned by an emulated read, if any.
    pub fn payload(&self) -> Option<Payload> {
        match self {
            HighResponse::ReadValue(v) => Some(*v),
            HighResponse::WriteAck => None,
        }
    }
}

impl fmt::Display for HighResponse {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HighResponse::WriteAck => write!(f, "OK"),
            HighResponse::ReadValue(v) => write!(f, "VALUE({v})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_op_classification() {
        assert!(BaseOp::Write(Value::new(1, 1)).is_write());
        assert!(BaseOp::WriteMax(Value::new(1, 1)).is_write());
        assert!(BaseOp::Cas {
            expected: Value::INITIAL,
            new: Value::new(1, 1)
        }
        .is_write());
        assert!(BaseOp::Read.is_read());
        assert!(BaseOp::ReadMax.is_read());
        assert!(!BaseOp::Read.is_write());
    }

    #[test]
    fn written_value_extraction() {
        let v = Value::new(2, 9);
        assert_eq!(BaseOp::Write(v).written_value(), Some(v));
        assert_eq!(BaseOp::WriteMax(v).written_value(), Some(v));
        assert_eq!(
            BaseOp::Cas {
                expected: Value::INITIAL,
                new: v
            }
            .written_value(),
            Some(v)
        );
        assert_eq!(BaseOp::Read.written_value(), None);
    }

    #[test]
    fn response_value_extraction() {
        let v = Value::new(1, 5);
        assert_eq!(BaseResponse::ReadValue(v).value(), Some(v));
        assert_eq!(BaseResponse::MaxValue(v).value(), Some(v));
        assert_eq!(BaseResponse::CasOld(v).value(), Some(v));
        assert_eq!(BaseResponse::WriteAck.value(), None);
        assert!(BaseResponse::WriteAck.is_write_ack());
        assert!(!BaseResponse::ReadValue(v).is_write_ack());
    }

    #[test]
    fn high_op_payloads() {
        assert!(HighOp::Write(4).is_write());
        assert!(HighOp::Read.is_read());
        assert_eq!(HighOp::Write(4).payload(), Some(4));
        assert_eq!(HighOp::Read.payload(), None);
        assert_eq!(HighResponse::ReadValue(4).payload(), Some(4));
        assert_eq!(HighResponse::WriteAck.payload(), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(BaseOp::Read.to_string(), "read()");
        assert_eq!(HighOp::Write(3).to_string(), "WRITE(3)");
        assert_eq!(HighResponse::ReadValue(3).to_string(), "VALUE(3)");
    }
}
