//! Workload generation.
//!
//! A [`Workload`] is a sequence of high-level operations attributed to
//! clients: writers issue `write`s, readers issue `read`s. Generators are
//! seeded and deterministic so experiments are reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use regemu_fpsm::{HighOp, Payload};
use serde::{Deserialize, Serialize};

/// Who issues an operation of a workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Issuer {
    /// The `i`-th writer client (0-based, `< k`).
    Writer(usize),
    /// The `i`-th reader client (0-based).
    Reader(usize),
}

/// One step of a workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadOp {
    /// The issuing client.
    pub issuer: Issuer,
    /// The high-level operation to invoke.
    pub op: HighOp,
    /// When `true`, the runner waits for this operation to complete before
    /// issuing the next one; when `false`, the next operation may be invoked
    /// concurrently (by a different client).
    pub sequential: bool,
}

/// A deterministic sequence of high-level operations.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Workload {
    ops: Vec<WorkloadOp>,
    readers: usize,
}

impl Workload {
    /// A workload from explicit operation steps (used verbatim by the
    /// runner). The reader-client count is derived from the highest reader
    /// index the steps reference.
    pub fn from_steps(ops: Vec<WorkloadOp>) -> Self {
        let readers = ops
            .iter()
            .filter_map(|o| match o.issuer {
                Issuer::Reader(i) => Some(i + 1),
                Issuer::Writer(_) => None,
            })
            .max()
            .unwrap_or(0);
        Workload { ops, readers }
    }

    /// The operations, in issue order.
    pub fn ops(&self) -> &[WorkloadOp] {
        &self.ops
    }

    /// Number of distinct reader clients referenced by the workload.
    pub fn reader_count(&self) -> usize {
        self.readers
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` if the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of write operations.
    pub fn write_count(&self) -> usize {
        self.ops.iter().filter(|o| o.op.is_write()).count()
    }

    /// The write-sequential workload of the paper's lower-bound runs: each of
    /// the `k` writers issues `rounds` writes of distinct values, one at a
    /// time, interleaved with a read after every write (issued by one
    /// reader).
    pub fn write_sequential(k: usize, rounds: usize, read_after_each: bool) -> Self {
        let mut ops = Vec::new();
        let mut value: Payload = 0;
        for round in 0..rounds {
            for w in 0..k {
                value += 1;
                ops.push(WorkloadOp {
                    issuer: Issuer::Writer(w),
                    op: HighOp::Write(value),
                    sequential: true,
                });
                if read_after_each {
                    ops.push(WorkloadOp {
                        issuer: Issuer::Reader(0),
                        op: HighOp::Read,
                        sequential: true,
                    });
                }
                let _ = round;
            }
        }
        Workload {
            ops,
            readers: usize::from(read_after_each),
        }
    }

    /// A read-heavy workload: one writer update followed by `reads_per_write`
    /// reads spread over `readers` reader clients.
    pub fn read_heavy(k: usize, writes: usize, reads_per_write: usize, readers: usize) -> Self {
        assert!(
            readers > 0,
            "a read-heavy workload needs at least one reader"
        );
        let mut ops = Vec::new();
        let mut value = 0;
        for i in 0..writes {
            value += 1;
            ops.push(WorkloadOp {
                issuer: Issuer::Writer(i % k),
                op: HighOp::Write(value),
                sequential: true,
            });
            for r in 0..reads_per_write {
                ops.push(WorkloadOp {
                    issuer: Issuer::Reader(r % readers),
                    op: HighOp::Read,
                    sequential: true,
                });
            }
        }
        Workload { ops, readers }
    }

    /// A randomized mixed workload: `total` operations, each a write with
    /// probability `write_ratio` (issued by a uniformly random writer) or a
    /// read otherwise; operations are issued sequentially.
    pub fn random_mixed(
        k: usize,
        readers: usize,
        total: usize,
        write_ratio: f64,
        seed: u64,
    ) -> Self {
        assert!(readers > 0, "a mixed workload needs at least one reader");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ops = Vec::new();
        let mut value = 0;
        for _ in 0..total {
            if rng.gen_bool(write_ratio) {
                value += 1;
                ops.push(WorkloadOp {
                    issuer: Issuer::Writer(rng.gen_range(0..k)),
                    op: HighOp::Write(value),
                    sequential: true,
                });
            } else {
                ops.push(WorkloadOp {
                    issuer: Issuer::Reader(rng.gen_range(0..readers)),
                    op: HighOp::Read,
                    sequential: true,
                });
            }
        }
        Workload { ops, readers }
    }

    /// A concurrent workload in which reads overlap writes: every write is
    /// issued concurrently with a read by a dedicated reader (the runner does
    /// not wait for the write before invoking the read).
    pub fn concurrent_read_write(k: usize, rounds: usize) -> Self {
        let mut ops = Vec::new();
        let mut value = 0;
        for _ in 0..rounds {
            for w in 0..k {
                value += 1;
                ops.push(WorkloadOp {
                    issuer: Issuer::Writer(w),
                    op: HighOp::Write(value),
                    sequential: false,
                });
                ops.push(WorkloadOp {
                    issuer: Issuer::Reader(0),
                    op: HighOp::Read,
                    sequential: true,
                });
            }
        }
        Workload { ops, readers: 1 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_sequential_workload_shape() {
        let w = Workload::write_sequential(3, 2, true);
        assert_eq!(w.len(), 12);
        assert_eq!(w.write_count(), 6);
        assert_eq!(w.reader_count(), 1);
        assert!(w.ops().iter().all(|o| o.sequential));
        // Values are distinct and increasing.
        let values: Vec<_> = w.ops().iter().filter_map(|o| o.op.payload()).collect();
        let mut sorted = values.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(values.len(), sorted.len());

        let no_reads = Workload::write_sequential(2, 1, false);
        assert_eq!(no_reads.reader_count(), 0);
        assert_eq!(no_reads.write_count(), no_reads.len());
    }

    #[test]
    fn read_heavy_workload_shape() {
        let w = Workload::read_heavy(2, 4, 3, 2);
        assert_eq!(w.write_count(), 4);
        assert_eq!(w.len(), 4 * 4);
        assert_eq!(w.reader_count(), 2);
    }

    #[test]
    fn random_mixed_is_deterministic_per_seed() {
        let a = Workload::random_mixed(3, 2, 50, 0.5, 7);
        let b = Workload::random_mixed(3, 2, 50, 0.5, 7);
        let c = Workload::random_mixed(3, 2, 50, 0.5, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 50);
        assert!(!a.is_empty());
    }

    #[test]
    fn concurrent_workload_marks_overlapping_ops() {
        let w = Workload::concurrent_read_write(2, 1);
        assert_eq!(w.len(), 4);
        assert!(w.ops().iter().any(|o| !o.sequential));
    }

    #[test]
    #[should_panic(expected = "at least one reader")]
    fn read_heavy_requires_readers() {
        Workload::read_heavy(1, 1, 1, 0);
    }
}
