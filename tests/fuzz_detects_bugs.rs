//! Seeded-bug oracle suite for the fuzzer (`regemu::fuzz`): every
//! intentionally broken emulation variant ([`FaultyKind`]) must be caught
//! within a fixed budget, the clean constructions must survive the *same*
//! budget with zero failures, and each caught failure must shrink to a
//! deterministic, replayable repro. This is the suite the CI `fuzz-smoke`
//! job runs.

use regemu::prelude::*;

const BUDGET: usize = 200;
const SEED: u64 = 61525;

fn faulty_config(kind: FaultyKind) -> FuzzConfig {
    FuzzConfig::new(Params::new(1, 1, 3).unwrap())
        .emulation(FuzzEmulation::Faulty(kind))
        .seed(SEED)
        .budget(BUDGET)
}

#[test]
fn every_seeded_bug_is_found_within_the_budget() {
    for kind in FaultyKind::ALL {
        let report = Fuzzer::new(faulty_config(kind).stop_on_failure()).run();
        assert!(
            report.found(),
            "{kind:?} not caught within {BUDGET} iterations"
        );
        let failure = &report.failures[0];
        // Safety bugs surface as consistency violations; the dropped-acks
        // liveness bug never violates a condition and must be caught by the
        // stuck oracle instead.
        if kind.is_liveness_bug() {
            assert_eq!(
                failure.kind,
                FailureKind::Stuck,
                "{kind:?} failed as {:?}, expected the stuck oracle",
                failure.kind
            );
        } else {
            assert!(
                matches!(failure.kind, FailureKind::Violation(_)),
                "{kind:?} failed as {:?}, expected a consistency violation",
                failure.kind
            );
        }
    }
}

#[test]
fn clean_constructions_survive_the_same_budget_with_zero_failures() {
    for kind in EmulationKind::ALL {
        let config = FuzzConfig::new(Params::new(1, 1, 3).unwrap())
            .emulation(FuzzEmulation::Kind(kind))
            .seed(SEED)
            .budget(BUDGET);
        let report = Fuzzer::new(config).run();
        assert!(
            !report.found(),
            "{kind} failed under fuzzing: {}",
            report.failures[0].verdict
        );
        assert_eq!(report.iterations, BUDGET);
        assert!(report.corpus_size > 1, "no coverage growth on {kind}");
    }
}

#[test]
fn every_found_failure_shrinks_to_a_replayable_repro() {
    for kind in FaultyKind::ALL {
        let config = faulty_config(kind).stop_on_failure();
        let (report, shrunk) = fuzz_and_shrink(config.clone());
        assert!(report.found(), "{kind:?} not caught");
        let failure = shrunk.expect("a found failure must shrink");
        // The shrunk case still fails the same condition...
        assert_eq!(failure.kind, report.failures[0].kind);
        // ...and the emitted trace replays to the byte-identical verdict.
        let text = failure.trace.to_text();
        let parsed = RecordedSchedule::from_text(&text).unwrap();
        let outcome = replay(&parsed).unwrap();
        assert_eq!(outcome.kind.as_ref(), Some(&failure.kind));
        assert_eq!(outcome.verdict, failure.verdict);
        // The report names the replay command for triage.
        assert!(failure
            .replay_command("repro.trace")
            .contains("fuzz_campaign replay repro.trace"));
    }
}

#[test]
fn shrinking_is_deterministic_and_idempotent() {
    let config = faulty_config(FaultyKind::WeakQuorumWrite).stop_on_failure();
    let (report_a, shrunk_a) = fuzz_and_shrink(config.clone());
    let (report_b, shrunk_b) = fuzz_and_shrink(config.clone());
    assert_eq!(report_a.to_text(), report_b.to_text());
    let (a, b) = (shrunk_a.unwrap(), shrunk_b.unwrap());
    assert_eq!(a.trace, b.trace);
    assert_eq!(a.to_text(), b.to_text());
    // Shrinking the shrunk case again is a fixed point.
    let kind = report_a.failures[0].kind.clone();
    let case = a.trace.case();
    let (again, _) = regemu::fuzz::shrink_case(&config, &case, &kind);
    assert_eq!(again, case);
}

#[test]
fn corpus_evolution_is_a_pure_function_of_the_seed() {
    let config = FuzzConfig::new(Params::new(2, 1, 4).unwrap())
        .seed(SEED)
        .budget(60);
    let a = Fuzzer::new(config.clone()).run();
    let b = Fuzzer::new(config).run();
    assert_eq!(a.to_text(), b.to_text());
    assert!(!a.found());
    // A different seed explores differently.
    let c = Fuzzer::new(
        FuzzConfig::new(Params::new(2, 1, 4).unwrap())
            .seed(SEED + 1)
            .budget(60),
    )
    .run();
    assert_ne!(a.to_text(), c.to_text());
}

#[test]
fn the_shrunk_weak_quorum_repro_is_minimal_noise_free() {
    // The weak-quorum bug needs only delivery ordering: the shrunk repro
    // must carry no crash and a canonical (zero) tail seed.
    let config = faulty_config(FaultyKind::WeakQuorumWrite).stop_on_failure();
    let (_, shrunk) = fuzz_and_shrink(config);
    let trace = shrunk.expect("weak quorum must be caught").trace;
    assert!(trace.crashes.is_empty(), "{:?}", trace.crashes);
    assert_eq!(trace.tail_seed, 0);
    assert!(trace.workload_len <= 2, "{}", trace.workload_len);
}
