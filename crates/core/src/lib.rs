//! # regemu-core — fault-tolerant register emulation algorithms
//!
//! Executable implementations of every construction in Chockler &
//! Spiegelman, *Space Complexity of Fault-Tolerant Register Emulations*
//! (PODC 2017):
//!
//! * [`emulation::SpaceOptimalEmulation`] — the paper's main upper bound
//!   (Algorithm 2): an `f`-tolerant, wait-free, WS-Regular `k`-writer
//!   register from `kf + ⌈k/z⌉(f+1)` plain read/write registers;
//! * [`emulation::AbdMaxRegisterEmulation`] — multi-writer ABD over one
//!   max-register per server (`2f + 1` base objects);
//! * [`emulation::AbdCasEmulation`] — the same protocol over one CAS object
//!   per server, with each server's max-register interface provided by
//!   Algorithm 1 (Appendix B);
//! * [`emulation::RegisterBankEmulation`] — the `(2f+1)·k` register
//!   construction for the `n = 2f+1` special case (a `k`-slot max-register
//!   bank per server);
//! * [`shared_memory`] — real-threaded counterparts of the standard
//!   shared-memory corollaries (Algorithm 1 over an `AtomicU64`, the
//!   collect-based `k`-register max-register of Theorem 2, and a `fetch_max`
//!   baseline).
//!
//! All simulated protocols implement
//! [`regemu_fpsm::ClientProtocol`] and run inside the `regemu-fpsm`
//! fault-prone shared-memory simulator; their measured space consumption is
//! compared against the closed-form bounds of `regemu-bounds` by the test
//! suites and the experiment harness.
//!
//! ## Example: one write, one read over the space-optimal construction
//!
//! ```
//! use regemu_core::prelude::*;
//! use regemu_fpsm::prelude::*;
//!
//! let params = Params::new(2, 1, 4)?; // k = 2 writers, f = 1, n = 4 servers
//! let emulation = SpaceOptimalEmulation::new(params);
//! let mut sim = emulation.build_simulation();
//! let writer = sim.register_client(emulation.writer_protocol(0));
//! let reader = sim.register_client(emulation.reader_protocol());
//!
//! let mut driver = FairDriver::new(42);
//! let w = sim.invoke(writer, HighOp::Write(7))?;
//! driver.run_until_complete(&mut sim, w, 10_000)?;
//! let r = sim.invoke(reader, HighOp::Read)?;
//! driver.run_until_complete(&mut sim, r, 10_000)?;
//! assert_eq!(sim.result_of(r), Some(HighResponse::ReadValue(7)));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod abd;
pub mod drivers;
pub mod emulation;
pub mod faulty;
pub mod layout;
pub mod quorum;
pub mod shared_memory;
pub mod timestamp;
pub mod upper_bound;
pub mod wire;

pub use abd::AbdClient;
pub use drivers::{BankMaxDriver, CasMaxDriver, MaxDriver, MaxOutcome, NativeMaxDriver};
pub use emulation::{
    all_emulations, register_based_emulations, AbdCasEmulation, AbdMaxRegisterEmulation, Emulation,
    EmulationKind, RegisterBankEmulation, SpaceOptimalEmulation,
};
pub use faulty::FaultyKind;
pub use layout::RegisterLayout;
pub use shared_memory::{
    CasMaxRegister, CollectMaxRegister, CollectWriter, FetchMaxRegister, SharedMaxRegister,
};
pub use upper_bound::{SharedLayout, SpaceOptimalClient};
pub use wire::{decode_frame, FaultCode, FrameError, WireMsg, MAX_FRAME_LEN, WIRE_VERSION};

/// Convenient glob import of the most frequently used items.
pub mod prelude {
    pub use crate::abd::AbdClient;
    pub use crate::drivers::{BankMaxDriver, CasMaxDriver, MaxDriver, NativeMaxDriver};
    pub use crate::emulation::{
        all_emulations, AbdCasEmulation, AbdMaxRegisterEmulation, Emulation, EmulationKind,
        RegisterBankEmulation, SpaceOptimalEmulation,
    };
    pub use crate::faulty::FaultyKind;
    pub use crate::layout::RegisterLayout;
    pub use crate::shared_memory::{
        CasMaxRegister, CollectMaxRegister, FetchMaxRegister, SharedMaxRegister,
    };
    pub use crate::upper_bound::{SharedLayout, SpaceOptimalClient};
    pub use crate::wire::{decode_frame, FaultCode, FrameError, WireMsg};
    pub use regemu_bounds::Params;
}
