//! High-level histories (schedules) extracted from simulation runs.
//!
//! The consistency conditions of the paper (atomicity, WS-Regularity,
//! WS-Safety) are predicates over *schedules*: sequences of invocations and
//! responses of the high-level read/write operations. [`HighHistory`] is that
//! schedule, in the interval representation convenient for checking.

use regemu_fpsm::history::HighInterval;
use regemu_fpsm::{ClientId, HighOp, HighOpId, HighResponse, History, Payload, Time};
use serde::{Deserialize, Serialize};

/// A schedule of high-level operations, represented as intervals.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HighHistory {
    ops: Vec<HighInterval>,
}

impl HighHistory {
    /// Builds a high-level history from a recorded simulation run.
    pub fn from_run(history: &History) -> Self {
        HighHistory {
            ops: history.high_intervals(),
        }
    }

    /// Builds a history directly from intervals (mainly for tests).
    pub fn from_intervals(ops: Vec<HighInterval>) -> Self {
        HighHistory { ops }
    }

    /// All operations, in invocation order.
    pub fn ops(&self) -> &[HighInterval] {
        &self.ops
    }

    /// Number of operations in the schedule.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` if the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// All write operations, in invocation order.
    pub fn writes(&self) -> Vec<HighInterval> {
        self.ops
            .iter()
            .filter(|o| o.op.is_write())
            .copied()
            .collect()
    }

    /// All *complete* read operations, in invocation order.
    pub fn complete_reads(&self) -> Vec<HighInterval> {
        self.ops
            .iter()
            .filter(|o| o.op.is_read() && o.is_complete())
            .copied()
            .collect()
    }

    /// Returns `true` if no two writes are concurrent (write-sequential
    /// schedule).
    pub fn is_write_sequential(&self) -> bool {
        let writes = self.writes();
        for (i, a) in writes.iter().enumerate() {
            for b in writes.iter().skip(i + 1) {
                if a.concurrent_with(b) {
                    return false;
                }
            }
        }
        true
    }

    /// The write operations sorted by their real-time order. Only meaningful
    /// for write-sequential schedules, where this order is total.
    ///
    /// Incomplete writes sort after all complete ones (they can only be
    /// ordered last in a write-sequential schedule).
    pub fn sequential_writes(&self) -> Vec<HighInterval> {
        let mut writes = self.writes();
        writes.sort_by_key(|w| match w.returned {
            Some((t, _)) => (0u8, t),
            None => (1u8, w.invoked_at),
        });
        writes
    }

    /// Builder helper used pervasively in tests: append a complete operation.
    pub fn push_complete(
        &mut self,
        client: usize,
        op: HighOp,
        response: HighResponse,
        invoked_at: Time,
        returned_at: Time,
    ) {
        let id = HighOpId::new(self.ops.len() as u64);
        self.ops.push(HighInterval {
            id,
            client: ClientId::new(client),
            op,
            invoked_at,
            returned: Some((returned_at, response)),
        });
    }

    /// Builder helper: append a pending (incomplete) operation.
    pub fn push_pending(&mut self, client: usize, op: HighOp, invoked_at: Time) {
        let id = HighOpId::new(self.ops.len() as u64);
        self.ops.push(HighInterval {
            id,
            client: ClientId::new(client),
            op,
            invoked_at,
            returned: None,
        });
    }

    /// Convenience builder: a complete write interval.
    pub fn write(
        client: usize,
        value: Payload,
        invoked_at: Time,
        returned_at: Time,
    ) -> HighInterval {
        HighInterval {
            id: HighOpId::new(0),
            client: ClientId::new(client),
            op: HighOp::Write(value),
            invoked_at,
            returned: Some((returned_at, HighResponse::WriteAck)),
        }
    }

    /// Convenience builder: a complete read interval returning `value`.
    pub fn read(
        client: usize,
        value: Payload,
        invoked_at: Time,
        returned_at: Time,
    ) -> HighInterval {
        HighInterval {
            id: HighOpId::new(0),
            client: ClientId::new(client),
            op: HighOp::Read,
            invoked_at,
            returned: Some((returned_at, HighResponse::ReadValue(value))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> HighHistory {
        let mut h = HighHistory::default();
        h.push_complete(0, HighOp::Write(1), HighResponse::WriteAck, 0, 2);
        h.push_complete(1, HighOp::Read, HighResponse::ReadValue(1), 3, 4);
        h.push_complete(2, HighOp::Write(2), HighResponse::WriteAck, 5, 6);
        h.push_pending(3, HighOp::Read, 7);
        h
    }

    #[test]
    fn extraction_and_filters() {
        let h = sample();
        assert_eq!(h.len(), 4);
        assert!(!h.is_empty());
        assert_eq!(h.writes().len(), 2);
        assert_eq!(h.complete_reads().len(), 1);
        assert!(h.is_write_sequential());
    }

    #[test]
    fn sequential_writes_are_ordered_by_return_time() {
        let mut h = HighHistory::default();
        h.push_complete(0, HighOp::Write(2), HighResponse::WriteAck, 5, 6);
        h.push_complete(1, HighOp::Write(1), HighResponse::WriteAck, 0, 2);
        let seq = h.sequential_writes();
        assert_eq!(seq[0].op, HighOp::Write(1));
        assert_eq!(seq[1].op, HighOp::Write(2));
    }

    #[test]
    fn concurrent_writes_detected() {
        let mut h = HighHistory::default();
        h.push_complete(0, HighOp::Write(1), HighResponse::WriteAck, 0, 5);
        h.push_complete(1, HighOp::Write(2), HighResponse::WriteAck, 2, 7);
        assert!(!h.is_write_sequential());
    }

    #[test]
    fn incomplete_writes_sort_last() {
        let mut h = HighHistory::default();
        h.push_pending(0, HighOp::Write(9), 0);
        h.push_complete(1, HighOp::Write(1), HighResponse::WriteAck, 1, 2);
        let seq = h.sequential_writes();
        assert_eq!(seq[0].op, HighOp::Write(1));
        assert_eq!(seq[1].op, HighOp::Write(9));
    }
}
