//! `fuzz_campaign` — coverage-guided schedule fuzzing and trace replay.
//!
//! ```text
//! # Fuzz: explore schedules, shrink the first failure to a trace file.
//! cargo run --release -p regemu-bench --bin fuzz_campaign -- \
//!     [--params k,f,n] [--emulation NAME] [--workload LABEL] [--check NAME] \
//!     [--seed S] [--budget B] [--stop-on-failure] [--out FILE] [--trace FILE]
//!
//! # Replay: re-execute a recorded trace and re-derive its verdict.
//! cargo run --release -p regemu-bench --bin fuzz_campaign -- replay TRACE
//! ```
//!
//! Fuzz mode writes the deterministic campaign report to `--out` (`-` =
//! stdout, the default) and, when a failure is found, the shrunk repro to
//! `--trace` as a `regemu-trace v1` file plus the failure report to stderr.
//! Replay mode prints the verdict of the replayed schedule.
//!
//! Exit status: `0` when the campaign is clean (or the replay passes), `2`
//! when a failure is found (or the replay fails), `1` on usage or I/O
//! errors. The same seed always produces the same report, the same shrunk
//! trace and the same exit status.

use regemu_bench::cli::write_output;
use regemu_bench::info;
use regemu_workloads::fuzz::{
    fuzz_and_shrink, replay, FuzzConfig, FuzzEmulation, RecordedSchedule,
};
use regemu_workloads::{ConsistencyCheck, WorkloadSpec};

fn fail(msg: &str) -> ! {
    eprintln!("fuzz_campaign: {msg}");
    eprintln!(
        "usage: fuzz_campaign [--params k,f,n] [--emulation NAME] [--workload LABEL] \
         [--check NAME] [--seed S] [--budget B] [--stop-on-failure] [--out FILE] [--trace FILE]"
    );
    eprintln!("       fuzz_campaign replay TRACE");
    std::process::exit(1);
}

fn run_replay(path: &str) -> ! {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("cannot read trace {path}: {e}")));
    let schedule = RecordedSchedule::from_text(&text)
        .unwrap_or_else(|e| fail(&format!("malformed trace {path}: {e}")));
    let outcome = replay(&schedule).unwrap_or_else(|e| fail(&format!("cannot replay: {e}")));
    println!("verdict {}", outcome.verdict);
    std::process::exit(if outcome.kind.is_some() { 2 } else { 0 });
}

fn main() {
    let mut args = std::env::args().skip(1).peekable();
    if args.peek().map(String::as_str) == Some("replay") {
        args.next();
        let path = args
            .next()
            .unwrap_or_else(|| fail("replay needs a trace file"));
        if args.next().is_some() {
            fail("replay takes exactly one trace file");
        }
        run_replay(&path);
    }

    let mut params = regemu_bounds::Params::new(1, 1, 3).expect("default parameters");
    let mut config_edits: Vec<Box<dyn FnOnce(FuzzConfig) -> FuzzConfig>> = Vec::new();
    let mut out = "-".to_string();
    let mut trace_path: Option<String> = None;

    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--params" => {
                let v = value("--params");
                let parts: Vec<usize> = v
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse()
                            .unwrap_or_else(|_| fail(&format!("invalid parameter {s:?}")))
                    })
                    .collect();
                if parts.len() != 3 {
                    fail("--params needs k,f,n");
                }
                params = regemu_bounds::Params::new(parts[0], parts[1], parts[2])
                    .unwrap_or_else(|e| fail(&format!("invalid parameters: {e}")));
            }
            "--emulation" => {
                let v = value("--emulation");
                let emulation = FuzzEmulation::from_name(&v)
                    .unwrap_or_else(|| fail(&format!("unknown emulation {v:?}")));
                config_edits.push(Box::new(move |c| c.emulation(emulation)));
            }
            "--workload" => {
                let v = value("--workload");
                let workload = WorkloadSpec::from_label(&v)
                    .unwrap_or_else(|| fail(&format!("unknown workload {v:?}")));
                config_edits.push(Box::new(move |c| c.workload(workload)));
            }
            "--check" => {
                let v = value("--check");
                let check = ConsistencyCheck::from_name(&v)
                    .unwrap_or_else(|| fail(&format!("unknown check {v:?}")));
                config_edits.push(Box::new(move |c| c.check(check)));
            }
            "--seed" => {
                let v = value("--seed");
                let seed: u64 = v
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("invalid seed {v:?}")));
                config_edits.push(Box::new(move |c| c.seed(seed)));
            }
            "--budget" => {
                let v = value("--budget");
                let budget: usize = v
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("invalid budget {v:?}")));
                config_edits.push(Box::new(move |c| c.budget(budget)));
            }
            "--stop-on-failure" => config_edits.push(Box::new(|c| c.stop_on_failure())),
            "--out" => out = value("--out"),
            "--trace" => trace_path = Some(value("--trace")),
            other => fail(&format!("unknown option {other:?}")),
        }
    }

    let mut config = FuzzConfig::new(params);
    for edit in config_edits {
        config = edit(config);
    }

    let (report, shrunk) = fuzz_and_shrink(config);
    write_output(&out, &report.to_text(), "fuzz report");
    match shrunk {
        Some(failure) => {
            eprint!("{}", failure.to_text());
            if let Some(path) = trace_path {
                write_output(&path, &failure.trace.to_text(), "shrunk trace");
                eprintln!("replay with: {}", failure.replay_command(&path));
            }
            std::process::exit(2);
        }
        None => {
            info!(
                "fuzz_campaign: clean — {} iterations, corpus {}",
                report.iterations, report.corpus_size
            );
        }
    }
}
