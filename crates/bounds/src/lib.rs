//! # regemu-bounds — closed-form space-complexity bounds
//!
//! The bounds of Chockler & Spiegelman, *Space Complexity of Fault-Tolerant
//! Register Emulations* (PODC 2017), as executable formulas. The central
//! quantities (Table 1) are, for an `f`-tolerant emulation of a `k`-writer
//! register from base objects hosted on `n > 2f` crash-prone servers:
//!
//! | base object | lower bound (WS-Safe, obstruction-free) | upper bound (WS-Regular, wait-free) |
//! |---|---|---|
//! | max-register | `2f + 1` | `2f + 1` |
//! | CAS | `2f + 1` | `2f + 1` |
//! | read/write register | `kf + ⌈kf/(n-(f+1))⌉·(f+1)` | `kf + ⌈k/⌊(n-(f+1))/f⌋⌉·(f+1)` |
//!
//! plus the appendix results: the `n = 2f+1` per-server bound (Theorem 6), the
//! bounded-storage server bound (Theorem 7), the minimum number of servers
//! (Theorem 5) and the `k`-writer max-register bound in ordinary shared memory
//! (Theorem 2).
//!
//! ## Example
//!
//! ```
//! use regemu_bounds::{Params, register_lower_bound, register_upper_bound};
//!
//! let p = Params::new(5, 2, 6)?; // k = 5 writers, f = 2, n = 6 servers
//! assert_eq!(register_lower_bound(p), 10 + 4 * 3); // kf + ⌈kf/(n-f-1)⌉(f+1)
//! assert_eq!(register_upper_bound(p), 10 + 5 * 3); // kf + ⌈k/z⌉(f+1), z = 1
//! # Ok::<(), regemu_bounds::ParamError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize};
use std::fmt;

/// The parameters of an emulation: number of writers `k`, failure threshold
/// `f` and number of servers `n`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Params {
    /// Number of writers of the emulated register.
    pub k: usize,
    /// Failure threshold: maximum number of servers that may crash.
    pub f: usize,
    /// Number of servers `n = |S|`.
    pub n: usize,
}

/// Errors raised when constructing invalid parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParamError {
    /// `k` must be at least 1.
    NoWriters,
    /// `f` must be at least 1 (the paper assumes `f > 0`).
    NoFaults,
    /// Emulation is impossible with `n ≤ 2f` servers (Theorem 5).
    TooFewServers {
        /// Number of servers requested.
        n: usize,
        /// Minimum required, `2f + 1`.
        required: usize,
    },
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamError::NoWriters => write!(f, "the number of writers k must be at least 1"),
            ParamError::NoFaults => write!(f, "the failure threshold f must be at least 1"),
            ParamError::TooFewServers { n, required } => write!(
                f,
                "an f-tolerant emulation needs at least {required} servers, got {n} (Theorem 5)"
            ),
        }
    }
}

impl std::error::Error for ParamError {}

impl Params {
    /// Creates a parameter set, validating `k ≥ 1`, `f ≥ 1` and `n ≥ 2f + 1`.
    ///
    /// # Errors
    ///
    /// Returns a [`ParamError`] describing the violated constraint.
    pub fn new(k: usize, f: usize, n: usize) -> Result<Self, ParamError> {
        if k == 0 {
            return Err(ParamError::NoWriters);
        }
        if f == 0 {
            return Err(ParamError::NoFaults);
        }
        if n < 2 * f + 1 {
            return Err(ParamError::TooFewServers {
                n,
                required: 2 * f + 1,
            });
        }
        Ok(Params { k, f, n })
    }

    /// The writer capacity `z = ⌊(n - (f+1)) / f⌋` of a single register set in
    /// the upper-bound construction (Section 3.3).
    pub fn z(&self) -> usize {
        (self.n - (self.f + 1)) / self.f
    }

    /// The size `y = z·f + f + 1` of a full register set in the upper-bound
    /// construction.
    pub fn y(&self) -> usize {
        self.z() * self.f + self.f + 1
    }

    /// Number of register sets `m = ⌈k / z⌉` used by the upper-bound
    /// construction.
    pub fn register_set_count(&self) -> usize {
        self.k.div_ceil(self.z())
    }

    /// Returns `true` when the paper's lower and upper bounds coincide for
    /// these parameters: at `n = 2f + 1` and whenever `n ≥ kf + f + 1`.
    pub fn bounds_coincide(&self) -> bool {
        register_lower_bound(*self) == register_upper_bound(*self)
    }
}

impl fmt::Display for Params {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k={}, f={}, n={}", self.k, self.f, self.n)
    }
}

/// Minimum number of servers for any `f`-tolerant WS-Safe obstruction-free
/// emulation (Theorem 5): `2f + 1`.
pub fn min_servers(f: usize) -> usize {
    2 * f + 1
}

/// Lower **and** upper bound on the number of base objects when the servers
/// expose max-registers (Table 1, row 1): `2f + 1`, independent of `k` and `n`.
pub fn max_register_bound(f: usize) -> usize {
    2 * f + 1
}

/// Lower **and** upper bound on the number of base objects when the servers
/// expose CAS objects (Table 1, row 2): `2f + 1`, independent of `k` and `n`.
pub fn cas_bound(f: usize) -> usize {
    2 * f + 1
}

/// Theorem 1 — lower bound on the number of read/write base registers used by
/// any `f`-tolerant obstruction-free WS-Safe `k`-register emulation over `n`
/// servers: `kf + ⌈kf / (n - (f+1))⌉ · (f+1)`.
pub fn register_lower_bound(p: Params) -> usize {
    let Params { k, f, n } = p;
    k * f + (k * f).div_ceil(n - (f + 1)) * (f + 1)
}

/// Theorem 3 — number of read/write base registers used by the paper's
/// wait-free WS-Regular construction (Algorithm 2):
/// `kf + ⌈k / z⌉ · (f+1)` with `z = ⌊(n - (f+1)) / f⌋`.
pub fn register_upper_bound(p: Params) -> usize {
    let Params { k, f, .. } = p;
    k * f + p.k.div_ceil(p.z()) * (f + 1)
}

/// The simplest corollary of Theorem 1: at least `kf + f + 1` registers are
/// needed regardless of how many servers are available.
pub fn register_lower_bound_any_n(k: usize, f: usize) -> usize {
    k * f + f + 1
}

/// Theorem 2 — any wait-free implementation of a `k`-writer max-register from
/// MWMR atomic read/write registers (ordinary shared memory, no failures)
/// uses at least `k` base registers.
pub fn max_register_from_registers_lower_bound(k: usize) -> usize {
    k
}

/// Theorem 6 — with exactly `n = 2f + 1` servers, every server must store at
/// least `k` registers.
pub fn per_server_lower_bound_minimal_n(k: usize) -> usize {
    k
}

/// Theorem 7 — when every server stores at most `m` registers, any
/// `f`-tolerant obstruction-free WS-Safe `k`-register emulation uses at least
/// `⌈kf / m⌉ + f + 1` servers.
pub fn servers_needed_with_bounded_storage(k: usize, f: usize, m: usize) -> usize {
    assert!(m > 0, "per-server storage bound m must be positive");
    (k * f).div_ceil(m) + f + 1
}

/// The matching upper bound discussed for the special case `n = 2f + 1`: each
/// server implements a `k`-writer max-register from `k` base registers, for a
/// total of `(2f + 1)·k` registers.
pub fn special_case_minimal_n_upper_bound(k: usize, f: usize) -> usize {
    (2 * f + 1) * k
}

/// The smallest `n` at which the bounds flatten out: for `n ≥ kf + f + 1`
/// both the lower and the upper bound equal `kf + f + 1` and adding servers
/// no longer helps.
pub fn saturation_server_count(k: usize, f: usize) -> usize {
    k * f + f + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parameter_validation() {
        assert_eq!(Params::new(0, 1, 3), Err(ParamError::NoWriters));
        assert_eq!(Params::new(1, 0, 3), Err(ParamError::NoFaults));
        assert_eq!(
            Params::new(1, 1, 2),
            Err(ParamError::TooFewServers { n: 2, required: 3 })
        );
        let p = Params::new(3, 1, 4).unwrap();
        assert_eq!(p.to_string(), "k=3, f=1, n=4");
    }

    #[test]
    fn paper_figure1_parameters() {
        // Figure 1: n = 6, k = 5, f = 2 → z = ⌊3/2⌋ = 1, y = 5, m = 5 sets.
        let p = Params::new(5, 2, 6).unwrap();
        assert_eq!(p.z(), 1);
        assert_eq!(p.y(), 5);
        assert_eq!(p.register_set_count(), 5);
        assert_eq!(register_lower_bound(p), 5 * 2 + 4 * 3); // 22
        assert_eq!(register_upper_bound(p), 5 * 2 + 5 * 3); // 25
        assert!(!p.bounds_coincide());
    }

    #[test]
    fn bounds_coincide_at_minimal_n() {
        // n = 2f + 1: both bounds equal kf + k(f+1) = (2f+1)k.
        for f in 1..=4usize {
            for k in 1..=8usize {
                let p = Params::new(k, f, 2 * f + 1).unwrap();
                assert_eq!(register_lower_bound(p), (2 * f + 1) * k);
                assert_eq!(register_upper_bound(p), (2 * f + 1) * k);
                assert_eq!(
                    register_upper_bound(p),
                    special_case_minimal_n_upper_bound(k, f)
                );
                assert!(p.bounds_coincide());
            }
        }
    }

    #[test]
    fn bounds_coincide_at_saturation() {
        // n ≥ kf + f + 1: both bounds equal kf + f + 1.
        for f in 1..=3usize {
            for k in 1..=6usize {
                let n = saturation_server_count(k, f);
                let p = Params::new(k, f, n).unwrap();
                assert_eq!(register_lower_bound(p), k * f + f + 1);
                assert_eq!(register_upper_bound(p), k * f + f + 1);
                assert_eq!(register_lower_bound(p), register_lower_bound_any_n(k, f));
                // Adding even more servers does not reduce the bound further.
                let p_big = Params::new(k, f, n + 10).unwrap();
                assert_eq!(register_lower_bound(p_big), k * f + f + 1);
                assert_eq!(register_upper_bound(p_big), k * f + f + 1);
            }
        }
    }

    #[test]
    fn max_register_and_cas_bounds_ignore_k_and_n() {
        assert_eq!(max_register_bound(1), 3);
        assert_eq!(max_register_bound(3), 7);
        assert_eq!(cas_bound(2), 5);
        assert_eq!(min_servers(2), 5);
    }

    #[test]
    fn theorem_7_examples() {
        // m = 1 register per server: kf + f + 1 servers needed.
        assert_eq!(servers_needed_with_bounded_storage(4, 2, 1), 8 + 3);
        // m large enough: f + 2 servers suffice per the formula's floor.
        assert_eq!(servers_needed_with_bounded_storage(4, 2, 100), 1 + 3);
        assert_eq!(servers_needed_with_bounded_storage(3, 1, 2), 2 + 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn theorem_7_rejects_zero_storage() {
        servers_needed_with_bounded_storage(1, 1, 0);
    }

    #[test]
    fn theorem_2_and_6_are_k() {
        assert_eq!(max_register_from_registers_lower_bound(7), 7);
        assert_eq!(per_server_lower_bound_minimal_n(4), 4);
    }

    #[test]
    fn upper_bound_matches_register_set_accounting() {
        // The construction uses ⌊k/z⌋ full sets of y registers plus an
        // overflow set; the total must equal the closed form.
        for f in 1..=3usize {
            for k in 1..=10usize {
                for n in (2 * f + 1)..=(4 * f + 3) {
                    let p = Params::new(k, f, n).unwrap();
                    let z = p.z();
                    let full_sets = k / z;
                    let rem = k % z;
                    let mut total = full_sets * p.y();
                    if rem > 0 {
                        total += rem * f + f + 1;
                    }
                    assert_eq!(
                        total,
                        register_upper_bound(p),
                        "set accounting mismatch at {p}"
                    );
                }
            }
        }
    }

    proptest! {
        #[test]
        fn lower_bound_never_exceeds_upper_bound(
            k in 1usize..40, f in 1usize..6, extra in 0usize..60
        ) {
            let n = 2 * f + 1 + extra;
            let p = Params::new(k, f, n).unwrap();
            prop_assert!(register_lower_bound(p) <= register_upper_bound(p));
        }

        #[test]
        fn bounds_are_monotone_in_k(
            k in 1usize..40, f in 1usize..6, extra in 0usize..60
        ) {
            let n = 2 * f + 1 + extra;
            let p1 = Params::new(k, f, n).unwrap();
            let p2 = Params::new(k + 1, f, n).unwrap();
            prop_assert!(register_lower_bound(p1) <= register_lower_bound(p2));
            prop_assert!(register_upper_bound(p1) <= register_upper_bound(p2));
        }

        #[test]
        fn bounds_are_monotone_nonincreasing_in_n(
            k in 1usize..40, f in 1usize..6, extra in 0usize..60
        ) {
            let n = 2 * f + 1 + extra;
            let p1 = Params::new(k, f, n).unwrap();
            let p2 = Params::new(k, f, n + 1).unwrap();
            prop_assert!(register_lower_bound(p2) <= register_lower_bound(p1));
            prop_assert!(register_upper_bound(p2) <= register_upper_bound(p1));
        }

        #[test]
        fn lower_bound_dominates_its_n_independent_corollary(
            k in 1usize..40, f in 1usize..6, extra in 0usize..60
        ) {
            let n = 2 * f + 1 + extra;
            let p = Params::new(k, f, n).unwrap();
            prop_assert!(register_lower_bound(p) >= register_lower_bound_any_n(k, f));
            prop_assert!(register_lower_bound(p) >= k * f);
        }

        #[test]
        fn register_bounds_always_exceed_rmw_bounds(
            k in 1usize..40, f in 1usize..6, extra in 0usize..60
        ) {
            // The separation of Table 1: registers always need at least as
            // many objects as max-registers/CAS, and strictly more once k > 1.
            let n = 2 * f + 1 + extra;
            let p = Params::new(k, f, n).unwrap();
            prop_assert!(register_lower_bound(p) >= max_register_bound(f));
            if k > 1 {
                prop_assert!(register_lower_bound(p) > cas_bound(f));
            }
        }

        #[test]
        fn upper_bound_gap_is_at_most_one_set(
            k in 1usize..40, f in 1usize..6, extra in 0usize..60
        ) {
            // The gap between the bounds is below (f+1) per "started" set,
            // i.e. bounded by ⌈k/z⌉(f+1) - ⌈kf/(n-f-1)⌉(f+1) which is small;
            // sanity-check it never exceeds k(f+1).
            let n = 2 * f + 1 + extra;
            let p = Params::new(k, f, n).unwrap();
            prop_assert!(register_upper_bound(p) - register_lower_bound(p) <= k * (f + 1));
        }

        #[test]
        fn z_and_y_satisfy_their_defining_inequalities(
            k in 1usize..40, f in 1usize..6, extra in 0usize..60
        ) {
            let n = 2 * f + 1 + extra;
            let p = Params::new(k, f, n).unwrap();
            // z ≥ 1 whenever n ≥ 2f + 1, and a full set fits on the servers.
            prop_assert!(p.z() >= 1);
            prop_assert!(p.y() >= 2 * f + 1);
            prop_assert!(p.y() <= n);
        }
    }
}
