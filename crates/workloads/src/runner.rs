//! Run reports and consistency-check selection.
//!
//! The run pipeline lives in [`crate::scenario`] — a [`crate::Scenario`] is
//! the one typed value that fully determines a run (emulation, workload,
//! scheduler, crashes, recording, check, seed). This module keeps the pieces
//! shared across the pipeline: which condition to verify
//! ([`ConsistencyCheck`]), how much of the run the verdict is based on
//! ([`CheckCoverage`]) and the measured outcome ([`RunReport`]).
//!
//! The deprecated `run_workload`/`RunConfig` shims were removed after one
//! release, as scheduled: compose a [`crate::Scenario`] (or call
//! [`crate::scenario::drive`] with a custom emulation instance or scheduler)
//! instead. The scenario suite (`tests/scenario_api.rs`,
//! `tests/scenario_golden.rs`) is the single source of truth for the
//! engine's behaviour, including byte-identity with the pre-`Scenario`
//! runner.

use regemu_bounds::Params;
use regemu_fpsm::RunMetrics;
use regemu_spec::{HighHistory, Violation};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which consistency condition to verify after the run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConsistencyCheck {
    /// Do not check.
    None,
    /// Write-Sequential Safety.
    WsSafe,
    /// Write-Sequential Regularity (the guarantee of the paper's upper
    /// bounds).
    WsRegular,
    /// Atomicity (linearizability).
    Atomic,
}

impl ConsistencyCheck {
    /// Every check kind, in escalation order.
    pub const ALL: [ConsistencyCheck; 4] = [
        ConsistencyCheck::None,
        ConsistencyCheck::WsSafe,
        ConsistencyCheck::WsRegular,
        ConsistencyCheck::Atomic,
    ];

    /// Stable short name used in config files and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            ConsistencyCheck::None => "none",
            ConsistencyCheck::WsSafe => "ws-safe",
            ConsistencyCheck::WsRegular => "ws-regular",
            ConsistencyCheck::Atomic => "atomic",
        }
    }

    /// The inverse of [`ConsistencyCheck::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        ConsistencyCheck::ALL.into_iter().find(|c| c.name() == name)
    }
}

impl fmt::Display for ConsistencyCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How much of the run the consistency verdict is based on.
///
/// Bounded-memory recording modes ([`regemu_fpsm::RecordingMode`]) can limit
/// what a checker sees; a report is only a *proof* of consistency when the
/// coverage is [`CheckCoverage::Complete`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CheckCoverage {
    /// The checker saw the entire run (offline over a full recording, or
    /// online over a stream with no evictions before observation). Also
    /// reported when no check was requested — there was nothing to miss.
    Complete,
    /// The online checker lost events to ring-buffer eviction before it
    /// could observe them: a `None` violation is *inconclusive*, though any
    /// violation found before the gap is real.
    Truncated,
    /// The run recorded no events ([`regemu_fpsm::RecordingMode::Digest`]),
    /// so the requested check could not be performed at all: the run is
    /// metrics-only.
    NotRecorded,
}

impl CheckCoverage {
    /// Stable short name used in reports: `complete`, `truncated`,
    /// `unrecorded`.
    pub fn name(self) -> &'static str {
        match self {
            CheckCoverage::Complete => "complete",
            CheckCoverage::Truncated => "truncated",
            CheckCoverage::NotRecorded => "unrecorded",
        }
    }
}

impl fmt::Display for CheckCoverage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The measured outcome of one experiment run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Name of the emulation that was exercised.
    pub emulation: String,
    /// Name of the scheduler that drove the run.
    pub scheduler: String,
    /// Its `(k, f, n)` parameters.
    pub params: Params,
    /// Number of base objects the emulation provisioned.
    pub provisioned_objects: usize,
    /// Space metrics of the run (resource consumption, coverage, …).
    /// Derived from incremental digests, so identical across recording
    /// modes for the same scenario.
    pub metrics: RunMetrics,
    /// Number of high-level operations that completed.
    pub completed_ops: usize,
    /// Verdict of the consistency check, if one was requested.
    pub check_violation: Option<Violation>,
    /// How much of the run the verdict is based on.
    pub check_coverage: CheckCoverage,
    /// The high-level schedule of the run (for further analysis). Extracted
    /// from the interval digest, which is maintained in every recording
    /// mode.
    pub history: HighHistory,
}

impl RunReport {
    /// Returns `true` when the requested consistency check found no
    /// violation (or none was requested). Note that under bounded-memory
    /// recording this is only conclusive when [`RunReport::is_fully_checked`]
    /// also holds.
    pub fn is_consistent(&self) -> bool {
        self.check_violation.is_none()
    }

    /// Returns `true` when the consistency verdict covers the whole run.
    pub fn is_fully_checked(&self) -> bool {
        self.check_coverage == CheckCoverage::Complete
    }
}
