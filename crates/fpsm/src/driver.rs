//! Run drivers: fair schedulers and crash plans.
//!
//! The [`Simulation`] engine is entirely passive; a *driver* decides which
//! enabled action happens next. [`FairDriver`] implements the fair schedules
//! required by the liveness definitions: every pending low-level operation on
//! a correct base object is eventually delivered (unless explicitly blocked),
//! in a pseudo-random order derived from a seed so runs are reproducible.
//!
//! The lower-bound adversary `Ad_i` is *not* implemented here — it lives in
//! the `regemu-adversary` crate and drives the simulation through the same
//! public API.

use crate::error::SimError;
use crate::ids::{HighOpId, OpId, ServerId, Time};
use crate::sim::Simulation;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// A plan of server crashes to inject at given logical times.
///
/// The driver consults the plan before every step and crashes every server
/// whose scheduled time has been reached.
#[derive(Clone, Debug, Default)]
pub struct CrashPlan {
    entries: Vec<(Time, ServerId)>,
}

impl CrashPlan {
    /// An empty plan (failure-free run).
    pub fn none() -> Self {
        Self::default()
    }

    /// Adds a crash of `server` once the simulation time reaches `at`.
    pub fn crash_at(mut self, at: Time, server: ServerId) -> Self {
        self.entries.push((at, server));
        self
    }

    /// Servers scheduled to crash, in insertion order.
    pub fn servers(&self) -> impl Iterator<Item = ServerId> + '_ {
        self.entries.iter().map(|(_, s)| *s)
    }

    /// Returns the servers whose crash time has been reached and removes them
    /// from the plan.
    pub(crate) fn due(&mut self, now: Time) -> Vec<ServerId> {
        let (due, rest): (Vec<_>, Vec<_>) = self.entries.iter().partition(|(t, _)| *t <= now);
        self.entries = rest;
        due.into_iter().map(|(_, s)| s).collect()
    }

    /// Number of crashes still scheduled.
    pub fn remaining(&self) -> usize {
        self.entries.len()
    }
}

/// A pseudo-random fair driver.
///
/// Every call to [`FairDriver::step`] delivers one deliverable pending
/// operation chosen uniformly at random (excluding explicitly blocked ones),
/// so in any infinite execution every unblocked operation on a correct object
/// is eventually delivered with probability 1 — a fair run in the paper's
/// sense.
#[derive(Debug)]
pub struct FairDriver {
    rng: StdRng,
    crash_plan: CrashPlan,
    blocked: BTreeSet<OpId>,
    steps: u64,
    /// Reused candidate buffer so [`FairDriver::step`] does not allocate on
    /// every delivery.
    candidates: Vec<OpId>,
}

impl FairDriver {
    /// Creates a driver with the given RNG seed and no crash plan.
    pub fn new(seed: u64) -> Self {
        FairDriver {
            rng: StdRng::seed_from_u64(seed),
            crash_plan: CrashPlan::none(),
            blocked: BTreeSet::new(),
            steps: 0,
            candidates: Vec::new(),
        }
    }

    /// Attaches a crash plan to the driver.
    pub fn with_crash_plan(mut self, plan: CrashPlan) -> Self {
        self.crash_plan = plan;
        self
    }

    /// Blocks a pending operation: the driver will never deliver it. Used to
    /// model the environment withholding a response for arbitrarily long.
    pub fn block(&mut self, op: OpId) {
        self.blocked.insert(op);
    }

    /// Unblocks a previously blocked operation.
    pub fn unblock(&mut self, op: OpId) {
        self.blocked.remove(&op);
    }

    /// Number of currently blocked operations.
    pub fn blocked_count(&self) -> usize {
        self.blocked.len()
    }

    /// Number of delivery steps executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Access to the driver's random number generator (for workloads that
    /// want to share the seeded stream).
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    fn inject_due_crashes(&mut self, sim: &mut Simulation) -> Result<(), SimError> {
        for server in self.crash_plan.due(sim.time()) {
            sim.crash_server(server)?;
        }
        Ok(())
    }

    /// Delivers one randomly chosen deliverable, unblocked pending operation.
    ///
    /// Returns `Ok(true)` if an operation was delivered, `Ok(false)` if no
    /// deliverable operation exists (quiescence or everything blocked).
    ///
    /// # Errors
    ///
    /// Propagates engine errors (which indicate a bug in the driver itself,
    /// e.g. scheduled crashes exceeding the fault threshold).
    pub fn step(&mut self, sim: &mut Simulation) -> Result<bool, SimError> {
        self.inject_due_crashes(sim)?;
        self.candidates.clear();
        let blocked = &self.blocked;
        self.candidates.extend(
            sim.deliverable_ops()
                .map(|p| p.op_id)
                .filter(|id| !blocked.contains(id)),
        );
        let Some(&chosen) = self.candidates.choose(&mut self.rng) else {
            return Ok(false);
        };
        sim.deliver(chosen)?;
        self.steps += 1;
        Ok(true)
    }

    /// Delivers operations until the high-level operation `target` completes.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Stuck`] if the operation has not completed after
    /// `max_steps` deliveries or no deliverable operation remains.
    pub fn run_until_complete(
        &mut self,
        sim: &mut Simulation,
        target: HighOpId,
        max_steps: u64,
    ) -> Result<(), SimError> {
        let mut executed = 0;
        while sim.result_of(target).is_none() {
            if executed >= max_steps || !self.step(sim)? {
                return Err(SimError::Stuck {
                    steps: executed,
                    waiting_for: format!("high-level operation {target} to complete"),
                });
            }
            executed += 1;
        }
        Ok(())
    }

    /// Delivers operations until no deliverable, unblocked operation remains.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Stuck`] if quiescence is not reached within
    /// `max_steps` deliveries.
    pub fn run_until_quiescent(
        &mut self,
        sim: &mut Simulation,
        max_steps: u64,
    ) -> Result<(), SimError> {
        let mut executed = 0;
        while self.step(sim)? {
            executed += 1;
            if executed >= max_steps {
                return Err(SimError::Stuck {
                    steps: executed,
                    waiting_for: "quiescence".to_string(),
                });
            }
        }
        Ok(())
    }

    /// Picks a uniformly random element of `0..bound` from the driver's RNG.
    pub fn pick(&mut self, bound: usize) -> usize {
        self.rng.gen_range(0..bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{ClientProtocol, Context, Delivery};
    use crate::ids::ObjectId;
    use crate::object::ObjectKind;
    use crate::op::{BaseOp, BaseResponse, HighOp, HighResponse};
    use crate::sim::SimConfig;
    use crate::topology::Topology;
    use crate::value::Value;

    /// Writes to all targets and completes once a majority of acks arrived.
    struct MajorityWriter {
        targets: Vec<ObjectId>,
        acks: usize,
    }

    impl ClientProtocol for MajorityWriter {
        fn on_invoke(&mut self, op: HighOp, ctx: &mut Context<'_>) {
            if let HighOp::Write(v) = op {
                self.acks = 0;
                for b in &self.targets {
                    ctx.trigger(*b, BaseOp::Write(Value::new(1, v)));
                }
            }
        }

        fn on_response(&mut self, delivery: Delivery, ctx: &mut Context<'_>) {
            if delivery.response == BaseResponse::WriteAck {
                self.acks += 1;
                if self.acks == self.targets.len() / 2 + 1 && !ctx.has_completed() {
                    ctx.complete(HighResponse::WriteAck);
                }
            }
        }
    }

    fn build(n: usize, f: usize) -> (Simulation, Vec<ObjectId>) {
        let mut t = Topology::new(n);
        let objs = t.add_object_per_server(ObjectKind::Register);
        (Simulation::new(t, SimConfig::with_fault_threshold(f)), objs)
    }

    #[test]
    fn fair_driver_completes_a_majority_write() {
        let (mut sim, objs) = build(3, 1);
        let c = sim.register_client(Box::new(MajorityWriter {
            targets: objs,
            acks: 0,
        }));
        let w = sim.invoke(c, HighOp::Write(1)).unwrap();
        let mut driver = FairDriver::new(7);
        driver.run_until_complete(&mut sim, w, 100).unwrap();
        assert_eq!(sim.result_of(w), Some(HighResponse::WriteAck));
    }

    #[test]
    fn driver_is_deterministic_for_a_seed() {
        let run = |seed: u64| {
            let (mut sim, objs) = build(5, 2);
            let c = sim.register_client(Box::new(MajorityWriter {
                targets: objs,
                acks: 0,
            }));
            let w = sim.invoke(c, HighOp::Write(1)).unwrap();
            let mut driver = FairDriver::new(seed);
            driver.run_until_complete(&mut sim, w, 100).unwrap();
            sim.history().events().copied().collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn crash_plan_crashes_up_to_f_servers_and_write_still_completes() {
        let (mut sim, objs) = build(3, 1);
        let c = sim.register_client(Box::new(MajorityWriter {
            targets: objs,
            acks: 0,
        }));
        let w = sim.invoke(c, HighOp::Write(1)).unwrap();
        let plan = CrashPlan::none().crash_at(0, ServerId::new(2));
        let mut driver = FairDriver::new(1).with_crash_plan(plan);
        driver.run_until_complete(&mut sim, w, 100).unwrap();
        assert!(sim.is_server_crashed(ServerId::new(2)));
        assert_eq!(sim.result_of(w), Some(HighResponse::WriteAck));
    }

    #[test]
    fn blocking_a_majority_makes_the_driver_stuck() {
        let (mut sim, _objs) = build(3, 1);
        let c = sim.register_client(Box::new(MajorityWriter {
            targets: sim.topology().objects().collect(),
            acks: 0,
        }));
        let w = sim.invoke(c, HighOp::Write(1)).unwrap();
        let mut driver = FairDriver::new(3);
        // Block two of the three writes: only one ack can ever arrive, the
        // majority of 2 is unreachable.
        let pending: Vec<OpId> = sim.pending_ops().map(|p| p.op_id).collect();
        driver.block(pending[0]);
        driver.block(pending[1]);
        assert_eq!(driver.blocked_count(), 2);
        let err = driver.run_until_complete(&mut sim, w, 100).unwrap_err();
        assert!(matches!(err, SimError::Stuck { .. }));
        // Unblocking lets the operation finish.
        driver.unblock(pending[0]);
        driver.run_until_complete(&mut sim, w, 100).unwrap();
    }

    #[test]
    fn run_until_quiescent_drains_all_pending_ops() {
        let (mut sim, objs) = build(3, 1);
        let c = sim.register_client(Box::new(MajorityWriter {
            targets: objs,
            acks: 0,
        }));
        sim.invoke(c, HighOp::Write(1)).unwrap();
        let mut driver = FairDriver::new(11);
        driver.run_until_quiescent(&mut sim, 100).unwrap();
        assert_eq!(sim.pending_count(), 0);
        assert!(driver.steps() >= 3);
    }

    #[test]
    fn crash_plan_bookkeeping() {
        let plan = CrashPlan::none()
            .crash_at(5, ServerId::new(0))
            .crash_at(9, ServerId::new(1));
        assert_eq!(plan.remaining(), 2);
        assert_eq!(plan.servers().count(), 2);
        let mut plan = plan;
        let due = plan.due(6);
        assert_eq!(due, vec![ServerId::new(0)]);
        assert_eq!(plan.remaining(), 1);
    }
}
