//! The recorded history of a run.
//!
//! [`History`] is an append-only event log plus convenience queries used by
//! the metrics module, the consistency checkers and the lower-bound
//! adversary. It intentionally stores the raw [`Event`] stream rather than a
//! digested form, so that every consumer (linearizability checker,
//! WS-Regularity checker, covering analysis, point-contention analysis) can
//! derive exactly the view it needs.

use crate::event::Event;
use crate::ids::{ClientId, HighOpId, ObjectId, OpId, Time};
use crate::op::{HighOp, HighResponse};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A completed or pending high-level operation extracted from a history.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HighInterval {
    /// Identifier of the high-level operation.
    pub id: HighOpId,
    /// The invoking client.
    pub client: ClientId,
    /// The operation.
    pub op: HighOp,
    /// Invocation time.
    pub invoked_at: Time,
    /// Return time and response, or `None` if the operation is pending.
    pub returned: Option<(Time, HighResponse)>,
}

impl HighInterval {
    /// Returns `true` if the operation completed.
    pub fn is_complete(&self) -> bool {
        self.returned.is_some()
    }

    /// Returns `true` if `self` precedes `other` (returned before the other
    /// was invoked), i.e. `self ≺ other` in the schedule's real-time order.
    pub fn precedes(&self, other: &HighInterval) -> bool {
        match self.returned {
            Some((t, _)) => t < other.invoked_at,
            None => false,
        }
    }

    /// Returns `true` if the two operations are concurrent (neither precedes
    /// the other).
    pub fn concurrent_with(&self, other: &HighInterval) -> bool {
        !self.precedes(other) && !other.precedes(self)
    }
}

/// Append-only record of every action taken in a run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct History {
    events: Vec<Event>,
}

impl History {
    /// Creates an empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event.
    pub fn push(&mut self, event: Event) {
        self.events.push(event);
    }

    /// All events, in the order they occurred.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Extracts all high-level operation intervals, in invocation order.
    pub fn high_intervals(&self) -> Vec<HighInterval> {
        let mut out: Vec<HighInterval> = Vec::new();
        for e in &self.events {
            match *e {
                Event::Invoke {
                    time,
                    client,
                    high_op,
                    op,
                } => out.push(HighInterval {
                    id: high_op,
                    client,
                    op,
                    invoked_at: time,
                    returned: None,
                }),
                Event::Return {
                    time,
                    high_op,
                    response,
                    ..
                } => {
                    if let Some(iv) = out.iter_mut().find(|iv| iv.id == high_op) {
                        iv.returned = Some((time, response));
                    }
                }
                _ => {}
            }
        }
        out
    }

    /// The set of base objects on which at least one low-level operation was
    /// triggered — the *resource consumption* of the run (Section 2).
    pub fn touched_objects(&self) -> BTreeSet<ObjectId> {
        self.events
            .iter()
            .filter_map(|e| match e {
                Event::Trigger { object, .. } => Some(*object),
                _ => None,
            })
            .collect()
    }

    /// The set of base objects on which at least one low-level *write-class*
    /// operation was triggered.
    pub fn written_objects(&self) -> BTreeSet<ObjectId> {
        self.events
            .iter()
            .filter_map(|e| match e {
                Event::Trigger { object, op, .. } if op.is_write() => Some(*object),
                _ => None,
            })
            .collect()
    }

    /// Identifiers of low-level operations that were triggered but have not
    /// responded in this history (pending operations).
    pub fn pending_low_level(&self) -> BTreeSet<OpId> {
        let mut pending = BTreeSet::new();
        for e in &self.events {
            match e {
                Event::Trigger { op_id, .. } => {
                    pending.insert(*op_id);
                }
                Event::Respond { op_id, .. } => {
                    pending.remove(op_id);
                }
                _ => {}
            }
        }
        pending
    }

    /// Returns `true` if no two high-level *writes* are concurrent — the
    /// run is *write-sequential* (Section 2).
    pub fn is_write_sequential(&self) -> bool {
        let writes: Vec<HighInterval> = self
            .high_intervals()
            .into_iter()
            .filter(|iv| iv.op.is_write())
            .collect();
        for (i, a) in writes.iter().enumerate() {
            for b in writes.iter().skip(i + 1) {
                if a.concurrent_with(b) {
                    return false;
                }
            }
        }
        true
    }

    /// Returns `true` if the run is write-only (no high-level reads invoked).
    pub fn is_write_only(&self) -> bool {
        self.high_intervals().iter().all(|iv| iv.op.is_write())
    }

    /// Maximum number of clients with an incomplete high-level operation at
    /// any single point of the run — the *point contention* (Appendix C).
    pub fn point_contention(&self) -> usize {
        let mut current: BTreeSet<ClientId> = BTreeSet::new();
        let mut max = 0usize;
        for e in &self.events {
            match e {
                Event::Invoke { client, .. } => {
                    current.insert(*client);
                    max = max.max(current.len());
                }
                Event::Return { client, .. } => {
                    current.remove(client);
                }
                _ => {}
            }
        }
        max
    }

    /// The largest time stamp recorded, i.e. the length of the run in steps.
    pub fn end_time(&self) -> Time {
        self.events.last().map(Event::time).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{BaseOp, BaseResponse};
    use crate::value::Value;

    fn mk_history() -> History {
        let mut h = History::new();
        // c0: WRITE(1) [t1..t4] touching b0 (write, responds) and b1 (write, pending)
        h.push(Event::Invoke {
            time: 1,
            client: ClientId::new(0),
            high_op: HighOpId::new(0),
            op: HighOp::Write(1),
        });
        h.push(Event::Trigger {
            time: 2,
            client: ClientId::new(0),
            high_op: Some(HighOpId::new(0)),
            op_id: OpId::new(0),
            object: ObjectId::new(0),
            op: BaseOp::Write(Value::new(1, 1)),
        });
        h.push(Event::Trigger {
            time: 2,
            client: ClientId::new(0),
            high_op: Some(HighOpId::new(0)),
            op_id: OpId::new(1),
            object: ObjectId::new(1),
            op: BaseOp::Write(Value::new(1, 1)),
        });
        h.push(Event::Respond {
            time: 3,
            client: ClientId::new(0),
            op_id: OpId::new(0),
            object: ObjectId::new(0),
            response: BaseResponse::WriteAck,
        });
        h.push(Event::Return {
            time: 4,
            client: ClientId::new(0),
            high_op: HighOpId::new(0),
            response: HighResponse::WriteAck,
        });
        // c1: READ() [t5..] pending, triggers read on b0
        h.push(Event::Invoke {
            time: 5,
            client: ClientId::new(1),
            high_op: HighOpId::new(1),
            op: HighOp::Read,
        });
        h.push(Event::Trigger {
            time: 6,
            client: ClientId::new(1),
            high_op: Some(HighOpId::new(1)),
            op_id: OpId::new(2),
            object: ObjectId::new(0),
            op: BaseOp::Read,
        });
        h
    }

    #[test]
    fn high_intervals_and_precedence() {
        let h = mk_history();
        let ivs = h.high_intervals();
        assert_eq!(ivs.len(), 2);
        assert!(ivs[0].is_complete());
        assert!(!ivs[1].is_complete());
        assert!(ivs[0].precedes(&ivs[1]));
        assert!(!ivs[1].precedes(&ivs[0]));
        assert!(!ivs[0].concurrent_with(&ivs[1]));
    }

    #[test]
    fn touched_and_pending_sets() {
        let h = mk_history();
        let touched = h.touched_objects();
        assert!(touched.contains(&ObjectId::new(0)));
        assert!(touched.contains(&ObjectId::new(1)));
        assert_eq!(touched.len(), 2);
        assert_eq!(h.written_objects().len(), 2);
        let pending = h.pending_low_level();
        assert!(pending.contains(&OpId::new(1)));
        assert!(pending.contains(&OpId::new(2)));
        assert!(!pending.contains(&OpId::new(0)));
    }

    #[test]
    fn write_sequential_and_write_only_detection() {
        let h = mk_history();
        assert!(h.is_write_sequential());
        assert!(!h.is_write_only());

        // Two overlapping writes are not write-sequential.
        let mut h2 = History::new();
        h2.push(Event::Invoke {
            time: 1,
            client: ClientId::new(0),
            high_op: HighOpId::new(0),
            op: HighOp::Write(1),
        });
        h2.push(Event::Invoke {
            time: 2,
            client: ClientId::new(1),
            high_op: HighOpId::new(1),
            op: HighOp::Write(2),
        });
        h2.push(Event::Return {
            time: 3,
            client: ClientId::new(0),
            high_op: HighOpId::new(0),
            response: HighResponse::WriteAck,
        });
        assert!(!h2.is_write_sequential());
        assert!(h2.is_write_only());
    }

    #[test]
    fn point_contention_counts_concurrent_high_ops() {
        let h = mk_history();
        assert_eq!(h.point_contention(), 1);
        let mut h2 = History::new();
        for i in 0..3u64 {
            h2.push(Event::Invoke {
                time: i,
                client: ClientId::new(i as usize),
                high_op: HighOpId::new(i),
                op: HighOp::Write(i),
            });
        }
        h2.push(Event::Return {
            time: 4,
            client: ClientId::new(0),
            high_op: HighOpId::new(0),
            response: HighResponse::WriteAck,
        });
        assert_eq!(h2.point_contention(), 3);
    }

    #[test]
    fn end_time_and_len() {
        let h = mk_history();
        assert_eq!(h.end_time(), 6);
        assert_eq!(h.len(), 7);
        assert!(!h.is_empty());
        assert!(History::new().is_empty());
    }
}
