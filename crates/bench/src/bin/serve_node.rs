//! `serve_node` — host one paper server of an emulation on a TCP listener.
//!
//! ```text
//! cargo run --release -p regemu-bench --bin serve_node -- \
//!     --server 0 --params 4/1/3 [--emulation space-optimal] \
//!     [--listen 127.0.0.1:0] [--addr-file PATH] [--conform-log PATH] \
//!     [--stop-file PATH] [--run-for-ms MS] [--stats-every-ms MS]
//! ```
//!
//! The node builds the emulation's topology, hosts the base objects the
//! placement `δ` maps to `--server`, and answers wire requests until
//! `--stop-file` appears (polled twice a second), `--run-for-ms` elapses, or
//! forever. `--addr-file` receives the bound address (use `--listen` port 0
//! for an ephemeral port), which `serve_client`/`load_gen` read back with
//! `@FILE` address specs. With `--conform-log`, every applied operation
//! appends a `respond` record; a clean stop closes the log with its
//! `clock`/`end` trailer. With `--stats-every-ms`, the node periodically
//! dumps its request/response/fault/in-flight/applied counters to stdout as
//! one JSON object per line (the same numbers a `serve_client --stats`
//! scrape reads over the wire).
//!
//! Exit status: `0` on a clean stop, `1` on runtime errors, `2` on usage
//! errors.

use regemu_bench::info;
use regemu_bench::serve_cli::{node_stats_json, parse_params};
use regemu_bounds::Params;
use regemu_fpsm::{ServerId, ServerNode};
use regemu_serve::serve_tcp;
use regemu_workloads::fuzz::FuzzEmulation;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn fail(msg: &str) -> ! {
    eprintln!("serve_node: {msg}");
    eprintln!(
        "usage: serve_node --server IDX --params K/F/N [--emulation NAME] \
         [--listen ADDR] [--addr-file PATH] [--conform-log PATH] \
         [--stop-file PATH] [--run-for-ms MS] [--stats-every-ms MS]"
    );
    std::process::exit(2);
}

fn main() {
    let mut server: Option<usize> = None;
    let mut params: Option<Params> = None;
    let mut emulation = FuzzEmulation::from_name("space-optimal").unwrap();
    let mut listen: SocketAddr = "127.0.0.1:0".parse().unwrap();
    let mut addr_file: Option<PathBuf> = None;
    let mut conform_log: Option<PathBuf> = None;
    let mut stop_file: Option<PathBuf> = None;
    let mut run_for: Option<Duration> = None;
    let mut stats_every: Option<Duration> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--server" => {
                let v = value("--server");
                server = Some(
                    v.parse()
                        .unwrap_or_else(|_| fail(&format!("invalid server index {v:?}"))),
                );
            }
            "--params" => {
                params = Some(parse_params(&value("--params")).unwrap_or_else(|e| fail(&e)))
            }
            "--emulation" => {
                let v = value("--emulation");
                emulation = FuzzEmulation::from_name(&v)
                    .unwrap_or_else(|| fail(&format!("unknown emulation {v:?}")));
            }
            "--listen" => {
                let v = value("--listen");
                listen = v
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("invalid listen address {v:?}")));
            }
            "--addr-file" => addr_file = Some(PathBuf::from(value("--addr-file"))),
            "--conform-log" => conform_log = Some(PathBuf::from(value("--conform-log"))),
            "--stop-file" => stop_file = Some(PathBuf::from(value("--stop-file"))),
            "--run-for-ms" => {
                let v = value("--run-for-ms");
                let ms: u64 = v
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("invalid duration {v:?}")));
                run_for = Some(Duration::from_millis(ms));
            }
            "--stats-every-ms" => {
                let v = value("--stats-every-ms");
                let ms: u64 = v
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("invalid duration {v:?}")));
                if ms == 0 {
                    fail("--stats-every-ms must be positive");
                }
                stats_every = Some(Duration::from_millis(ms));
            }
            other => fail(&format!("unknown option {other:?}")),
        }
    }
    let server = server.unwrap_or_else(|| fail("--server is required"));
    let params = params.unwrap_or_else(|| fail("--params is required"));
    if stop_file.is_none() && run_for.is_none() {
        info!("serve_node: no --stop-file or --run-for-ms; serving until killed");
    }

    let topology = emulation.build(params).topology().clone();
    if server >= topology.server_count() {
        fail(&format!(
            "server index {server} out of range for n = {}",
            topology.server_count()
        ));
    }
    let node = ServerNode::new(&topology, ServerId::new(server));
    let handle = match serve_tcp(node, listen, conform_log.as_deref()) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("serve_node: cannot serve on {listen}: {e}");
            std::process::exit(1);
        }
    };
    let addr = handle.local_addr().expect("tcp server has a bound address");
    info!(
        "serve_node: server {server} ({}) on {addr}",
        emulation.name()
    );
    if let Some(path) = &addr_file {
        if let Err(e) = std::fs::write(path, format!("{addr}\n")) {
            eprintln!("serve_node: cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
    }

    let started = Instant::now();
    let mut next_stats = stats_every.map(|every| started + every);
    loop {
        if let Some(stop) = &stop_file {
            if stop.exists() {
                info!("serve_node: stop file {} appeared", stop.display());
                break;
            }
        }
        if let Some(limit) = run_for {
            if started.elapsed() >= limit {
                info!("serve_node: --run-for-ms elapsed");
                break;
            }
        }
        if let (Some(due), Some(every)) = (next_stats, stats_every) {
            if Instant::now() >= due {
                println!("{}", node_stats_json(server, &handle.stats()));
                next_stats = Some(due + every);
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }

    let applied = handle.applied();
    match handle.join() {
        Ok(()) => {
            info!("serve_node: server {server} stopped after {applied} applied ops");
        }
        Err(e) => {
            eprintln!("serve_node: shutdown failed: {e}");
            std::process::exit(1);
        }
    }
}
