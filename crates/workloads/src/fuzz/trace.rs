//! The `regemu-trace` text format: a self-contained, portable schedule.
//!
//! A [`RecordedSchedule`] captures everything needed to re-execute one run —
//! the parameter point, the emulation (clean or seeded-bug), the workload
//! shape and prefix length, the check, both seeds, the server crash plan and
//! the delivery-order decision stream. The line-based format mirrors the
//! campaign config spool: one `key value` pair per line, order fixed,
//! `end`-terminated, so files diff cleanly and external tools can emit them.
//!
//! ```text
//! regemu-trace v1
//! params 1 1 3
//! emulation space-optimal
//! workload write-seq/r1+read
//! workload-len 2
//! check ws-regular
//! workload-seed 61525
//! tail-seed 0
//! max-steps 50000
//! crash 4 2
//! decisions 0 2 1
//! end
//! ```
//!
//! `crash` lines repeat (zero or more, one per crashed server); `decisions`
//! is a single line holding the whole rank stream (possibly empty). See
//! [`RecordedSchedule::to_text`] / [`RecordedSchedule::from_text`].

use super::{FuzzCase, FuzzConfig, FuzzEmulation};
use crate::runner::ConsistencyCheck;
use crate::sweep::WorkloadSpec;
use regemu_bounds::Params;
use regemu_fpsm::Time;

/// A recorded adversary schedule, exportable and importable as text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecordedSchedule {
    /// The `(k, f, n)` parameter point.
    pub params: Params,
    /// Name of the emulation under test (clean or faulty).
    pub emulation: String,
    /// The workload shape.
    pub workload: WorkloadSpec,
    /// Number of workload operations the run issues.
    pub workload_len: usize,
    /// The consistency condition to verify.
    pub check: ConsistencyCheck,
    /// Seed the workload is instantiated with (the campaign master seed).
    pub workload_seed: u64,
    /// Seed of the scheduler's fair tail.
    pub tail_seed: u64,
    /// Per-operation delivery budget before the run is declared stuck.
    pub max_steps_per_op: u64,
    /// Server crashes as `(time, server index)` pairs.
    pub crashes: Vec<(Time, usize)>,
    /// The delivery-order decision stream.
    pub decisions: Vec<u32>,
}

impl RecordedSchedule {
    /// Captures a case under its config.
    pub fn from_parts(config: &FuzzConfig, case: &FuzzCase) -> Self {
        RecordedSchedule {
            params: config.params,
            emulation: config.emulation.name().to_string(),
            workload: config.workload,
            workload_len: case.workload_len,
            check: config.check,
            workload_seed: config.seed,
            tail_seed: case.seed,
            max_steps_per_op: config.max_steps_per_op,
            crashes: case.crashes.clone(),
            decisions: case.decisions.clone(),
        }
    }

    /// The variable part of the schedule, ready for the executor.
    pub fn case(&self) -> FuzzCase {
        FuzzCase {
            decisions: self.decisions.clone(),
            crashes: self.crashes.clone(),
            workload_len: self.workload_len,
            seed: self.tail_seed,
        }
    }

    /// Rebuilds the invariant part of the schedule as a [`FuzzConfig`]
    /// (budget 0 — a trace describes one run, not a campaign).
    ///
    /// # Errors
    ///
    /// Returns a message when the emulation name is unknown.
    pub fn config(&self) -> Result<FuzzConfig, String> {
        let emulation = FuzzEmulation::from_name(&self.emulation)
            .ok_or_else(|| format!("unknown emulation {:?}", self.emulation))?;
        Ok(FuzzConfig {
            params: self.params,
            emulation,
            workload: self.workload,
            check: self.check,
            seed: self.workload_seed,
            budget: 0,
            max_steps_per_op: self.max_steps_per_op,
            stop_on_failure: false,
        })
    }

    /// Serializes the schedule to the `regemu-trace v1` text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("regemu-trace v1\n");
        out.push_str(&format!(
            "params {} {} {}\n",
            self.params.k, self.params.f, self.params.n
        ));
        out.push_str(&format!("emulation {}\n", self.emulation));
        out.push_str(&format!("workload {}\n", self.workload.label()));
        out.push_str(&format!("workload-len {}\n", self.workload_len));
        out.push_str(&format!("check {}\n", self.check.name()));
        out.push_str(&format!("workload-seed {}\n", self.workload_seed));
        out.push_str(&format!("tail-seed {}\n", self.tail_seed));
        out.push_str(&format!("max-steps {}\n", self.max_steps_per_op));
        for &(time, server) in &self.crashes {
            out.push_str(&format!("crash {time} {server}\n"));
        }
        out.push_str("decisions");
        for d in &self.decisions {
            out.push_str(&format!(" {d}"));
        }
        out.push_str("\nend\n");
        out
    }

    /// Parses the `regemu-trace v1` text format.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed line.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty trace")?;
        if header.trim() != "regemu-trace v1" {
            return Err(format!("unsupported trace header {header:?}"));
        }

        fn field<'a>(line: Option<&'a str>, key: &str) -> Result<&'a str, String> {
            let line = line.ok_or_else(|| format!("missing {key} line"))?.trim();
            line.strip_prefix(key)
                .map(str::trim)
                .ok_or_else(|| format!("expected {key} line, found {line:?}"))
        }
        fn num<T: std::str::FromStr>(value: &str, key: &str) -> Result<T, String> {
            value
                .parse()
                .map_err(|_| format!("malformed {key} value {value:?}"))
        }

        let params_line = field(lines.next(), "params")?;
        let mut parts = params_line.split_whitespace();
        let k: usize = num(parts.next().ok_or("params needs k f n")?, "params k")?;
        let f: usize = num(parts.next().ok_or("params needs k f n")?, "params f")?;
        let n: usize = num(parts.next().ok_or("params needs k f n")?, "params n")?;
        let params = Params::new(k, f, n).map_err(|e| format!("invalid params: {e}"))?;

        let emulation = field(lines.next(), "emulation")?.to_string();
        let workload_label = field(lines.next(), "workload")?;
        let workload = WorkloadSpec::from_label(workload_label)
            .ok_or_else(|| format!("unknown workload {workload_label:?}"))?;
        let workload_len = num(field(lines.next(), "workload-len")?, "workload-len")?;
        let check_name = field(lines.next(), "check")?;
        let check = ConsistencyCheck::from_name(check_name)
            .ok_or_else(|| format!("unknown check {check_name:?}"))?;
        let workload_seed = num(field(lines.next(), "workload-seed")?, "workload-seed")?;
        let tail_seed = num(field(lines.next(), "tail-seed")?, "tail-seed")?;
        let max_steps_per_op = num(field(lines.next(), "max-steps")?, "max-steps")?;

        let mut crashes = Vec::new();
        let mut decisions = Vec::new();
        let mut saw_decisions = false;
        for line in lines.by_ref() {
            let line = line.trim();
            if let Some(rest) = line.strip_prefix("crash ") {
                let mut parts = rest.split_whitespace();
                let time: Time = num(parts.next().ok_or("crash needs time server")?, "crash")?;
                let server: usize = num(parts.next().ok_or("crash needs time server")?, "crash")?;
                crashes.push((time, server));
            } else if let Some(rest) = line.strip_prefix("decisions") {
                for token in rest.split_whitespace() {
                    decisions.push(num(token, "decisions")?);
                }
                saw_decisions = true;
                break;
            } else {
                return Err(format!("unexpected line {line:?}"));
            }
        }
        if !saw_decisions {
            return Err("missing decisions line".to_string());
        }
        match lines.next().map(str::trim) {
            Some("end") => {}
            other => return Err(format!("expected end, found {other:?}")),
        }

        Ok(RecordedSchedule {
            params,
            emulation,
            workload,
            workload_len,
            check,
            workload_seed,
            tail_seed,
            max_steps_per_op,
            crashes,
            decisions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RecordedSchedule {
        RecordedSchedule {
            params: Params::new(2, 1, 4).unwrap(),
            emulation: "space-optimal".to_string(),
            workload: WorkloadSpec::WriteSequential {
                rounds: 1,
                read_after_each: true,
            },
            workload_len: 3,
            check: ConsistencyCheck::WsRegular,
            workload_seed: 17,
            tail_seed: 4,
            max_steps_per_op: 50_000,
            crashes: vec![(5, 3), (9, 2)],
            decisions: vec![0, 2, 1, 7],
        }
    }

    #[test]
    fn text_round_trips_byte_identically() {
        let schedule = sample();
        let text = schedule.to_text();
        let parsed = RecordedSchedule::from_text(&text).unwrap();
        assert_eq!(parsed, schedule);
        assert_eq!(parsed.to_text(), text);
    }

    #[test]
    fn empty_schedules_round_trip_too() {
        let mut schedule = sample();
        schedule.crashes.clear();
        schedule.decisions.clear();
        let parsed = RecordedSchedule::from_text(&schedule.to_text()).unwrap();
        assert_eq!(parsed, schedule);
    }

    #[test]
    fn malformed_traces_are_rejected_with_a_reason() {
        assert!(RecordedSchedule::from_text("").is_err());
        assert!(RecordedSchedule::from_text("regemu-trace v2\n").is_err());
        let mut text = sample().to_text();
        text = text.replace("check ws-regular", "check bogus");
        let err = RecordedSchedule::from_text(&text).unwrap_err();
        assert!(err.contains("bogus"), "{err}");
        let truncated = sample().to_text().replace("end\n", "");
        assert!(RecordedSchedule::from_text(&truncated).is_err());
    }

    #[test]
    fn faulty_emulations_resolve_through_config() {
        let mut schedule = sample();
        schedule.emulation = "faulty-skipped-update".to_string();
        let config = schedule.config().unwrap();
        assert_eq!(config.emulation.name(), "faulty-skipped-update");
        schedule.emulation = "no-such-thing".to_string();
        assert!(schedule.config().is_err());
    }
}
