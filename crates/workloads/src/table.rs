//! Plain-text table rendering and parameter sweeps for the experiment
//! binaries.

use regemu_bounds::Params;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A simple fixed-column text table used by the `regemu-bench` binaries to
/// print paper-style tables on stdout.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TextTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        TextTable {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; the number of cells should match the headers.
    pub fn push_row<I, S>(&mut self, cells: I)
    where
        I: IntoIterator<Item = S>,
        S: ToString,
    {
        self.rows
            .push(cells.into_iter().map(|c| c.to_string()).collect());
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// The column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i >= widths.len() {
                    widths.push(cell.len());
                } else {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        if !self.title.is_empty() {
            writeln!(f, "{}", self.title)?;
            writeln!(f, "{}", "=".repeat(self.title.len()))?;
        }
        let render_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!("{cell:>width$}  ", width = w));
            }
            writeln!(f, "{}", line.trim_end())
        };
        render_row(f, &self.headers)?;
        let total: usize = widths.iter().map(|w| w + 2).sum();
        writeln!(f, "{}", "-".repeat(total.saturating_sub(2)))?;
        for row in &self.rows {
            render_row(f, row)?;
        }
        Ok(())
    }
}

/// The standard parameter sweep used by the Table 1 experiment: a grid of
/// `k`, `f` and `n` values starting at the minimum `n = 2f + 1`.
pub fn standard_sweep() -> Vec<Params> {
    let mut points = Vec::new();
    for f in 1..=3usize {
        for k in [1usize, 2, 3, 4, 6, 8] {
            for extra in [0usize, 1, f, 2 * f, k * f] {
                let n = 2 * f + 1 + extra;
                if let Ok(p) = Params::new(k, f, n) {
                    points.push(p);
                }
            }
        }
    }
    points.sort_by_key(|p| (p.f, p.k, p.n));
    points.dedup();
    points
}

/// A small sweep (fast enough for CI-style smoke tests of the experiment
/// binaries).
pub fn small_sweep() -> Vec<Params> {
    [
        (1, 1, 3),
        (2, 1, 3),
        (2, 1, 4),
        (3, 1, 5),
        (2, 2, 5),
        (5, 2, 6),
    ]
    .into_iter()
    .map(|(k, f, n)| Params::new(k, f, n).unwrap())
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = TextTable::new("Demo", &["k", "lower", "upper"]);
        t.push_row(["1", "3", "3"]);
        t.push_row(["10", "30", "33"]);
        let s = t.to_string();
        assert!(s.contains("Demo"));
        assert!(s.contains("===="));
        assert!(s.contains("lower"));
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.headers().len(), 3);
        assert_eq!(t.rows()[1][2], "33");
        // Every rendered line of the body ends without trailing spaces.
        for line in s.lines() {
            assert_eq!(line, line.trim_end());
        }
    }

    #[test]
    fn standard_sweep_is_valid_sorted_and_deduplicated() {
        let sweep = standard_sweep();
        assert!(sweep.len() > 20);
        for p in &sweep {
            assert!(p.n >= 2 * p.f + 1);
            assert!(p.k >= 1);
        }
        let mut sorted = sweep.clone();
        sorted.sort_by_key(|p| (p.f, p.k, p.n));
        sorted.dedup();
        assert_eq!(sweep, sorted);
    }

    #[test]
    fn small_sweep_contains_the_figure_1_point() {
        let sweep = small_sweep();
        assert!(sweep.contains(&Params::new(5, 2, 6).unwrap()));
        assert_eq!(sweep.len(), 6);
    }
}
