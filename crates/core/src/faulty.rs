//! Intentionally broken emulations for fuzzer validation.
//!
//! A schedule fuzzer (`regemu::fuzz`) that has never been shown to catch a
//! known bug is untested machinery. This module seeds the bugs: each
//! [`FaultyKind`] builds an [`Emulation`] that is a correct construction with
//! one deliberate protocol fault injected, so the seeded-bug oracle suite can
//! assert that the fuzzer finds a failing schedule for every variant while
//! the clean counterparts survive the same budget.
//!
//! **Never use these outside tests, fuzzing or triage.** They violate the
//! paper's guarantees by construction:
//!
//! * [`FaultyKind::WeakQuorumWrite`] — Algorithm 2 with the write quorum
//!   reduced from `|R_j| - f` to `|R_j| - f - 1` (one missing
//!   acknowledgement, via
//!   [`SpaceOptimalClient::writer_with_quorum_slack`]). The construction
//!   stays live but is no longer `f`-tolerant WS-Safe: a crafted crash
//!   schedule can lose a completed write. Only an adversarial interleaving
//!   exposes it — fair schedules almost always pass.
//! * [`FaultyKind::SkippedUpdateRound`] — multi-writer ABD whose writers
//!   acknowledge right after the query phase, skipping the second
//!   (update) round, so written values never reach any server. Almost any
//!   schedule with a write followed by a read exposes it.
//! * [`FaultyKind::DroppedAcks`] — multi-writer ABD whose writers stop
//!   processing responses after a trigger threshold of `2(n - f)`
//!   deliveries (exactly the two quorums a write needs, via
//!   [`AbdClient::dropping_acks_after`]). A write completes only when no
//!   stray response is delivered before its second quorum fills; any other
//!   interleaving wedges the writer forever. This is a pure *liveness* bug —
//!   no consistency condition is ever violated — so only a stuck detector
//!   (the fuzzer's `FailureKind::Stuck` oracle) can catch it.
//!
//! The faulty kinds deliberately mirror [`crate::EmulationKind`]'s
//! `name`/`from_name` round-trip so fuzz traces that reference them can be
//! replayed from text.

use crate::abd::AbdClient;
use crate::emulation::{AbdMaxRegisterEmulation, Emulation, SpaceOptimalEmulation};
use crate::upper_bound::SpaceOptimalClient;
use regemu_bounds::Params;
use regemu_fpsm::{ClientProtocol, ObjectKind, Topology};

/// The catalogue of seeded bugs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultyKind {
    /// Algorithm 2 with one acknowledgement shaved off the write quorum.
    WeakQuorumWrite,
    /// ABD writers that never run the update round.
    SkippedUpdateRound,
    /// ABD writers that drop every response after a trigger threshold — a
    /// liveness bug that wedges writes instead of corrupting them.
    DroppedAcks,
}

impl FaultyKind {
    /// Every seeded bug, in definition order.
    pub const ALL: [FaultyKind; 3] = [
        FaultyKind::WeakQuorumWrite,
        FaultyKind::SkippedUpdateRound,
        FaultyKind::DroppedAcks,
    ];

    /// Stable short name used in fuzz traces and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            FaultyKind::WeakQuorumWrite => "faulty-weak-quorum",
            FaultyKind::SkippedUpdateRound => "faulty-skipped-update",
            FaultyKind::DroppedAcks => "faulty-dropped-acks",
        }
    }

    /// Whether the seeded bug is a *liveness* bug: it wedges runs rather
    /// than violating a consistency condition, so it can only be caught by
    /// a stuck oracle, never by a checker.
    pub fn is_liveness_bug(self) -> bool {
        matches!(self, FaultyKind::DroppedAcks)
    }

    /// The inverse of [`FaultyKind::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        FaultyKind::ALL.into_iter().find(|k| k.name() == name)
    }

    /// Builds the faulty emulation for the given parameters.
    pub fn build(self, params: Params) -> Box<dyn Emulation> {
        match self {
            FaultyKind::WeakQuorumWrite => Box::new(WeakQuorumEmulation::new(params)),
            FaultyKind::SkippedUpdateRound => Box::new(SkippedUpdateEmulation::new(params)),
            FaultyKind::DroppedAcks => Box::new(DroppedAcksEmulation::new(params)),
        }
    }
}

/// [`SpaceOptimalEmulation`] whose writers wait for one acknowledgement too
/// few (quorum slack 1). See [`FaultyKind::WeakQuorumWrite`].
#[derive(Debug)]
pub struct WeakQuorumEmulation {
    inner: SpaceOptimalEmulation,
}

impl WeakQuorumEmulation {
    /// Creates the faulty emulation.
    pub fn new(params: Params) -> Self {
        WeakQuorumEmulation {
            inner: SpaceOptimalEmulation::new(params),
        }
    }
}

impl Emulation for WeakQuorumEmulation {
    fn name(&self) -> &'static str {
        "faulty-weak-quorum"
    }

    fn base_object_kind(&self) -> ObjectKind {
        self.inner.base_object_kind()
    }

    fn params(&self) -> Params {
        self.inner.params()
    }

    fn topology(&self) -> &Topology {
        self.inner.topology()
    }

    fn writer_protocol(&self, writer_index: usize) -> Box<dyn ClientProtocol> {
        Box::new(SpaceOptimalClient::writer_with_quorum_slack(
            self.inner.shared_layout(),
            writer_index,
            1,
        ))
    }

    fn reader_protocol(&self) -> Box<dyn ClientProtocol> {
        self.inner.reader_protocol()
    }
}

/// [`AbdMaxRegisterEmulation`] whose writers acknowledge after the query
/// phase without ever writing. See [`FaultyKind::SkippedUpdateRound`].
#[derive(Debug)]
pub struct SkippedUpdateEmulation {
    inner: AbdMaxRegisterEmulation,
}

impl SkippedUpdateEmulation {
    /// Creates the faulty emulation.
    pub fn new(params: Params) -> Self {
        SkippedUpdateEmulation {
            inner: AbdMaxRegisterEmulation::new(params, false),
        }
    }
}

impl Emulation for SkippedUpdateEmulation {
    fn name(&self) -> &'static str {
        "faulty-skipped-update"
    }

    fn base_object_kind(&self) -> ObjectKind {
        self.inner.base_object_kind()
    }

    fn params(&self) -> Params {
        self.inner.params()
    }

    fn topology(&self) -> &Topology {
        self.inner.topology()
    }

    fn writer_protocol(&self, writer_index: usize) -> Box<dyn ClientProtocol> {
        Box::new(
            AbdClient::new(
                self.inner.quorum_params(),
                Some(writer_index),
                self.inner.read_write_back(),
                self.inner.drivers(),
            )
            .skipping_update(),
        )
    }

    fn reader_protocol(&self) -> Box<dyn ClientProtocol> {
        self.inner.reader_protocol()
    }
}

/// [`AbdMaxRegisterEmulation`] whose writers stop processing responses after
/// `2(n - f)` deliveries. See [`FaultyKind::DroppedAcks`].
#[derive(Debug)]
pub struct DroppedAcksEmulation {
    inner: AbdMaxRegisterEmulation,
}

impl DroppedAcksEmulation {
    /// Creates the faulty emulation.
    pub fn new(params: Params) -> Self {
        DroppedAcksEmulation {
            inner: AbdMaxRegisterEmulation::new(params, false),
        }
    }
}

impl Emulation for DroppedAcksEmulation {
    fn name(&self) -> &'static str {
        "faulty-dropped-acks"
    }

    fn base_object_kind(&self) -> ObjectKind {
        self.inner.base_object_kind()
    }

    fn params(&self) -> Params {
        self.inner.params()
    }

    fn topology(&self) -> &Topology {
        self.inner.topology()
    }

    fn writer_protocol(&self, writer_index: usize) -> Box<dyn ClientProtocol> {
        let params = self.inner.params();
        // Exactly the two quorums a write needs: the writer survives only
        // the schedules where no stray response lands before its second
        // quorum fills. Anything else wedges it forever.
        let threshold = 2 * (params.n - params.f) as u64;
        Box::new(
            AbdClient::new(
                self.inner.quorum_params(),
                Some(writer_index),
                self.inner.read_write_back(),
                self.inner.drivers(),
            )
            .dropping_acks_after(threshold),
        )
    }

    fn reader_protocol(&self) -> Box<dyn ClientProtocol> {
        self.inner.reader_protocol()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emulation::EmulationKind;
    use regemu_fpsm::{FairDriver, HighOp, HighResponse};

    #[test]
    fn names_round_trip_and_avoid_the_clean_namespace() {
        for kind in FaultyKind::ALL {
            assert_eq!(FaultyKind::from_name(kind.name()), Some(kind));
            assert!(EmulationKind::from_name(kind.name()).is_none());
            let params = Params::new(1, 1, 3).unwrap();
            assert_eq!(kind.build(params).name(), kind.name());
        }
    }

    #[test]
    fn skipped_update_loses_the_write_even_under_a_fair_schedule() {
        let params = Params::new(1, 1, 3).unwrap();
        let emulation = FaultyKind::SkippedUpdateRound.build(params);
        let mut sim = emulation.build_simulation();
        let writer = sim.register_client(emulation.writer_protocol(0));
        let reader = sim.register_client(emulation.reader_protocol());
        let mut driver = FairDriver::new(7);
        let w = sim.invoke(writer, HighOp::Write(9)).unwrap();
        driver.run_until_complete(&mut sim, w, 10_000).unwrap();
        let r = sim.invoke(reader, HighOp::Read).unwrap();
        driver.run_until_complete(&mut sim, r, 10_000).unwrap();
        // The update round never ran, so the completed write is invisible.
        assert_eq!(sim.result_of(r), Some(HighResponse::ReadValue(0)));
    }

    #[test]
    fn dropped_acks_wedges_the_writer_once_a_stray_response_lands() {
        // Threshold 2(n - f) = 4 at (1, 1, 3): the writer needs two query
        // responses and two update acks, but all three servers answer the
        // query. Under a fair schedule the stray third query response is
        // delivered before the second update ack, pushing the writer past
        // its threshold — the final ack is dropped and the write never
        // completes. Liveness, not safety: readers still work fine.
        let params = Params::new(1, 1, 3).unwrap();
        let emulation = FaultyKind::DroppedAcks.build(params);
        let mut sim = emulation.build_simulation();
        let writer = sim.register_client(emulation.writer_protocol(0));
        let reader = sim.register_client(emulation.reader_protocol());
        let mut driver = FairDriver::new(7);
        let w = sim.invoke(writer, HighOp::Write(9)).unwrap();
        assert!(
            driver.run_until_complete(&mut sim, w, 10_000).is_err(),
            "the dropped-acks writer must wedge under a fair schedule"
        );
        // The reader protocol is untouched and still completes.
        let r = sim.invoke(reader, HighOp::Read).unwrap();
        driver.run_until_complete(&mut sim, r, 10_000).unwrap();
        assert!(matches!(sim.result_of(r), Some(HighResponse::ReadValue(_))));
    }

    #[test]
    fn weak_quorum_passes_once_the_leftover_writes_drain() {
        // The weak-quorum bug is schedule-dependent: the premature write-ack
        // races the undrained low-level writes. Once those drain, reads are
        // healthy again — which is exactly what makes it a fuzzing target
        // rather than a bug any run exposes.
        let params = Params::new(1, 1, 3).unwrap();
        let emulation = FaultyKind::WeakQuorumWrite.build(params);
        let mut sim = emulation.build_simulation();
        let writer = sim.register_client(emulation.writer_protocol(0));
        let reader = sim.register_client(emulation.reader_protocol());
        let mut driver = FairDriver::new(7);
        let w = sim.invoke(writer, HighOp::Write(9)).unwrap();
        driver.run_until_complete(&mut sim, w, 10_000).unwrap();
        driver.run_until_quiescent(&mut sim, 10_000).unwrap();
        let r = sim.invoke(reader, HighOp::Read).unwrap();
        driver.run_until_complete(&mut sim, r, 10_000).unwrap();
        assert_eq!(sim.result_of(r), Some(HighResponse::ReadValue(9)));
    }
}
