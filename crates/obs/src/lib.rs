//! # regemu-obs — zero-dependency telemetry
//!
//! One registry for every subsystem's runtime metrics: named [`Counter`]s,
//! [`Gauge`]s and [`LatencyHistogram`]s behind cheap `Arc` handles, plus
//! span-style [`ScopeTimer`]s and a renderable [`Snapshot`]
//! (aligned text, JSON, Prometheus-style exposition).
//!
//! ## The non-perturbation contract
//!
//! The repo's backbone is determinism: the same seed must produce
//! byte-identical histories, reports and campaign merges, with telemetry on
//! or off. Instrumentation therefore obeys two rules:
//!
//! 1. **Observation only.** Telemetry handles are written to, never read
//!    from, inside deterministic paths — no behaviour may branch on a
//!    metric value.
//! 2. **Logical time inside, wallclock at the edge.** Deterministic code
//!    (the simulator, sweep/fuzz execution) may count events and sample
//!    logical clocks; wallclock readings ([`ScopeTimer`], heartbeat stamps,
//!    rates) happen only at process edges — request handling, report
//!    publication, dashboards — whose outputs are advisory, not part of any
//!    deterministic artifact.
//!
//! Collection is off by default: [`enabled`] gates the sampled hooks the
//! hot loops attach, and [`set_enabled`] / [`init_from_env`]
//! (`REGEMU_TELEMETRY=1`) switch it on. The golden-trace tests in
//! `regemu-fpsm` and `regemu-workloads` prove the contract by running the
//! same scenarios with telemetry on and off and diffing the artifacts
//! byte for byte.
//!
//! ## Example
//!
//! ```
//! use regemu_obs::Registry;
//!
//! let registry = Registry::new();
//! let steps = registry.counter("sim.steps");
//! steps.add(128);
//! registry.gauge("sim.pending").set(3);
//! registry.histogram("serve.latency_us").record(250);
//!
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter("sim.steps"), Some(128));
//! assert!(snap.to_text().contains("sim.steps"));
//! assert!(snap.to_prometheus().contains("sim_steps 128"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod histogram;
pub mod registry;
pub mod snapshot;

pub use histogram::LatencyHistogram;
pub use registry::{
    enabled, global, init_from_env, set_enabled, Counter, Gauge, HistogramCell, Registry,
    ScopeTimer,
};
pub use snapshot::{HistogramSummary, Snapshot};

/// Convenient glob import of the most frequently used items.
pub mod prelude {
    pub use crate::histogram::LatencyHistogram;
    pub use crate::registry::{
        enabled, global, set_enabled, Counter, Gauge, HistogramCell, Registry, ScopeTimer,
    };
    pub use crate::snapshot::{HistogramSummary, Snapshot};
}
