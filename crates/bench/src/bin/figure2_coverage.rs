//! Regenerates the run construction of **Figure 2 / Lemma 1 / Theorem 1**:
//! the `Ad_i` adversary forces every completed write to leave `f` more
//! registers covered, so coverage reaches `k·f` after `k` writes — while the
//! max-register baseline stays flat.
//!
//! ```text
//! cargo run -p regemu-bench --bin figure2_coverage
//! ```

use regemu_bench::experiments::figure2_coverage;
use regemu_bounds::{register_lower_bound, register_upper_bound, Params};

fn main() {
    for (k, f, n) in [(4usize, 1usize, 3usize), (6, 1, 4), (4, 2, 6)] {
        let params = Params::new(k, f, n).expect("valid parameters");
        println!("{}", figure2_coverage(params));
        println!(
            "paper bounds at {params}: lower = {}, upper = {}\n",
            register_lower_bound(params),
            register_upper_bound(params)
        );
    }
}
