//! Register-set layout of the space-optimal construction (Section 3.3).
//!
//! The upper-bound algorithm partitions the `k` writers over a collection
//! `R = {R_0, …, R_{m-1}}` of **disjoint** register sets. With
//! `z = ⌊(n-(f+1))/f⌋` and `y = z·f + f + 1`:
//!
//! * every full set holds `y` registers and serves `z` writers;
//! * if `z` does not divide `k`, the final *overflow* set holds
//!   `(k mod z)·f + f + 1` registers and serves the remaining writers;
//! * within a set, every register is mapped to a **different** server
//!   (`|δ(R_i)| = |R_i|`).
//!
//! The total register count is exactly the upper bound of Theorem 3, and
//! [`RegisterLayout::render`] reproduces Figure 1 of the paper for any
//! parameter choice.

use regemu_bounds::Params;
use regemu_fpsm::{ObjectId, ObjectKind, ServerId, Topology};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The placement of the register sets `R_0..R_{m-1}` used by Algorithm 2.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RegisterLayout {
    params: Params,
    /// `sets[i]` is the list of base registers in `R_i`.
    sets: Vec<Vec<ObjectId>>,
    /// `servers[i][j]` is the server hosting `sets[i][j]`.
    servers: Vec<Vec<ServerId>>,
}

impl RegisterLayout {
    /// Builds the layout inside `topology`, which must already contain
    /// `params.n` servers. One base register is added per layout slot; sets
    /// are rotated across servers so the load is spread (and so that at
    /// `n = 2f + 1` every server receives exactly one register per set).
    ///
    /// # Panics
    ///
    /// Panics if the topology does not have exactly `params.n` servers.
    pub fn install(params: Params, topology: &mut Topology) -> Self {
        assert_eq!(
            topology.server_count(),
            params.n,
            "topology has {} servers but the layout needs n = {}",
            topology.server_count(),
            params.n
        );
        let z = params.z();
        let full_set_size = params.y();
        let full_sets = params.k / z;
        let remainder_writers = params.k % z;

        let mut set_sizes: Vec<usize> = vec![full_set_size; full_sets];
        if remainder_writers > 0 {
            set_sizes.push(remainder_writers * params.f + params.f + 1);
        }

        let n = params.n;
        let mut sets = Vec::with_capacity(set_sizes.len());
        let mut servers = Vec::with_capacity(set_sizes.len());
        for (i, size) in set_sizes.iter().enumerate() {
            debug_assert!(*size <= n, "a register set never exceeds the server count");
            let mut set = Vec::with_capacity(*size);
            let mut set_servers = Vec::with_capacity(*size);
            // Rotate the starting server from set to set to spread occupancy.
            let start = (i * *size) % n;
            for slot in 0..*size {
                let server = ServerId::new((start + slot) % n);
                let object = topology.add_object(ObjectKind::Register, server);
                set.push(object);
                set_servers.push(server);
            }
            sets.push(set);
            servers.push(set_servers);
        }

        RegisterLayout {
            params,
            sets,
            servers,
        }
    }

    /// Convenience constructor: builds a fresh topology with `params.n`
    /// servers and installs the layout in it.
    pub fn build(params: Params) -> (Topology, Self) {
        let mut topology = Topology::new(params.n);
        let layout = Self::install(params, &mut topology);
        (topology, layout)
    }

    /// The parameters this layout was built for.
    pub fn params(&self) -> Params {
        self.params
    }

    /// The register sets `R_0..R_{m-1}`.
    pub fn sets(&self) -> &[Vec<ObjectId>] {
        &self.sets
    }

    /// Number of register sets `m`.
    pub fn set_count(&self) -> usize {
        self.sets.len()
    }

    /// Total number of base registers in the layout — the resource
    /// consumption of the construction (equals Theorem 3's formula).
    pub fn total_registers(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// All registers of the layout, in set order.
    pub fn all_registers(&self) -> Vec<ObjectId> {
        self.sets.iter().flatten().copied().collect()
    }

    /// The index of the register set assigned to writer `writer`
    /// (0-based writer index, `writer < k`).
    ///
    /// # Panics
    ///
    /// Panics if `writer >= k`.
    pub fn set_for_writer(&self, writer: usize) -> usize {
        assert!(
            writer < self.params.k,
            "writer index {writer} out of range (k = {})",
            self.params.k
        );
        writer / self.params.z()
    }

    /// The registers writer `writer` writes to (its set `R_{⌊writer/z⌋}`).
    pub fn registers_for_writer(&self, writer: usize) -> &[ObjectId] {
        &self.sets[self.set_for_writer(writer)]
    }

    /// The servers hosting the registers of set `i`, parallel to
    /// [`RegisterLayout::sets`].
    pub fn servers_of_set(&self, i: usize) -> &[ServerId] {
        &self.servers[i]
    }

    /// Writers assigned to set `i` (0-based writer indices).
    pub fn writers_of_set(&self, i: usize) -> Vec<usize> {
        (0..self.params.k)
            .filter(|w| self.set_for_writer(*w) == i)
            .collect()
    }

    /// The write-quorum size for a writer of set `i`: `|R_i| - f`.
    pub fn write_quorum_size(&self, i: usize) -> usize {
        self.sets[i].len() - self.params.f
    }

    /// Number of layout registers hosted on each server.
    pub fn occupancy(&self) -> BTreeMap<ServerId, usize> {
        let mut occ: BTreeMap<ServerId, usize> = BTreeMap::new();
        for set_servers in &self.servers {
            for s in set_servers {
                *occ.entry(*s).or_default() += 1;
            }
        }
        occ
    }

    /// Renders the layout as a small ASCII table (one row per register set,
    /// one column per server), reproducing Figure 1 of the paper.
    pub fn render(&self) -> String {
        let n = self.params.n;
        let mut out = String::new();
        out.push_str(&format!(
            "Register layout for {} (z = {}, y = {}, {} sets, {} registers)\n",
            self.params,
            self.params.z(),
            self.params.y(),
            self.set_count(),
            self.total_registers()
        ));
        out.push_str("        ");
        for s in 0..n {
            out.push_str(&format!("{:>6}", format!("s{s}")));
        }
        out.push('\n');
        for (i, (set, servers)) in self.sets.iter().zip(&self.servers).enumerate() {
            out.push_str(&format!("R_{i:<5} "));
            for s in 0..n {
                let cell = servers
                    .iter()
                    .position(|srv| srv.index() == s)
                    .map(|pos| format!("b{}", set[pos].index()))
                    .unwrap_or_else(|| "·".to_string());
                out.push_str(&format!("{cell:>6}"));
            }
            out.push_str(&format!("   writers {:?}\n", self.writers_of_set(i)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regemu_bounds::register_upper_bound;

    fn layout(k: usize, f: usize, n: usize) -> (Topology, RegisterLayout) {
        RegisterLayout::build(Params::new(k, f, n).unwrap())
    }

    #[test]
    fn figure1_layout_n6_k5_f2() {
        // Figure 1 of the paper: n = 6, k = 5, f = 2 → z = 1, 5 sets of 5
        // registers, 25 registers total, one writer per set.
        let (topology, layout) = layout(5, 2, 6);
        assert_eq!(layout.set_count(), 5);
        assert_eq!(layout.total_registers(), 25);
        assert_eq!(topology.object_count(), 25);
        for i in 0..5 {
            assert_eq!(layout.sets()[i].len(), 5);
            assert_eq!(layout.writers_of_set(i), vec![i]);
            assert_eq!(layout.write_quorum_size(i), 3);
        }
        let rendered = layout.render();
        assert!(rendered.contains("R_0"));
        assert!(rendered.contains("R_4"));
    }

    #[test]
    fn total_matches_theorem_3_for_a_sweep() {
        for f in 1..=3usize {
            for k in 1..=9usize {
                for n in (2 * f + 1)..=(3 * f + 4) {
                    let p = Params::new(k, f, n).unwrap();
                    let (_, l) = RegisterLayout::build(p);
                    assert_eq!(
                        l.total_registers(),
                        register_upper_bound(p),
                        "layout size mismatch at {p}"
                    );
                }
            }
        }
    }

    #[test]
    fn sets_are_disjoint_and_spread_over_distinct_servers() {
        let (topology, l) = layout(7, 2, 8);
        let mut seen = std::collections::BTreeSet::new();
        for (i, set) in l.sets().iter().enumerate() {
            for b in set {
                assert!(seen.insert(*b), "register sets must be disjoint");
            }
            // |δ(R_i)| = |R_i|: every register of a set on a distinct server.
            let servers: std::collections::BTreeSet<_> =
                set.iter().map(|b| topology.server_of(*b)).collect();
            assert_eq!(servers.len(), set.len());
            // And the recorded server list matches the topology.
            for (b, s) in set.iter().zip(l.servers_of_set(i)) {
                assert_eq!(topology.server_of(*b), *s);
            }
        }
    }

    #[test]
    fn every_writer_is_assigned_to_exactly_one_set() {
        let (_, l) = layout(10, 1, 7);
        let z = l.params().z();
        for w in 0..10 {
            let set = l.set_for_writer(w);
            assert!(l.writers_of_set(set).contains(&w));
            assert_eq!(set, w / z);
            assert!(!l.registers_for_writer(w).is_empty());
        }
        // No set serves more than z writers.
        for i in 0..l.set_count() {
            assert!(l.writers_of_set(i).len() <= z);
        }
    }

    #[test]
    fn minimal_n_gives_k_registers_per_server() {
        // Theorem 6 setting: n = 2f + 1 → z = 1, every set spans all servers,
        // so each server hosts exactly k registers.
        let (_, l) = layout(4, 2, 5);
        let occ = l.occupancy();
        assert_eq!(occ.len(), 5);
        for (_, count) in occ {
            assert_eq!(count, 4);
        }
        assert_eq!(l.total_registers(), (2 * 2 + 1) * 4);
    }

    #[test]
    fn overflow_set_is_smaller() {
        // k = 5, f = 1, n = 4 → z = 2: two full sets of y = 4 registers and an
        // overflow set of (k mod z)·f + f + 1 = 3 registers for the last writer.
        let (_, l) = layout(5, 1, 4);
        assert_eq!(l.params().z(), 2);
        assert_eq!(l.params().y(), 4);
        assert_eq!(l.set_count(), 3);
        assert_eq!(l.sets()[0].len(), l.params().y());
        assert_eq!(l.sets()[1].len(), l.params().y());
        assert_eq!(l.sets()[2].len(), 1 + 1 + 1); // (k mod z)·f + f + 1
        assert_eq!(l.writers_of_set(2), vec![4]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn writer_index_out_of_range_panics() {
        let (_, l) = layout(2, 1, 4);
        l.set_for_writer(2);
    }

    #[test]
    #[should_panic(expected = "needs n")]
    fn installing_into_a_wrong_sized_topology_panics() {
        let mut t = Topology::new(3);
        RegisterLayout::install(Params::new(2, 1, 5).unwrap(), &mut t);
    }
}
