//! Criterion bench: raw throughput of the fault-prone shared-memory
//! simulation engine (trigger + deliver cycles), so regressions in the
//! substrate are visible independently of the emulation algorithms.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use regemu_bounds::Params;
use regemu_core::EmulationKind;
use regemu_fpsm::prelude::*;
use regemu_workloads::{ConsistencyCheck, Issuer, Scenario, Workload, WorkloadOp, WorkloadSpec};

/// A client that keeps one read outstanding against each register and
/// completes once every acknowledgement arrived. `remaining` is reset from
/// `targets` on each invocation; initialize it to 0.
struct FanoutClient {
    targets: Vec<ObjectId>,
    remaining: usize,
}

impl ClientProtocol for FanoutClient {
    fn on_invoke(&mut self, _op: HighOp, ctx: &mut Context<'_>) {
        self.remaining = self.targets.len();
        for b in &self.targets {
            ctx.trigger(*b, BaseOp::Read);
        }
    }

    fn on_response(&mut self, _delivery: Delivery, ctx: &mut Context<'_>) {
        self.remaining = self.remaining.saturating_sub(1);
        if self.remaining == 0 && !ctx.has_completed() {
            ctx.complete(HighResponse::ReadValue(0));
        }
    }
}

fn build(servers: usize) -> Simulation {
    let mut topology = Topology::new(servers);
    topology.add_object_per_server(ObjectKind::Register);
    Simulation::new(topology, SimConfig::unchecked())
}

fn bench_invoke_deliver_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_engine/invoke_deliver_cycle");
    for servers in [3usize, 9, 27] {
        group.bench_with_input(
            BenchmarkId::from_parameter(servers),
            &servers,
            |b, &servers| {
                b.iter_batched(
                    || {
                        let mut sim = build(servers);
                        let targets: Vec<ObjectId> = sim.topology().objects().collect();
                        let client = sim.register_client(Box::new(FanoutClient {
                            targets,
                            remaining: 0,
                        }));
                        (sim, client)
                    },
                    |(mut sim, client)| {
                        let op = sim.invoke(client, HighOp::Read).unwrap();
                        let pending: Vec<OpId> = sim.pending_ops().map(|p| p.op_id).collect();
                        for op_id in pending {
                            sim.deliver(op_id).unwrap();
                        }
                        assert!(sim.result_of(op).is_some());
                    },
                    BatchSize::SmallInput,
                );
            },
        );
    }
    group.finish();
}

fn bench_fair_driver_quiescence(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_engine/fair_driver_quiescence");
    for servers in [5usize, 25] {
        group.bench_with_input(
            BenchmarkId::from_parameter(servers),
            &servers,
            |b, &servers| {
                b.iter_batched(
                    || {
                        let mut sim = build(servers);
                        let targets: Vec<ObjectId> = sim.topology().objects().collect();
                        let client = sim.register_client(Box::new(FanoutClient {
                            targets,
                            remaining: 0,
                        }));
                        sim.invoke(client, HighOp::Read).unwrap();
                        (sim, FairDriver::new(7))
                    },
                    |(mut sim, mut driver)| {
                        driver.run_until_quiescent(&mut sim, 10_000).unwrap();
                    },
                    BatchSize::SmallInput,
                );
            },
        );
    }
    group.finish();
}

/// Many rounds of trigger + deliver through the same simulation: stresses the
/// pending-operation store (insert/remove/iterate) and `result_of` with an
/// ever-growing number of completed operations.
fn bench_pending_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_engine/pending_churn");
    for rounds in [64usize, 256] {
        group.bench_with_input(
            BenchmarkId::from_parameter(rounds),
            &rounds,
            |b, &rounds| {
                b.iter_batched(
                    || {
                        let mut sim = build(9);
                        let targets: Vec<ObjectId> = sim.topology().objects().collect();
                        let client = sim.register_client(Box::new(FanoutClient {
                            targets,
                            remaining: 0,
                        }));
                        (sim, client)
                    },
                    |(mut sim, client)| {
                        for _ in 0..rounds {
                            let op = sim.invoke(client, HighOp::Read).unwrap();
                            let pending: Vec<OpId> = sim.pending_ops().map(|p| p.op_id).collect();
                            for op_id in pending {
                                sim.deliver(op_id).unwrap();
                            }
                            assert!(sim.result_of(op).is_some());
                        }
                    },
                    BatchSize::SmallInput,
                );
            },
        );
    }
    group.finish();
}

/// Capturing `RunMetrics` at the end of a long run: stresses the history
/// digests (touched/written sets, point contention, trigger/respond counts).
fn bench_metrics_capture(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_engine/metrics_capture");
    for rounds in [64usize, 256] {
        let mut sim = build(9);
        let targets: Vec<ObjectId> = sim.topology().objects().collect();
        let client = sim.register_client(Box::new(FanoutClient {
            targets,
            remaining: 0,
        }));
        for _ in 0..rounds {
            sim.invoke(client, HighOp::Read).unwrap();
            let pending: Vec<OpId> = sim.pending_ops().map(|p| p.op_id).collect();
            for op_id in pending {
                sim.deliver(op_id).unwrap();
            }
        }
        group.bench_with_input(BenchmarkId::from_parameter(rounds), &sim, |b, sim| {
            b.iter(|| RunMetrics::capture(sim));
        });
    }
    group.finish();
}

/// End-to-end scenario run against the space-optimal emulation: the
/// composite path every experiment binary and the sweep harness go through.
fn bench_end_to_end_workload(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_engine/end_to_end_workload");
    for ops in [50usize, 200] {
        group.bench_with_input(BenchmarkId::from_parameter(ops), &ops, |b, &ops| {
            let params = Params::new(3, 1, 5).unwrap();
            let scenario = Scenario::new(params)
                .emulation(EmulationKind::SpaceOptimal)
                .workload(WorkloadSpec::RandomMixed {
                    readers: 2,
                    total: ops,
                    write_percent: 50,
                })
                .check(ConsistencyCheck::None)
                .seed(7);
            b.iter(|| scenario.run().unwrap());
        });
    }
    group.finish();
}

/// Many clients with overlapping (non-sequential) operations: stresses the
/// runner's in-flight bookkeeping. Before the `Scenario` engine this was a
/// linear `retain` over a `Vec` of outstanding ops per issued operation
/// (O(clients²) per round); the engine now goes through the simulation's
/// per-client state, O(1) per issue.
fn bench_outstanding_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_engine/outstanding_ops");
    for writers in [16usize, 64] {
        group.bench_with_input(
            BenchmarkId::from_parameter(writers),
            &writers,
            |b, &writers| {
                let params = Params::new(writers, 1, 3).unwrap();
                // Rounds of one concurrent write per writer, with a
                // sequential read as a round barrier.
                let mut steps = Vec::new();
                for _ in 0..4 {
                    for w in 0..writers {
                        steps.push(WorkloadOp {
                            issuer: Issuer::Writer(w),
                            op: HighOp::Write(w as u64 + 1),
                            sequential: false,
                        });
                    }
                    steps.push(WorkloadOp {
                        issuer: Issuer::Reader(0),
                        op: HighOp::Read,
                        sequential: true,
                    });
                }
                let scenario = Scenario::new(params)
                    .emulation(EmulationKind::AbdMaxRegister)
                    .workload_steps(Workload::from_steps(steps))
                    .check(ConsistencyCheck::None)
                    .seed(11);
                b.iter(|| scenario.run().unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_invoke_deliver_cycle,
    bench_fair_driver_quiescence,
    bench_pending_churn,
    bench_metrics_capture,
    bench_end_to_end_workload,
    bench_outstanding_ops
);
criterion_main!(benches);
