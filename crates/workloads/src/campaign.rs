//! Sharded multi-process sweep campaigns with deterministic merge and
//! resume.
//!
//! [`crate::sweep::run_sweep`] scales across threads in one process; a
//! *campaign* scales the same case space across OS processes (and, since
//! the on-disk format is the whole protocol, across machines sharing a
//! spool directory). The case space of a [`SweepConfig`] is split into
//! contiguous case-index *shards*; each shard is run by a worker process
//! that writes an index-keyed JSON report into the spool; the coordinator
//! merges the shard reports back into one [`crate::sweep::SweepReport`]
//! that is **byte-identical** to a single-process
//! [`crate::sweep::run_sweep`] of the same config.
//!
//! ## The spool directory
//!
//! A campaign lives in one directory:
//!
//! | file | written by | contents |
//! |---|---|---|
//! | `config.txt` | coordinator, once | the canonical [`SweepConfig`] text ([`config_to_text`]) |
//! | `manifest.txt` | coordinator | versioned [`ShardManifest`]: config fingerprint, shard ranges, per-shard status/attempts |
//! | `shard-NNNN.json` | worker `NNNN` | the shard's [`crate::sweep::SweepReport::to_json`] (global case indices) |
//! | `shard-NNNN.progress` | worker `NNNN` | `done total` case counts, updated as the shard runs |
//!
//! Workers never write the manifest; shard reports are written to a
//! temporary file and renamed into place, so a half-written report is never
//! mistaken for a finished shard. The coordinator rewrites the manifest the
//! same way. A campaign killed at *any* point therefore resumes cleanly:
//! [`run_campaign`] revalidates every shard marked done (the report file
//! must exist, parse, and cover exactly the shard's range), reuses the
//! valid ones, and re-runs only the rest.
//!
//! ## Determinism
//!
//! Every sweep case is a self-contained [`crate::Scenario`] value; a shard
//! is a pure function of `(config, range)`. The merge slots parsed results
//! by case index, so shard count, worker scheduling and completion order
//! never leak into the merged report — the property test suite checks
//! byte-identity of JSON and CSV against [`crate::sweep::run_sweep`] for arbitrary
//! partitions and shuffled completion orders.
//!
//! ## Quickstart
//!
//! ```text
//! # 96-case default grid, 4 shards, 2 worker processes, resumable spool:
//! cargo run --release -p regemu-bench --bin campaign_coordinator -- \
//!     --spool /tmp/campaign --shards 4 --workers 2 --json report.json
//! # Interrupted? Run the same command again: completed shards are reused.
//! ```
//!
//! Workers can also be pointed at the spool manually (e.g. from other
//! machines over a shared filesystem):
//!
//! ```text
//! cargo run --release -p regemu-bench --bin campaign_worker -- \
//!     --spool /tmp/campaign --shard 2
//! ```

use crate::runner::ConsistencyCheck;
use crate::scenario::{CrashPlanSpec, RecordingModeSpec, SchedulerSpec};
use crate::sweep::{run_sweep_range, CaseResult, EmulationKind, SweepConfig, WorkloadSpec};
use regemu_bounds::Params;
use std::fmt;
use std::fs;
use std::io::Read;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

/// Version tag of the on-disk manifest/config formats.
pub const FORMAT_VERSION: u32 = 1;

/// Errors raised by the campaign layer.
#[derive(Debug)]
pub enum CampaignError {
    /// An I/O error on the spool directory.
    Io(std::io::Error),
    /// A spool file exists but cannot be parsed.
    Malformed {
        /// Which file is broken.
        file: String,
        /// What is wrong with it.
        reason: String,
    },
    /// The spool was initialized for a different [`SweepConfig`].
    ConfigMismatch {
        /// Fingerprint recorded in the manifest.
        manifest: String,
        /// Fingerprint of the config handed to the campaign.
        config: String,
    },
    /// A shard index outside the manifest's shard count.
    UnknownShard(usize),
    /// A shard kept failing past the attempt budget.
    ShardFailed {
        /// The failing shard.
        shard: usize,
        /// Attempts consumed.
        attempts: u32,
        /// Last observed failure.
        reason: String,
    },
    /// The merged case set does not cover the config's case space.
    IncompleteMerge {
        /// First case index with no result.
        missing_index: usize,
    },
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Io(e) => write!(f, "spool I/O error: {e}"),
            CampaignError::Malformed { file, reason } => {
                write!(f, "malformed spool file {file}: {reason}")
            }
            CampaignError::ConfigMismatch { manifest, config } => write!(
                f,
                "spool belongs to a different sweep config \
                 (manifest fingerprint {manifest}, config fingerprint {config}); \
                 use a fresh spool directory"
            ),
            CampaignError::UnknownShard(i) => write!(f, "shard {i} is not in the manifest"),
            CampaignError::ShardFailed {
                shard,
                attempts,
                reason,
            } => write!(f, "shard {shard} failed {attempts} attempt(s): {reason}"),
            CampaignError::IncompleteMerge { missing_index } => {
                write!(f, "merge incomplete: no result for case {missing_index}")
            }
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<std::io::Error> for CampaignError {
    fn from(e: std::io::Error) -> Self {
        CampaignError::Io(e)
    }
}

pub(crate) fn malformed(file: &Path, reason: impl Into<String>) -> CampaignError {
    CampaignError::Malformed {
        file: file.display().to_string(),
        reason: reason.into(),
    }
}

// --------------------------------------------------------------------------
// Canonical config text and fingerprint
// --------------------------------------------------------------------------

/// FNV-1a 64-bit — dependency-free, stable across platforms.
pub(crate) fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Serializes a [`SweepConfig`] as canonical line-based text.
///
/// Every axis is rendered through its stable label/name, so the text (and
/// with it the [`config_fingerprint`]) identifies the *case space* of the
/// config. `threads` is deliberately excluded: worker-pool size never
/// affects results, so resuming a campaign with a different thread count is
/// legal.
pub fn config_to_text(config: &SweepConfig) -> String {
    let mut out = format!("regemu-sweep-config v{FORMAT_VERSION}\n");
    let join = |items: Vec<String>| items.join(" ");
    out.push_str(&format!(
        "grid {}\n",
        join(
            config
                .grid
                .iter()
                .map(|p| format!("{}/{}/{}", p.k, p.f, p.n))
                .collect()
        )
    ));
    out.push_str(&format!(
        "emulations {}\n",
        join(
            config
                .emulations
                .iter()
                .map(|e| e.name().to_string())
                .collect()
        )
    ));
    out.push_str(&format!(
        "workloads {}\n",
        join(config.workloads.iter().map(WorkloadSpec::label).collect())
    ));
    out.push_str(&format!(
        "schedulers {}\n",
        join(
            config
                .schedulers
                .iter()
                .map(|s| s.name().to_string())
                .collect()
        )
    ));
    out.push_str(&format!(
        "crash-plans {}\n",
        join(
            config
                .crash_plans
                .iter()
                .map(|c| c.name().to_string())
                .collect()
        )
    ));
    out.push_str(&format!(
        "recordings {}\n",
        join(config.recordings.iter().map(|r| r.label()).collect())
    ));
    out.push_str(&format!(
        "seeds {}\n",
        join(config.seeds.iter().map(u64::to_string).collect())
    ));
    out.push_str(&format!("check {}\n", config.check.name()));
    out.push_str(&format!("max-steps-per-op {}\n", config.max_steps_per_op));
    out
}

/// Parses the canonical text produced by [`config_to_text`].
///
/// The returned config has `threads = 0` (one worker thread per core);
/// campaign workers override it from their own CLI.
pub fn config_from_text(text: &str) -> Result<SweepConfig, String> {
    let mut lines = text.lines();
    let header = lines.next().ok_or("empty config")?;
    if header != format!("regemu-sweep-config v{FORMAT_VERSION}") {
        return Err(format!("unsupported config header {header:?}"));
    }
    let mut config = SweepConfig {
        grid: Vec::new(),
        emulations: Vec::new(),
        workloads: Vec::new(),
        schedulers: Vec::new(),
        crash_plans: Vec::new(),
        recordings: Vec::new(),
        seeds: Vec::new(),
        check: ConsistencyCheck::None,
        max_steps_per_op: 100_000,
        threads: 0,
    };
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        let (key, rest) = line.split_once(' ').unwrap_or((line, ""));
        let values: Vec<&str> = rest.split_whitespace().collect();
        match key {
            "grid" => {
                for v in values {
                    let parts: Vec<&str> = v.split('/').collect();
                    let [k, f, n] = parts.as_slice() else {
                        return Err(format!("bad grid point {v:?}"));
                    };
                    let parse =
                        |s: &str| s.parse::<usize>().map_err(|_| format!("bad number {s:?}"));
                    let params = Params::new(parse(k)?, parse(f)?, parse(n)?)
                        .map_err(|e| format!("invalid grid point {v:?}: {e}"))?;
                    config.grid.push(params);
                }
            }
            "emulations" => {
                for v in values {
                    config.emulations.push(
                        EmulationKind::from_name(v).ok_or(format!("unknown emulation {v:?}"))?,
                    );
                }
            }
            "workloads" => {
                for v in values {
                    config.workloads.push(
                        WorkloadSpec::from_label(v).ok_or(format!("unknown workload {v:?}"))?,
                    );
                }
            }
            "schedulers" => {
                for v in values {
                    config.schedulers.push(
                        SchedulerSpec::from_name(v).ok_or(format!("unknown scheduler {v:?}"))?,
                    );
                }
            }
            "crash-plans" => {
                for v in values {
                    config.crash_plans.push(
                        CrashPlanSpec::from_name(v).ok_or(format!("unknown crash plan {v:?}"))?,
                    );
                }
            }
            "recordings" => {
                for v in values {
                    config.recordings.push(
                        RecordingModeSpec::from_label(v)
                            .ok_or(format!("unknown recording mode {v:?}"))?,
                    );
                }
            }
            "seeds" => {
                for v in values {
                    config
                        .seeds
                        .push(v.parse().map_err(|_| format!("bad seed {v:?}"))?);
                }
            }
            "check" => {
                let v = values.first().ok_or("check needs a value")?;
                config.check =
                    ConsistencyCheck::from_name(v).ok_or(format!("unknown check {v:?}"))?;
            }
            "max-steps-per-op" => {
                let v = values.first().ok_or("max-steps-per-op needs a value")?;
                config.max_steps_per_op =
                    v.parse().map_err(|_| format!("bad step budget {v:?}"))?;
            }
            other => return Err(format!("unknown config key {other:?}")),
        }
    }
    Ok(config)
}

/// A stable 64-bit fingerprint of the config's case space, as 16 hex
/// digits. Two configs with the same fingerprint expand to the same cases,
/// so their shards and reports are interchangeable.
pub fn config_fingerprint(config: &SweepConfig) -> String {
    format!("{:016x}", fnv64(config_to_text(config).as_bytes()))
}

// --------------------------------------------------------------------------
// Shard planning and the manifest
// --------------------------------------------------------------------------

/// A contiguous case-index range `start..end` forming one shard.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardRange {
    /// Shard number (position in the manifest).
    pub index: usize,
    /// First case index of the shard (inclusive).
    pub start: usize,
    /// One past the last case index of the shard.
    pub end: usize,
}

impl ShardRange {
    /// Number of cases in the shard.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Returns `true` for a shard with no cases.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Splits `case_count` cases into `shards` contiguous, balanced ranges (the
/// first `case_count % shards` ranges hold one extra case). A shard count
/// larger than the case count is clamped, so no shard is empty unless the
/// case space itself is.
pub fn plan_shards(case_count: usize, shards: usize) -> Vec<ShardRange> {
    let shards = shards.max(1).min(case_count.max(1));
    let base = case_count / shards;
    let extra = case_count % shards;
    let mut ranges = Vec::with_capacity(shards);
    let mut start = 0;
    for index in 0..shards {
        let len = base + usize::from(index < extra);
        ranges.push(ShardRange {
            index,
            start,
            end: start + len,
        });
        start += len;
    }
    ranges
}

/// Lifecycle state of a shard, as persisted in the manifest.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardStatus {
    /// Not successfully completed yet.
    Pending,
    /// Completed: its report file is in the spool.
    Done,
}

impl ShardStatus {
    fn name(self) -> &'static str {
        match self {
            ShardStatus::Pending => "pending",
            ShardStatus::Done => "done",
        }
    }

    fn from_name(name: &str) -> Option<Self> {
        match name {
            "pending" => Some(ShardStatus::Pending),
            "done" => Some(ShardStatus::Done),
            _ => None,
        }
    }
}

/// One shard's entry in the manifest.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardEntry {
    /// The shard's case range.
    pub range: ShardRange,
    /// Current status.
    pub status: ShardStatus,
    /// Worker attempts consumed so far (successful or not).
    pub attempts: u32,
}

/// The versioned, on-disk state of a campaign: which config it runs (by
/// fingerprint), how the case space is sharded, and how far each shard got.
///
/// The manifest is the resume point *and* the wire protocol: any process
/// that can read the spool directory can pick up a pending shard.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardManifest {
    /// Fingerprint of the config ([`config_fingerprint`]).
    pub fingerprint: String,
    /// Total number of cases in the campaign.
    pub case_count: usize,
    /// Per-shard ranges and states, in shard order.
    pub shards: Vec<ShardEntry>,
}

impl ShardManifest {
    /// Plans a fresh manifest for `config` split into `shards` shards.
    pub fn plan(config: &SweepConfig, shards: usize) -> Self {
        ShardManifest {
            fingerprint: config_fingerprint(config),
            case_count: config.case_count(),
            shards: plan_shards(config.case_count(), shards)
                .into_iter()
                .map(|range| ShardEntry {
                    range,
                    status: ShardStatus::Pending,
                    attempts: 0,
                })
                .collect(),
        }
    }

    /// Serializes the manifest as its on-disk text.
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "regemu-campaign-manifest v{FORMAT_VERSION}\nfingerprint {}\ncases {}\nshards {}\n",
            self.fingerprint,
            self.case_count,
            self.shards.len()
        );
        for s in &self.shards {
            out.push_str(&format!(
                "shard {} {} {} {} {}\n",
                s.range.index,
                s.range.start,
                s.range.end,
                s.status.name(),
                s.attempts
            ));
        }
        out
    }

    /// Parses the on-disk manifest text.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty manifest")?;
        if header != format!("regemu-campaign-manifest v{FORMAT_VERSION}") {
            return Err(format!("unsupported manifest header {header:?}"));
        }
        let mut field = |name: &str| -> Result<String, String> {
            let line = lines.next().ok_or(format!("missing {name} line"))?;
            line.strip_prefix(&format!("{name} "))
                .map(str::to_string)
                .ok_or(format!("expected {name} line, got {line:?}"))
        };
        let fingerprint = field("fingerprint")?;
        let case_count: usize = field("cases")?
            .parse()
            .map_err(|_| "bad case count".to_string())?;
        let shard_count: usize = field("shards")?
            .parse()
            .map_err(|_| "bad shard count".to_string())?;
        let mut shards = Vec::with_capacity(shard_count);
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            let parts: Vec<&str> = line.split_whitespace().collect();
            let ["shard", index, start, end, status, attempts] = parts.as_slice() else {
                return Err(format!("bad shard line {line:?}"));
            };
            let parse = |s: &str| s.parse::<usize>().map_err(|_| format!("bad number {s:?}"));
            shards.push(ShardEntry {
                range: ShardRange {
                    index: parse(index)?,
                    start: parse(start)?,
                    end: parse(end)?,
                },
                status: ShardStatus::from_name(status)
                    .ok_or(format!("unknown status {status:?}"))?,
                attempts: attempts
                    .parse()
                    .map_err(|_| format!("bad attempt count {attempts:?}"))?,
            });
        }
        if shards.len() != shard_count {
            return Err(format!(
                "manifest declares {shard_count} shards but lists {}",
                shards.len()
            ));
        }
        // The ranges must partition 0..case_count in order.
        let mut expected_start = 0;
        for (i, s) in shards.iter().enumerate() {
            if s.range.index != i || s.range.start != expected_start || s.range.end < s.range.start
            {
                return Err(format!("shard {i} range is not a partition: {:?}", s.range));
            }
            expected_start = s.range.end;
        }
        if expected_start != case_count {
            return Err(format!(
                "shards cover {expected_start} cases, manifest declares {case_count}"
            ));
        }
        Ok(ShardManifest {
            fingerprint,
            case_count,
            shards,
        })
    }

    /// Loads the manifest from a spool directory, or `None` if the spool
    /// has no manifest yet.
    pub fn load(spool: &Path) -> Result<Option<Self>, CampaignError> {
        let path = manifest_path(spool);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        ShardManifest::from_text(&text)
            .map(Some)
            .map_err(|reason| malformed(&path, reason))
    }

    /// Atomically writes the manifest into the spool (temp file + rename),
    /// so a coordinator killed mid-write never leaves a torn manifest.
    pub fn store(&self, spool: &Path) -> Result<(), CampaignError> {
        write_atomically(&manifest_path(spool), &self.to_text())
    }

    /// Returns `true` once every shard is done.
    pub fn is_complete(&self) -> bool {
        self.shards.iter().all(|s| s.status == ShardStatus::Done)
    }

    /// Shards not yet done, in shard order.
    pub fn incomplete(&self) -> impl Iterator<Item = &ShardEntry> {
        self.shards.iter().filter(|s| s.status != ShardStatus::Done)
    }
}

// --------------------------------------------------------------------------
// Spool layout
// --------------------------------------------------------------------------

/// Path of the manifest inside a spool directory.
pub fn manifest_path(spool: &Path) -> PathBuf {
    spool.join("manifest.txt")
}

/// Path of the canonical config text inside a spool directory.
pub fn config_path(spool: &Path) -> PathBuf {
    spool.join("config.txt")
}

/// Path of a shard's JSON report inside a spool directory.
pub fn shard_report_path(spool: &Path, shard: usize) -> PathBuf {
    spool.join(format!("shard-{shard:04}.json"))
}

/// Path of a shard's `done total` progress counter inside a spool
/// directory.
pub fn shard_progress_path(spool: &Path, shard: usize) -> PathBuf {
    spool.join(format!("shard-{shard:04}.progress"))
}

pub(crate) fn write_atomically(path: &Path, contents: &str) -> Result<(), CampaignError> {
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, contents)?;
    fs::rename(&tmp, path)?;
    Ok(())
}

/// Initializes (or resumes) a spool directory for `config` split into
/// `shards` shards.
///
/// A fresh directory gets a `config.txt` and a pending manifest. An
/// existing spool is *resumed*: its manifest is loaded and returned as-is —
/// completed shards keep their status — after verifying that it belongs to
/// the same config ([`CampaignError::ConfigMismatch`] otherwise). The shard
/// count of an existing manifest wins over the `shards` argument: shard
/// ranges are frozen at campaign creation.
pub fn init_spool(
    spool: &Path,
    config: &SweepConfig,
    shards: usize,
) -> Result<ShardManifest, CampaignError> {
    fs::create_dir_all(spool)?;
    let fingerprint = config_fingerprint(config);
    if let Some(manifest) = ShardManifest::load(spool)? {
        if manifest.fingerprint != fingerprint {
            return Err(CampaignError::ConfigMismatch {
                manifest: manifest.fingerprint,
                config: fingerprint,
            });
        }
        return Ok(manifest);
    }
    write_atomically(&config_path(spool), &config_to_text(config))?;
    let manifest = ShardManifest::plan(config, shards);
    manifest.store(spool)?;
    Ok(manifest)
}

/// Loads the campaign's [`SweepConfig`] from a spool directory.
pub fn load_config(spool: &Path) -> Result<SweepConfig, CampaignError> {
    let path = config_path(spool);
    let text = fs::read_to_string(&path)?;
    config_from_text(&text).map_err(|reason| malformed(&path, reason))
}

// --------------------------------------------------------------------------
// Worker
// --------------------------------------------------------------------------

/// Number of cases a worker runs between progress-file updates.
const PROGRESS_CHUNK: usize = 8;

/// Runs one shard of the campaign in `spool`: the entry point of the
/// `campaign_worker` binary, also called in-process by [`run_campaign`]
/// when no worker binary is configured.
///
/// Reads the config and manifest from the spool, runs the shard's case
/// range with `threads` sweep threads (`0` = one per core), streams `done
/// total` counts into the shard's progress file, and atomically publishes
/// the shard report. Re-running a shard simply overwrites its report with
/// identical bytes — shards are pure functions of `(config, range)`.
///
/// # Errors
///
/// Fails if the spool is missing or malformed, or the shard index is not
/// in the manifest.
pub fn run_shard(spool: &Path, shard: usize, threads: usize) -> Result<ShardRange, CampaignError> {
    let mut config = load_config(spool)?;
    config.threads = threads;
    let manifest =
        ShardManifest::load(spool)?.ok_or_else(|| malformed(&manifest_path(spool), "missing"))?;
    if manifest.fingerprint != config_fingerprint(&config) {
        return Err(CampaignError::ConfigMismatch {
            manifest: manifest.fingerprint,
            config: config_fingerprint(&config),
        });
    }
    let entry = manifest
        .shards
        .get(shard)
        .ok_or(CampaignError::UnknownShard(shard))?;
    let range = entry.range;

    let mut results: Vec<CaseResult> = Vec::with_capacity(range.len());
    // Progress files and heartbeats are advisory: a failed write must not
    // fail the shard. The writer warns once per shard and counts failures
    // into the heartbeat so the dashboard can surface a sick spool disk.
    let mut beat = crate::status::HeartbeatWriter::new(spool, shard, "sweep", entry.attempts);
    beat.write_progress(0, range.len());
    beat.publish(0, range.len() as u64);
    let mut at = range.start;
    while at < range.end {
        let to = (at + PROGRESS_CHUNK).min(range.end);
        let chunk = run_sweep_range(&config, at, to);
        results.extend(chunk.results().iter().cloned());
        at = to;
        beat.write_progress(at - range.start, range.len());
        beat.publish((at - range.start) as u64, range.len() as u64);
    }

    let report = crate::sweep::SweepReport::from_results(results);
    write_atomically(&shard_report_path(spool, shard), &report.to_json())?;
    Ok(range)
}

// --------------------------------------------------------------------------
// Shard-report parsing (the merge's input)
// --------------------------------------------------------------------------

/// A minimal JSON value — just enough to read back the reports this crate
/// writes (the offline serde shim cannot deserialize, so the campaign
/// layer parses its own output format).
pub(crate) enum Json {
    Null,
    Bool(bool),
    Num(u64),
    Float(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub(crate) fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub(crate) fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub(crate) fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n as f64),
            Json::Float(x) => Some(*x),
            _ => None,
        }
    }

    pub(crate) fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_opt_string(&self) -> Option<Option<String>> {
        match self {
            Json::Null => Some(None),
            Json::Str(s) => Some(Some(s.clone())),
            _ => None,
        }
    }
}

pub(crate) struct JsonParser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> JsonParser<'a> {
    pub(crate) fn new(text: &'a str) -> Self {
        JsonParser {
            bytes: text.as_bytes(),
            at: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.at)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.at += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.at)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? != b {
            return Err(format!("expected {:?} at byte {}", char::from(b), self.at));
        }
        self.at += 1;
        Ok(())
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        self.skip_ws();
        if self.bytes[self.at..].starts_with(lit.as_bytes()) {
            self.at += lit.len();
            true
        } else {
            false
        }
    }

    pub(crate) fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b'0'..=b'9' => self.number(),
            _ => {
                if self.eat_literal("null") {
                    Ok(Json::Null)
                } else if self.eat_literal("true") {
                    Ok(Json::Bool(true))
                } else if self.eat_literal("false") {
                    Ok(Json::Bool(false))
                } else {
                    Err(format!("unexpected token at byte {}", self.at))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.at += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            match self.peek()? {
                b',' => self.at += 1,
                b'}' => {
                    self.at += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.at)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.at += 1,
                b']' => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.at)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.at)
                .ok_or("unterminated string".to_string())?;
            self.at += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.at)
                        .ok_or("unterminated escape".to_string())?;
                    self.at += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.at..self.at + 4)
                                .ok_or("truncated \\u escape".to_string())?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "non-ASCII \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            self.at += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or(format!("invalid code point {code:#x}"))?,
                            );
                        }
                        other => return Err(format!("unknown escape \\{}", char::from(other))),
                    }
                }
                _ => {
                    // Multi-byte UTF-8 sequences pass through unchanged.
                    let start = self.at - 1;
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .ok_or("truncated UTF-8 sequence".to_string())?;
                    out.push_str(
                        std::str::from_utf8(chunk).map_err(|e| format!("bad UTF-8: {e}"))?,
                    );
                    self.at = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.at;
        while self.bytes.get(self.at).is_some_and(u8::is_ascii_digit) {
            self.at += 1;
        }
        // Heartbeat files carry fractional rates; report files never do.
        let fractional = self.bytes.get(self.at) == Some(&b'.')
            && self.bytes.get(self.at + 1).is_some_and(u8::is_ascii_digit);
        if fractional {
            self.at += 1;
            while self.bytes.get(self.at).is_some_and(u8::is_ascii_digit) {
                self.at += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at]).expect("digits are ASCII");
        if fractional {
            text.parse()
                .map(Json::Float)
                .map_err(|_| format!("bad number {text:?}"))
        } else {
            text.parse()
                .map(Json::Num)
                .map_err(|_| format!("bad number {text:?}"))
        }
    }
}

fn case_from_json(case: &Json, file: &Path) -> Result<CaseResult, CampaignError> {
    let field = |key: &str| {
        case.get(key)
            .ok_or_else(|| malformed(file, format!("case missing field {key:?}")))
    };
    let num = |key: &str| -> Result<u64, CampaignError> {
        field(key)?
            .as_u64()
            .ok_or_else(|| malformed(file, format!("field {key:?} is not a number")))
    };
    let text = |key: &str| -> Result<String, CampaignError> {
        Ok(field(key)?
            .as_str()
            .ok_or_else(|| malformed(file, format!("field {key:?} is not a string")))?
            .to_string())
    };
    let opt_text = |key: &str| -> Result<Option<String>, CampaignError> {
        field(key)?
            .as_opt_string()
            .ok_or_else(|| malformed(file, format!("field {key:?} is not a string or null")))
    };

    let emulation_name = text("emulation")?;
    let emulation = EmulationKind::from_name(&emulation_name)
        .ok_or_else(|| malformed(file, format!("unknown emulation {emulation_name:?}")))?;
    let workload_label = text("workload")?;
    let workload = WorkloadSpec::from_label(&workload_label)
        .ok_or_else(|| malformed(file, format!("unknown workload {workload_label:?}")))?;
    let scheduler_name = text("scheduler")?;
    let scheduler = SchedulerSpec::from_name(&scheduler_name)
        .ok_or_else(|| malformed(file, format!("unknown scheduler {scheduler_name:?}")))?;
    let crashes_name = text("crashes")?;
    let crashes = CrashPlanSpec::from_name(&crashes_name)
        .ok_or_else(|| malformed(file, format!("unknown crash plan {crashes_name:?}")))?;
    let recording_label = text("recording")?;
    let recording = RecordingModeSpec::from_label(&recording_label)
        .ok_or_else(|| malformed(file, format!("unknown recording mode {recording_label:?}")))?;
    let params = Params::new(num("k")? as usize, num("f")? as usize, num("n")? as usize)
        .map_err(|e| malformed(file, format!("invalid case parameters: {e}")))?;
    let consistent = match field("consistent")? {
        Json::Bool(b) => *b,
        _ => return Err(malformed(file, "field \"consistent\" is not a boolean")),
    };

    Ok(CaseResult {
        case: crate::sweep::SweepCase {
            index: num("index")? as usize,
            params,
            emulation,
            workload,
            scheduler,
            crashes,
            recording,
            seed: num("seed")?,
        },
        provisioned_objects: num("provisioned")? as usize,
        resource_consumption: num("consumption")? as usize,
        covered: num("covered")? as usize,
        peak_covered: num("peak_covered")? as usize,
        peak_covered_server: num("peak_covered_server")? as usize,
        max_occupancy: num("occupancy")? as usize,
        point_contention: num("contention")? as usize,
        low_level_triggers: num("triggers")?,
        low_level_responses: num("responses")?,
        completed_ops: num("completed")? as usize,
        consistent,
        coverage: text("coverage")?,
        violation: opt_text("violation")?,
        error: opt_text("error")?,
    })
}

/// Parses the case results out of a report's [`crate::sweep::SweepReport::to_json`] text.
///
/// Round-trips exactly: `parse(report.to_json())` rebuilds results whose
/// re-serialization is byte-identical — the property the deterministic
/// merge rests on.
pub fn report_cases_from_json(json: &str, file: &Path) -> Result<Vec<CaseResult>, CampaignError> {
    let mut parser = JsonParser::new(json);
    let doc = parser.value().map_err(|reason| malformed(file, reason))?;
    let cases = doc
        .get("cases")
        .ok_or_else(|| malformed(file, "missing \"cases\" array"))?;
    let Json::Arr(items) = cases else {
        return Err(malformed(file, "\"cases\" is not an array"));
    };
    items.iter().map(|c| case_from_json(c, file)).collect()
}

/// Reads and validates one shard's report file: it must parse and must
/// cover exactly the shard's case range, in order.
pub fn load_shard_report(
    spool: &Path,
    range: ShardRange,
) -> Result<Vec<CaseResult>, CampaignError> {
    let path = shard_report_path(spool, range.index);
    let mut text = String::new();
    fs::File::open(&path)?.read_to_string(&mut text)?;
    let cases = report_cases_from_json(&text, &path)?;
    if cases.len() != range.len() {
        return Err(malformed(
            &path,
            format!(
                "shard holds {} cases, range needs {}",
                cases.len(),
                range.len()
            ),
        ));
    }
    for (offset, case) in cases.iter().enumerate() {
        if case.case.index != range.start + offset {
            return Err(malformed(
                &path,
                format!(
                    "case at position {offset} has index {}, expected {}",
                    case.case.index,
                    range.start + offset
                ),
            ));
        }
    }
    Ok(cases)
}

/// Deterministically merges every shard report in `spool` into the full
/// [`crate::sweep::SweepReport`], in case-index order.
///
/// The merge is a pure reassembly: results are slotted by case index, so
/// the output is byte-identical ([`crate::sweep::SweepReport::to_json`] /
/// [`crate::sweep::SweepReport::to_csv`]) to a single-process [`crate::sweep::run_sweep`] of the same
/// config, regardless of shard count or completion order.
///
/// # Errors
///
/// Fails if the spool is malformed or any case of the campaign's case
/// space has no result yet.
pub fn merge_shards(spool: &Path) -> Result<crate::sweep::SweepReport, CampaignError> {
    let manifest =
        ShardManifest::load(spool)?.ok_or_else(|| malformed(&manifest_path(spool), "missing"))?;
    let mut slots: Vec<Option<CaseResult>> = vec![None; manifest.case_count];
    for entry in &manifest.shards {
        for case in load_shard_report(spool, entry.range)? {
            let index = case.case.index;
            slots[index] = Some(case);
        }
    }
    let mut results = Vec::with_capacity(slots.len());
    for (i, slot) in slots.into_iter().enumerate() {
        results.push(slot.ok_or(CampaignError::IncompleteMerge { missing_index: i })?);
    }
    Ok(crate::sweep::SweepReport::from_results(results))
}

// --------------------------------------------------------------------------
// The coordinator
// --------------------------------------------------------------------------

/// How the coordinator executes shards.
#[derive(Clone, Debug)]
pub enum WorkerMode {
    /// Run shards inside the coordinator process, one at a time (each
    /// shard still uses the config's sweep thread pool). The zero-setup
    /// path used by `sweep_grid --shards`.
    InProcess,
    /// Spawn the given `campaign_worker` binary as a separate OS process
    /// per shard.
    Spawn(PathBuf),
}

/// Options of a campaign run.
#[derive(Clone, Debug)]
pub struct CampaignOptions {
    /// Spool directory holding the manifest, config and shard reports.
    pub spool: PathBuf,
    /// Number of shards to split the case space into (ignored when
    /// resuming: the existing manifest's plan wins).
    pub shards: usize,
    /// Maximum number of concurrently running worker processes.
    pub workers: usize,
    /// Attempt budget per shard before the campaign fails.
    pub max_attempts: u32,
    /// Sweep threads per worker (`0` = one per core).
    pub worker_threads: usize,
    /// How shards are executed.
    pub worker: WorkerMode,
    /// Stop after completing this many shards in *this* invocation,
    /// leaving the campaign resumable — deterministic stand-in for a
    /// mid-campaign kill, used by the resume tests and the CI smoke job.
    pub exit_after: Option<usize>,
    /// Suppress progress lines on stderr.
    pub quiet: bool,
}

impl CampaignOptions {
    /// Reasonable defaults: in-process workers, 4 shards, 2 at a time,
    /// 3 attempts.
    pub fn new(spool: impl Into<PathBuf>) -> Self {
        CampaignOptions {
            spool: spool.into(),
            shards: 4,
            workers: 2,
            max_attempts: 3,
            worker_threads: 0,
            worker: WorkerMode::InProcess,
            exit_after: None,
            quiet: false,
        }
    }
}

/// What a [`run_campaign`] invocation did.
#[derive(Debug)]
pub struct CampaignOutcome {
    /// The merged report — `Some` once every shard is done, `None` when
    /// the invocation stopped early ([`CampaignOptions::exit_after`]).
    pub report: Option<crate::sweep::SweepReport>,
    /// Total shards in the campaign.
    pub shards_total: usize,
    /// Shards executed by this invocation.
    pub shards_run: usize,
    /// Shards whose existing report was reused (resume).
    pub shards_reused: usize,
    /// Worker attempts that failed and were retried.
    pub retries: u32,
}

/// Reads a shard's `done total` progress file; zeroes when absent.
fn read_progress(spool: &Path, shard: usize) -> (usize, usize) {
    let Ok(text) = fs::read_to_string(shard_progress_path(spool, shard)) else {
        return (0, 0);
    };
    let mut parts = text.split_whitespace();
    let done = parts.next().and_then(|v| v.parse().ok()).unwrap_or(0);
    let total = parts.next().and_then(|v| v.parse().ok()).unwrap_or(0);
    (done, total)
}

struct ProgressPrinter {
    quiet: bool,
    last: String,
}

impl ProgressPrinter {
    fn emit(&mut self, line: String) {
        if self.quiet || line == self.last {
            return;
        }
        eprintln!("{line}");
        self.last = line;
    }
}

/// Runs (or resumes) a sharded campaign of `config` to completion:
/// initializes the spool, revalidates and reuses completed shards, executes
/// the incomplete ones — with a bounded retry budget and live progress on
/// stderr — and merges the shard reports into the final [`crate::sweep::SweepReport`].
///
/// # Errors
///
/// Fails on spool I/O or format errors, on a config mismatch with an
/// existing spool, or when a shard exhausts its attempt budget.
pub fn run_campaign(
    config: &SweepConfig,
    options: &CampaignOptions,
) -> Result<CampaignOutcome, CampaignError> {
    let spool = options.spool.as_path();
    let mut manifest = init_spool(spool, config, options.shards)?;

    // Revalidate shards marked done: a report that is missing or torn (the
    // worker was killed mid-campaign) sends its shard back to pending.
    let mut shards_reused = 0;
    for i in 0..manifest.shards.len() {
        if manifest.shards[i].status == ShardStatus::Done {
            if load_shard_report(spool, manifest.shards[i].range).is_ok() {
                shards_reused += 1;
            } else {
                manifest.shards[i].status = ShardStatus::Pending;
            }
        }
    }
    manifest.store(spool)?;

    let mut progress = ProgressPrinter {
        quiet: options.quiet,
        last: String::new(),
    };
    let pending: Vec<usize> = manifest.incomplete().map(|s| s.range.index).collect();
    let shards_total = manifest.shards.len();
    let budget = options.max_attempts.max(1);
    let mut shards_run = 0;
    let mut retries = 0;
    let exit_after = options.exit_after.unwrap_or(usize::MAX);

    match &options.worker {
        WorkerMode::InProcess => {
            for &shard in &pending {
                if shards_run >= exit_after {
                    break;
                }
                let range = manifest.shards[shard].range;
                // Same attempt budget as the spawn path; attempts are
                // persisted *before* each try so a coordinator killed
                // mid-shard resumes with the consumed attempt on record.
                loop {
                    manifest.shards[shard].attempts += 1;
                    manifest.store(spool)?;
                    match run_shard(spool, shard, options.worker_threads) {
                        Ok(_) => break,
                        Err(e) => {
                            retries += 1;
                            if manifest.shards[shard].attempts >= budget {
                                return Err(CampaignError::ShardFailed {
                                    shard,
                                    attempts: manifest.shards[shard].attempts,
                                    reason: e.to_string(),
                                });
                            }
                            progress.emit(format!(
                                "campaign: shard {shard} failed ({e}); retrying \
                                 (attempt {} of {budget})",
                                manifest.shards[shard].attempts + 1
                            ));
                        }
                    }
                }
                manifest.shards[shard].status = ShardStatus::Done;
                manifest.store(spool)?;
                shards_run += 1;
                let done = manifest
                    .shards
                    .iter()
                    .filter(|s| s.status == ShardStatus::Done)
                    .count();
                progress.emit(format!(
                    "campaign: shard {shard} done ({} cases); {done}/{shards_total} shards",
                    range.len()
                ));
            }
        }
        WorkerMode::Spawn(bin) => {
            let mut queue: std::collections::VecDeque<usize> = pending.iter().copied().collect();
            let mut running: Vec<(usize, Child)> = Vec::new();
            let kill_all = |running: &mut Vec<(usize, Child)>| {
                for (_, child) in running.iter_mut() {
                    let _ = child.kill();
                    let _ = child.wait();
                }
                running.clear();
            };
            loop {
                // Top up the worker pool. A spawn failure must not leak the
                // workers already running. In-flight workers are capped by
                // the remaining `exit_after` budget so a pause request can
                // never be overtaken by shards finishing in the same poll
                // window — `--exit-after N` pauses deterministically.
                while running.len() < options.workers.max(1)
                    && shards_run + running.len() < exit_after
                {
                    let Some(shard) = queue.pop_front() else {
                        break;
                    };
                    manifest.shards[shard].attempts += 1;
                    manifest.store(spool)?;
                    let mut command = Command::new(bin);
                    command
                        .arg("--spool")
                        .arg(spool)
                        .arg("--shard")
                        .arg(shard.to_string())
                        .arg("--threads")
                        .arg(options.worker_threads.to_string())
                        .stdin(Stdio::null())
                        .stdout(Stdio::null());
                    if options.quiet {
                        // Quiet coordinators silence their workers' progress
                        // chatter too (errors still reach stderr).
                        command.env("REGEMU_LOG", "off");
                    }
                    let spawned = command.spawn();
                    match spawned {
                        Ok(child) => running.push((shard, child)),
                        Err(e) => {
                            kill_all(&mut running);
                            return Err(CampaignError::ShardFailed {
                                shard,
                                attempts: manifest.shards[shard].attempts,
                                reason: format!("cannot spawn worker {}: {e}", bin.display()),
                            });
                        }
                    }
                }
                if running.is_empty() {
                    break;
                }

                std::thread::sleep(Duration::from_millis(30));

                // Reap finished workers. A fatal verdict is deferred until
                // every child has been kept or reaped, so no child can slip
                // past an early return and keep writing into the spool.
                let mut still_running: Vec<(usize, Child)> = Vec::new();
                let mut fatal: Option<CampaignError> = None;
                for (shard, mut child) in running.drain(..) {
                    if fatal.is_some() {
                        let _ = child.kill();
                        let _ = child.wait();
                        continue;
                    }
                    let verdict: Result<(), String> = match child.try_wait() {
                        Ok(None) => {
                            still_running.push((shard, child));
                            continue;
                        }
                        Ok(Some(status)) if status.success() => {
                            load_shard_report(spool, manifest.shards[shard].range)
                                .map(|_| ())
                                .map_err(|e| e.to_string())
                        }
                        Ok(Some(status)) => Err(format!("worker exited with {status}")),
                        Err(e) => {
                            // Unknown child state: kill it so a requeued
                            // shard can never have two concurrent writers.
                            let _ = child.kill();
                            let _ = child.wait();
                            Err(format!("cannot poll worker: {e}"))
                        }
                    };
                    match verdict {
                        Ok(()) => {
                            manifest.shards[shard].status = ShardStatus::Done;
                            // A store failure is fatal, but deferred like any
                            // other so the remaining children are reaped.
                            if let Err(e) = manifest.store(spool) {
                                fatal = Some(e);
                                continue;
                            }
                            shards_run += 1;
                        }
                        Err(reason) => {
                            retries += 1;
                            if manifest.shards[shard].attempts >= budget {
                                fatal = Some(CampaignError::ShardFailed {
                                    shard,
                                    attempts: manifest.shards[shard].attempts,
                                    reason,
                                });
                            } else {
                                progress.emit(format!(
                                    "campaign: shard {shard} failed ({reason}); retrying \
                                     (attempt {} of {budget})",
                                    manifest.shards[shard].attempts + 1
                                ));
                                queue.push_back(shard);
                            }
                        }
                    }
                }
                running = still_running;
                if let Some(e) = fatal {
                    kill_all(&mut running);
                    return Err(e);
                }

                // Stream progress: shard states plus live case counts.
                let done_shards = manifest
                    .shards
                    .iter()
                    .filter(|s| s.status == ShardStatus::Done)
                    .count();
                let mut cases_done: usize = manifest
                    .shards
                    .iter()
                    .filter(|s| s.status == ShardStatus::Done)
                    .map(|s| s.range.len())
                    .sum();
                for (shard, _) in &running {
                    cases_done += read_progress(spool, *shard).0;
                }
                progress.emit(format!(
                    "campaign: {done_shards}/{shards_total} shards, \
                     {cases_done}/{} cases, {} running",
                    manifest.case_count,
                    running.len()
                ));

                if shards_run >= exit_after {
                    kill_all(&mut running);
                    break;
                }
            }
        }
    }

    let report = if manifest.is_complete() {
        Some(merge_shards(spool)?)
    } else {
        None
    };
    Ok(CampaignOutcome {
        report,
        shards_total,
        shards_run,
        shards_reused,
        retries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::run_sweep;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("regemu-campaign-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn config_text_round_trips_and_fingerprints_ignore_threads() {
        let mut config = SweepConfig::standard();
        config.schedulers = SchedulerSpec::ALL.to_vec();
        config.crash_plans = CrashPlanSpec::ALL.to_vec();
        config.recordings = vec![
            RecordingModeSpec::Full,
            RecordingModeSpec::Digest,
            RecordingModeSpec::Ring(256),
        ];
        config.workloads.push(WorkloadSpec::ReadHeavy {
            writes: 3,
            reads_per_write: 2,
            readers: 2,
        });
        config
            .workloads
            .push(WorkloadSpec::ConcurrentReadWrite { rounds: 2 });
        let text = config_to_text(&config);
        let parsed = config_from_text(&text).unwrap();
        assert_eq!(config_to_text(&parsed), text);
        assert_eq!(parsed.case_count(), config.case_count());
        assert_eq!(parsed.cases(), config.cases());

        let mut threaded = config.clone();
        threaded.threads = 7;
        assert_eq!(config_fingerprint(&threaded), config_fingerprint(&config));
        let mut other = config;
        other.seeds.push(99);
        assert_ne!(config_fingerprint(&other), config_fingerprint(&threaded));
    }

    #[test]
    fn workload_labels_round_trip() {
        let specs = [
            WorkloadSpec::WriteSequential {
                rounds: 2,
                read_after_each: true,
            },
            WorkloadSpec::WriteSequential {
                rounds: 10,
                read_after_each: false,
            },
            WorkloadSpec::ReadHeavy {
                writes: 3,
                reads_per_write: 4,
                readers: 2,
            },
            WorkloadSpec::RandomMixed {
                readers: 2,
                total: 12,
                write_percent: 50,
            },
            WorkloadSpec::ConcurrentReadWrite { rounds: 3 },
        ];
        for spec in specs {
            assert_eq!(WorkloadSpec::from_label(&spec.label()), Some(spec));
        }
        assert_eq!(WorkloadSpec::from_label("nope"), None);
        assert_eq!(WorkloadSpec::from_label("write-seq/rX"), None);
    }

    #[test]
    fn shard_plans_partition_the_case_space() {
        for (count, shards) in [(24, 4), (7, 3), (5, 9), (1, 1), (0, 4), (100, 7)] {
            let plan = plan_shards(count, shards);
            assert_eq!(plan[0].start, 0);
            assert_eq!(plan.last().unwrap().end, count);
            for w in plan.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
            let lens: Vec<usize> = plan.iter().map(ShardRange::len).collect();
            let max = lens.iter().max().unwrap();
            let min = lens.iter().min().unwrap();
            assert!(max - min <= 1, "unbalanced plan {lens:?}");
            if count > 0 {
                assert!(plan.iter().all(|r| !r.is_empty()));
            }
        }
    }

    #[test]
    fn manifest_text_round_trips_and_rejects_corruption() {
        let config = SweepConfig::quick();
        let mut manifest = ShardManifest::plan(&config, 4);
        manifest.shards[1].status = ShardStatus::Done;
        manifest.shards[1].attempts = 2;
        let text = manifest.to_text();
        assert_eq!(ShardManifest::from_text(&text).unwrap(), manifest);
        assert!(ShardManifest::from_text("garbage").is_err());
        let truncated: String = text.lines().take(4).collect::<Vec<_>>().join("\n");
        assert!(ShardManifest::from_text(&truncated).is_err());
    }

    #[test]
    fn shard_reports_round_trip_through_json() {
        let mut config = SweepConfig::quick();
        config.grid.truncate(1);
        config.threads = 1;
        let report = run_sweep(&config);
        let json = report.to_json();
        let parsed = report_cases_from_json(&json, Path::new("test")).unwrap();
        let rebuilt = crate::sweep::SweepReport::from_results(parsed);
        assert_eq!(rebuilt, report);
        assert_eq!(rebuilt.to_json(), json);
        assert_eq!(rebuilt.to_csv(), report.to_csv());
    }

    #[test]
    fn in_process_campaign_matches_run_sweep_byte_for_byte() {
        let dir = tmp_dir("inproc");
        let mut config = SweepConfig::quick();
        config.threads = 2;
        let mut options = CampaignOptions::new(&dir);
        options.shards = 4;
        options.worker_threads = 2;
        options.quiet = true;
        let outcome = run_campaign(&config, &options).unwrap();
        assert_eq!(outcome.shards_run, 4);
        assert_eq!(outcome.shards_reused, 0);
        let merged = outcome.report.expect("campaign completed");
        let single = run_sweep(&config);
        assert_eq!(merged.to_json(), single.to_json());
        assert_eq!(merged.to_csv(), single.to_csv());

        // Running again is a pure resume: nothing re-runs.
        let again = run_campaign(&config, &options).unwrap();
        assert_eq!(again.shards_run, 0);
        assert_eq!(again.shards_reused, 4);
        assert_eq!(again.report.unwrap().to_json(), single.to_json());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn interrupted_campaigns_resume_from_the_manifest() {
        let dir = tmp_dir("resume");
        let mut config = SweepConfig::quick();
        config.threads = 1;
        let mut options = CampaignOptions::new(&dir);
        options.shards = 4;
        options.worker_threads = 1;
        options.quiet = true;
        options.exit_after = Some(2);
        let first = run_campaign(&config, &options).unwrap();
        assert!(first.report.is_none());
        assert_eq!(first.shards_run, 2);
        let manifest = ShardManifest::load(&dir).unwrap().unwrap();
        assert_eq!(manifest.incomplete().count(), 2);
        // A torn shard report (killed mid-write) must not count as done.
        fs::write(shard_report_path(&dir, 0), "{\"cases\": [").unwrap();
        options.exit_after = None;
        let second = run_campaign(&config, &options).unwrap();
        assert_eq!(second.shards_reused, 1, "shard 1 reused, shard 0 torn");
        assert_eq!(second.shards_run, 3, "two pending plus the torn one");
        let merged = second.report.expect("campaign completed");
        assert_eq!(merged.to_json(), run_sweep(&config).to_json());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn spools_reject_foreign_configs() {
        let dir = tmp_dir("mismatch");
        let config = SweepConfig::quick();
        init_spool(&dir, &config, 2).unwrap();
        let mut other = config;
        other.seeds = vec![1234];
        match init_spool(&dir, &other, 2) {
            Err(CampaignError::ConfigMismatch { .. }) => {}
            other => panic!("expected ConfigMismatch, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
