//! End-to-end fuzz-campaign processes: `fuzz_campaign replay` exit codes,
//! and real `fuzz_worker` processes spawned over a spool directory with
//! interruption, resume and retry — merging byte-identically to the
//! in-process campaign.
//!
//! Cargo builds the binaries for integration tests of this crate and
//! exposes their paths via `CARGO_BIN_EXE_*`.

use regemu_bounds::Params;
use regemu_core::FaultyKind;
use regemu_workloads::campaign::WorkerMode;
use regemu_workloads::fuzz::campaign::{
    run_fuzz_campaign, FuzzCampaignConfig, FuzzCampaignOptions,
};
use regemu_workloads::fuzz::{
    fuzz_and_shrink, FuzzCase, FuzzConfig, FuzzEmulation, RecordedSchedule,
};
use std::fs;
use std::path::PathBuf;
use std::process::Command;

fn spool_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("regemu-fuzz-process-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// `fuzz_campaign replay` is the triage entry point scripts build on, so its
/// exit codes are contract: `0` for a passing trace, `2` for a failing one,
/// `1` for a malformed file — and a malformed file must produce a
/// line-numbered parse error, never a panic.
#[test]
fn replay_exit_codes_are_contract() {
    let bin = env!("CARGO_BIN_EXE_fuzz_campaign");
    let dir = spool_dir("replay");
    fs::create_dir_all(&dir).unwrap();

    // A passing trace: the untouched seed case of a clean construction.
    let clean_config = FuzzConfig::new(Params::new(1, 1, 3).unwrap());
    let clean =
        RecordedSchedule::from_parts(&clean_config, &FuzzCase::seed_case(2, clean_config.seed));
    let clean_path = dir.join("clean.trace");
    fs::write(&clean_path, clean.to_text()).unwrap();
    let out = Command::new(bin)
        .args(["replay", clean_path.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "clean replay must exit 0");
    assert!(String::from_utf8_lossy(&out.stdout).contains("verdict pass"));

    // A failing trace: the shrunk repro of a seeded bug.
    let faulty_config = FuzzConfig::new(Params::new(1, 1, 3).unwrap())
        .emulation(FuzzEmulation::Faulty(FaultyKind::WeakQuorumWrite))
        .seed(61525)
        .budget(200)
        .stop_on_failure();
    let (_, shrunk) = fuzz_and_shrink(faulty_config);
    let failing_path = dir.join("failing.trace");
    fs::write(&failing_path, shrunk.unwrap().trace.to_text()).unwrap();
    let out = Command::new(bin)
        .args(["replay", failing_path.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "failing replay must exit 2");

    // Malformed traces: exit 1 with a line-numbered error, never a panic.
    let mangled = clean.to_text().replace("decisions", "decisionz");
    let bad_path = dir.join("bad.trace");
    fs::write(&bad_path, mangled).unwrap();
    for path in [bad_path.to_str().unwrap(), "/nonexistent/trace.file"] {
        let out = Command::new(bin).args(["replay", path]).output().unwrap();
        assert_eq!(out.status.code(), Some(1), "malformed replay must exit 1");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            !stderr.contains("panicked"),
            "replay must fail gracefully: {stderr}"
        );
    }
    let stderr_of_bad = Command::new(bin)
        .args(["replay", bad_path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        String::from_utf8_lossy(&stderr_of_bad.stderr).contains("line "),
        "parse errors must carry a line number"
    );
    let _ = fs::remove_dir_all(&dir);
}

/// One sequential test running the whole multi-process fuzz story (the
/// failure hook is an env var inherited by children, so the stages must not
/// run concurrently): spawned workers, kill + resume, injected retry.
#[test]
fn multi_process_fuzz_campaign_is_byte_identical_resumable_and_retries() {
    let worker = PathBuf::from(env!("CARGO_BIN_EXE_fuzz_worker"));
    let config = FuzzCampaignConfig::new(
        FuzzConfig::new(Params::new(1, 1, 3).unwrap())
            .emulation(FuzzEmulation::Faulty(FaultyKind::DroppedAcks))
            .budget(24),
    )
    .streams(4)
    .generations(2);

    // The in-process single-shard run is the reference artifact.
    let reference = {
        let dir = spool_dir("reference");
        let options = FuzzCampaignOptions {
            shards: 1,
            quiet: true,
            ..FuzzCampaignOptions::new(&dir)
        };
        let report = run_fuzz_campaign(&config, &options)
            .unwrap()
            .report
            .expect("reference campaign completes");
        assert!(report.found(), "the seeded liveness bug must be caught");
        let artifact = (report.to_text(), report.failures_text());
        let _ = fs::remove_dir_all(&dir);
        artifact
    };

    // --- 4 shards, 2 concurrent worker processes -------------------------
    let dir = spool_dir("spawn");
    let mut options = FuzzCampaignOptions {
        shards: 4,
        workers: 2,
        worker: WorkerMode::Spawn(worker.clone()),
        quiet: true,
        ..FuzzCampaignOptions::new(&dir)
    };
    let outcome = run_fuzz_campaign(&config, &options).unwrap();
    assert_eq!(outcome.units_run, 8);
    let report = outcome.report.expect("spawned campaign completes");
    assert_eq!(report.to_text(), reference.0);
    assert_eq!(report.failures_text(), reference.1);
    let _ = fs::remove_dir_all(&dir);

    // --- killed mid-campaign, then resumed -------------------------------
    let dir = spool_dir("resume");
    options.spool = dir.clone();
    options.exit_after = Some(3);
    let first = run_fuzz_campaign(&config, &options).unwrap();
    assert!(first.report.is_none());
    assert!(first.units_run >= 3);
    options.exit_after = None;
    let second = run_fuzz_campaign(&config, &options).unwrap();
    assert_eq!(second.units_run + second.units_reused, 8);
    assert!(second.units_reused >= 3, "completed units must be reused");
    let report = second.report.expect("campaign completes after resume");
    assert_eq!(report.to_text(), reference.0);
    assert_eq!(report.failures_text(), reference.1);
    let _ = fs::remove_dir_all(&dir);

    // --- a worker that dies once is retried within the budget ------------
    let dir = spool_dir("retry");
    let marker = dir.join("fail-once.marker");
    options.spool = dir.clone();
    options.workers = 1;
    options.max_attempts = 3;
    std::env::set_var("REGEMU_WORKER_FAIL_ONCE", &marker);
    let outcome = run_fuzz_campaign(&config, &options);
    std::env::remove_var("REGEMU_WORKER_FAIL_ONCE");
    let outcome = outcome.unwrap();
    assert_eq!(outcome.retries, 1, "exactly one injected failure");
    let report = outcome
        .report
        .expect("campaign completes despite the crash");
    assert_eq!(report.to_text(), reference.0);
    let _ = fs::remove_dir_all(&dir);

    // --- a worker that always fails exhausts the attempt budget ----------
    let dir = spool_dir("exhaust");
    options.spool = dir.clone();
    options.max_attempts = 2;
    options.worker = WorkerMode::Spawn(PathBuf::from("/nonexistent/fuzz_worker"));
    match run_fuzz_campaign(&config, &options) {
        Err(e) => assert!(e.to_string().contains("shard"), "{e}"),
        Ok(_) => panic!("campaign with an unspawnable worker must fail"),
    }
    let _ = fs::remove_dir_all(&dir);
}
