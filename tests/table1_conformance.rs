//! Integration test: the measured space consumption of every implemented
//! emulation conforms to Table 1 of the paper, over a sweep of `(k, f, n)`.

use regemu::prelude::*;

/// Runs a write-sequential workload (every writer writes once, one read after
/// each write) through a [`Scenario`] and returns the measured resource
/// consumption.
fn measure(kind: EmulationKind, params: Params, seed: u64) -> usize {
    let report = Scenario::new(params)
        .emulation(kind)
        .workload(WorkloadSpec::WriteSequential {
            rounds: 1,
            read_after_each: true,
        })
        .check(ConsistencyCheck::WsRegular)
        .seed(seed)
        .run()
        .expect("workload must complete");
    assert!(
        report.is_consistent(),
        "{kind} at {params} violated WS-Regularity: {:?}",
        report.check_violation
    );
    report.metrics.resource_consumption()
}

#[test]
fn max_register_and_cas_emulations_use_2f_plus_1_objects() {
    for params in small_sweep() {
        assert_eq!(
            measure(EmulationKind::AbdMaxRegister, params, 1),
            max_register_bound(params.f),
            "{params}"
        );
        assert_eq!(
            measure(EmulationKind::AbdCas, params, 2),
            cas_bound(params.f),
            "{params}"
        );
    }
}

#[test]
fn space_optimal_construction_matches_theorem_3_and_respects_theorem_1() {
    for params in small_sweep() {
        let consumption = measure(EmulationKind::SpaceOptimal, params, 3);
        assert_eq!(consumption, register_upper_bound(params), "{params}");
        assert!(consumption >= register_lower_bound(params), "{params}");
        // Provisioning matches consumption: the construction has no unused
        // registers.
        let emulation = SpaceOptimalEmulation::new(params);
        assert_eq!(emulation.base_object_count(), consumption, "{params}");
    }
}

#[test]
fn register_emulations_are_separated_from_rmw_emulations_for_k_above_1() {
    // The headline separation of the paper: the space cost of register-based
    // emulations grows with k, the RMW-based ones stay at 2f + 1.
    for params in small_sweep().into_iter().filter(|p| p.k > 1) {
        let register_cost = SpaceOptimalEmulation::new(params).base_object_count();
        let rmw_cost = AbdMaxRegisterEmulation::new(params, false).base_object_count();
        assert!(
            register_cost > rmw_cost,
            "expected separation at {params}: {register_cost} vs {rmw_cost}"
        );
    }
}

#[test]
fn bounds_coincide_at_the_two_special_cases_and_measurements_agree() {
    // n = 2f + 1 and n ≥ kf + f + 1 are the cases where the paper's bounds
    // are tight; the implementation hits them exactly.
    for (k, f) in [(2usize, 1usize), (3, 1), (2, 2)] {
        let minimal = Params::new(k, f, 2 * f + 1).unwrap();
        assert!(minimal.bounds_coincide());
        let consumption = measure(EmulationKind::SpaceOptimal, minimal, 7);
        assert_eq!(consumption, (2 * f + 1) * k);

        let saturated = Params::new(k, f, k * f + f + 1).unwrap();
        assert!(saturated.bounds_coincide());
        let consumption = measure(EmulationKind::SpaceOptimal, saturated, 8);
        assert_eq!(consumption, k * f + f + 1);
    }
}

#[test]
fn register_bank_construction_uses_k_registers_per_server() {
    for params in small_sweep().into_iter().filter(|p| p.n == 2 * p.f + 1) {
        let emulation = RegisterBankEmulation::new(params, false);
        assert_eq!(emulation.base_object_count(), params.n * params.k);
        let consumption = measure(EmulationKind::RegisterBank, params, 4);
        // The ABD phases read every bank register, so consumption equals the
        // provisioned (2f+1)·k — the special-case matching upper bound.
        assert_eq!(consumption, (2 * params.f + 1) * params.k, "{params}");
    }
}

#[test]
fn all_emulations_tolerate_exactly_f_crashes() {
    let params = Params::new(2, 1, 4).unwrap();
    for kind in EmulationKind::ALL {
        // Crash one server early in the run.
        let plan = CrashPlan::none().crash_at(3, ServerId::new(params.n - 1));
        let report = Scenario::new(params)
            .emulation(kind)
            .workload(WorkloadSpec::WriteSequential {
                rounds: 2,
                read_after_each: true,
            })
            .crash_plan(plan)
            .check(ConsistencyCheck::WsRegular)
            .seed(5)
            .run()
            .expect("an f-tolerant emulation must survive f crashes");
        assert!(report.is_consistent(), "{kind}");
        assert_eq!(report.completed_ops, 2 * params.k * 2);
    }
}
