//! End-to-end multi-process campaign: real `campaign_worker` processes
//! spawned over a spool directory, interrupted mid-campaign, retried after
//! an injected worker crash — and the merged report stays byte-identical
//! to the single-process sweep.
//!
//! Cargo builds the worker binary for integration tests of this crate and
//! exposes its path via `CARGO_BIN_EXE_campaign_worker`.

use regemu_workloads::campaign::{run_campaign, CampaignOptions, ShardManifest, WorkerMode};
use regemu_workloads::{run_sweep, SweepConfig};
use std::fs;
use std::path::PathBuf;

fn worker_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_campaign_worker"))
}

fn spool_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "regemu-campaign-process-{tag}-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn quick_config() -> SweepConfig {
    let mut config = SweepConfig::quick();
    config.threads = 1;
    config
}

/// One sequential test running the whole multi-process story: spawning,
/// interruption + resume, and worker-failure retries share the process
/// environment (the failure hook is an env var inherited by children), so
/// they must not run concurrently with each other.
#[test]
fn multi_process_campaign_is_byte_identical_resumable_and_retries() {
    let config = quick_config();
    let single = run_sweep(&config);

    // --- 4 shards, 2 concurrent worker processes -------------------------
    let dir = spool_dir("spawn");
    let mut options = CampaignOptions::new(&dir);
    options.shards = 4;
    options.workers = 2;
    options.worker_threads = 1;
    options.worker = WorkerMode::Spawn(worker_bin());
    options.quiet = true;
    let outcome = run_campaign(&config, &options).unwrap();
    assert_eq!(outcome.shards_run, 4);
    let merged = outcome.report.expect("campaign completed");
    assert_eq!(merged.to_json(), single.to_json());
    assert_eq!(merged.to_csv(), single.to_csv());
    let _ = fs::remove_dir_all(&dir);

    // --- killed mid-campaign, then resumed -------------------------------
    let dir = spool_dir("resume");
    options.spool = dir.clone();
    options.exit_after = Some(2);
    let first = run_campaign(&config, &options).unwrap();
    assert!(first.report.is_none());
    assert!(first.shards_run >= 2);
    let manifest = ShardManifest::load(&dir).unwrap().unwrap();
    assert!(manifest.incomplete().count() <= 2);
    options.exit_after = None;
    let second = run_campaign(&config, &options).unwrap();
    assert_eq!(second.shards_run + second.shards_reused, 4);
    assert!(second.shards_reused >= 2, "completed shards must be reused");
    let merged = second.report.expect("campaign completed after resume");
    assert_eq!(merged.to_json(), single.to_json());
    let _ = fs::remove_dir_all(&dir);

    // --- a worker that dies once is retried within the budget ------------
    let dir = spool_dir("retry");
    let marker = dir.join("fail-once.marker");
    options.spool = dir.clone();
    options.workers = 1;
    options.max_attempts = 3;
    std::env::set_var("REGEMU_WORKER_FAIL_ONCE", &marker);
    let outcome = run_campaign(&config, &options);
    std::env::remove_var("REGEMU_WORKER_FAIL_ONCE");
    let outcome = outcome.unwrap();
    assert_eq!(outcome.retries, 1, "exactly one injected failure");
    let merged = outcome
        .report
        .expect("campaign completed despite the crash");
    assert_eq!(merged.to_json(), single.to_json());
    let _ = fs::remove_dir_all(&dir);

    // --- a worker that always fails exhausts the attempt budget ----------
    let dir = spool_dir("exhaust");
    options.spool = dir.clone();
    options.max_attempts = 2;
    options.worker = WorkerMode::Spawn(PathBuf::from("/nonexistent/campaign_worker"));
    match run_campaign(&config, &options) {
        Err(e) => assert!(e.to_string().contains("shard"), "{e}"),
        Ok(_) => panic!("campaign with an unspawnable worker must fail"),
    }
    let _ = fs::remove_dir_all(&dir);
}
