//! Experiment runner: execute a workload against an emulation and measure it.
//!
//! The run pipeline lives in [`crate::scenario`] — a [`crate::Scenario`] is
//! the one typed value that fully determines a run (emulation, workload,
//! scheduler, crashes, check, seed). This module keeps the pieces that are
//! shared with it ([`ConsistencyCheck`], [`RunReport`]) plus the deprecated
//! [`run_workload`] entry point, which is now a thin shim over the same
//! engine.

use crate::generator::Workload;
use regemu_bounds::Params;
use regemu_core::Emulation;
use regemu_fpsm::{CrashPlan, FairDriver, RunMetrics, SimError};
use regemu_spec::{HighHistory, Violation};
use serde::{Deserialize, Serialize};

/// Which consistency condition to verify after the run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConsistencyCheck {
    /// Do not check.
    None,
    /// Write-Sequential Safety.
    WsSafe,
    /// Write-Sequential Regularity (the guarantee of the paper's upper
    /// bounds).
    WsRegular,
    /// Atomicity (linearizability).
    Atomic,
}

/// Configuration of one experiment run.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Seed of the fair scheduler.
    pub seed: u64,
    /// Servers to crash, and when.
    pub crash_plan: CrashPlan,
    /// Per-operation step budget before the run is declared stuck.
    pub max_steps_per_op: u64,
    /// Consistency condition to verify at the end.
    pub check: ConsistencyCheck,
    /// Whether to keep delivering outstanding low-level operations after the
    /// last high-level operation completed (a "drain" phase).
    pub drain: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            seed: 0xC0FFEE,
            crash_plan: CrashPlan::none(),
            max_steps_per_op: 100_000,
            check: ConsistencyCheck::WsRegular,
            drain: false,
        }
    }
}

impl RunConfig {
    /// A configuration with the given scheduler seed.
    pub fn with_seed(seed: u64) -> Self {
        RunConfig {
            seed,
            ..Default::default()
        }
    }

    /// Sets the crash plan.
    pub fn crash_plan(mut self, plan: CrashPlan) -> Self {
        self.crash_plan = plan;
        self
    }

    /// Sets the consistency check.
    pub fn check(mut self, check: ConsistencyCheck) -> Self {
        self.check = check;
        self
    }

    /// Enables the drain phase.
    pub fn drain(mut self) -> Self {
        self.drain = true;
        self
    }
}

/// The measured outcome of one experiment run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Name of the emulation that was exercised.
    pub emulation: String,
    /// Name of the scheduler that drove the run.
    pub scheduler: String,
    /// Its `(k, f, n)` parameters.
    pub params: Params,
    /// Number of base objects the emulation provisioned.
    pub provisioned_objects: usize,
    /// Space metrics of the run (resource consumption, coverage, …).
    pub metrics: RunMetrics,
    /// Number of high-level operations that completed.
    pub completed_ops: usize,
    /// Verdict of the consistency check, if one was requested.
    pub check_violation: Option<Violation>,
    /// The high-level schedule of the run (for further analysis).
    pub history: HighHistory,
}

impl RunReport {
    /// Returns `true` when the requested consistency check passed (or none
    /// was requested).
    pub fn is_consistent(&self) -> bool {
        self.check_violation.is_none()
    }
}

/// Runs `workload` against `emulation` under `config`.
///
/// Kept for one release as a thin shim over the [`crate::scenario`] engine:
/// a [`crate::Scenario`] value (or [`crate::scenario::drive`] for custom
/// emulation instances and schedulers) expresses everything this entry point
/// did, plus pluggable schedulers and incremental stepping. The produced
/// histories are byte-identical to the pre-`Scenario` runner for the same
/// seeds — pinned by the golden-trace suite.
///
/// # Errors
///
/// Returns a [`SimError`] if some operation cannot complete within the step
/// budget (e.g. because the crash plan exceeds what the emulation tolerates).
#[deprecated(
    since = "0.2.0",
    note = "compose a `Scenario` (or use `scenario::drive` for a custom emulation \
            instance or scheduler) instead"
)]
pub fn run_workload(
    emulation: &dyn Emulation,
    workload: &Workload,
    config: &RunConfig,
) -> Result<RunReport, SimError> {
    let mut scheduler = FairDriver::new(config.seed).with_crash_plan(config.crash_plan.clone());
    crate::scenario::drive(
        emulation,
        workload,
        &mut scheduler,
        config.check,
        config.max_steps_per_op,
        config.drain,
    )
}

// The deprecated shim keeps its original test suite: these tests prove the
// shim still behaves exactly like the old entry point.
#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use regemu_core::{all_emulations, AbdMaxRegisterEmulation, SpaceOptimalEmulation};
    use regemu_fpsm::ServerId;

    fn params(k: usize, f: usize, n: usize) -> Params {
        Params::new(k, f, n).unwrap()
    }

    #[test]
    fn write_sequential_runs_are_ws_regular_for_every_emulation() {
        let p = params(2, 1, 4);
        let workload = Workload::write_sequential(2, 2, true);
        for emulation in all_emulations(p) {
            let report = run_workload(
                emulation.as_ref(),
                &workload,
                &RunConfig::with_seed(11).check(ConsistencyCheck::WsRegular),
            )
            .unwrap();
            assert!(
                report.is_consistent(),
                "{}: {:?}",
                report.emulation,
                report.check_violation
            );
            assert_eq!(report.completed_ops, workload.len());
            assert!(report.metrics.resource_consumption() <= report.provisioned_objects);
        }
    }

    #[test]
    fn runs_survive_f_crashes_from_the_plan() {
        let p = params(2, 1, 4);
        let workload = Workload::write_sequential(2, 2, true);
        let plan = CrashPlan::none().crash_at(5, ServerId::new(3));
        for emulation in all_emulations(p) {
            let report = run_workload(
                emulation.as_ref(),
                &workload,
                &RunConfig::with_seed(3)
                    .crash_plan(plan.clone())
                    .check(ConsistencyCheck::WsRegular),
            )
            .unwrap();
            assert!(
                report.is_consistent(),
                "{}: {:?}",
                report.emulation,
                report.check_violation
            );
        }
    }

    #[test]
    fn concurrent_reads_are_regular_for_the_space_optimal_construction() {
        let p = params(2, 1, 4);
        let emulation = SpaceOptimalEmulation::new(p);
        let workload = Workload::concurrent_read_write(2, 2);
        let report = run_workload(
            &emulation,
            &workload,
            &RunConfig::with_seed(19)
                .check(ConsistencyCheck::WsRegular)
                .drain(),
        )
        .unwrap();
        assert!(report.is_consistent(), "{:?}", report.check_violation);
        assert_eq!(report.completed_ops, workload.len());
    }

    #[test]
    fn atomic_abd_variant_is_linearizable_under_mixed_workloads() {
        let p = params(2, 1, 3);
        let emulation = AbdMaxRegisterEmulation::new(p, true);
        let workload = Workload::random_mixed(2, 2, 14, 0.5, 21);
        let report = run_workload(
            &emulation,
            &workload,
            &RunConfig::with_seed(23).check(ConsistencyCheck::Atomic),
        )
        .unwrap();
        assert!(report.is_consistent(), "{:?}", report.check_violation);
    }

    #[test]
    fn read_heavy_workloads_scale_readers_without_extra_space() {
        // Readers never write in the WS-Regular constructions, so piling on
        // readers does not change the resource consumption — the reason the
        // paper can state its bounds independently of the number of readers.
        let p = params(2, 1, 4);
        let emulation = SpaceOptimalEmulation::new(p);
        let few_readers = Workload::read_heavy(p.k, 2, 1, 1);
        let many_readers = Workload::read_heavy(p.k, 2, 6, 3);
        let a = run_workload(&emulation, &few_readers, &RunConfig::with_seed(31)).unwrap();
        let b = run_workload(&emulation, &many_readers, &RunConfig::with_seed(32)).unwrap();
        assert!(a.is_consistent() && b.is_consistent());
        assert_eq!(
            a.metrics.resource_consumption(),
            b.metrics.resource_consumption()
        );
        assert!(b.metrics.written.len() <= a.provisioned_objects);
        assert_eq!(b.completed_ops, many_readers.len());
    }

    #[test]
    fn resource_consumption_is_reported_per_emulation() {
        let p = params(3, 1, 5);
        let workload = Workload::write_sequential(3, 1, false);
        let space_optimal = SpaceOptimalEmulation::new(p);
        let report = run_workload(&space_optimal, &workload, &RunConfig::default()).unwrap();
        // The writers only touch their own register sets plus whatever the
        // collect reads, which is the full layout: consumption equals the
        // provisioned count (= Theorem 3 formula).
        assert_eq!(
            report.metrics.resource_consumption(),
            report.provisioned_objects
        );
        assert_eq!(
            report.provisioned_objects,
            regemu_bounds::register_upper_bound(p)
        );
    }
}
