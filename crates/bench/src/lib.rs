//! # regemu-bench — experiment harness
//!
//! Library backing the experiment binaries (`src/bin/*`) and Criterion
//! benches (`benches/*`) that regenerate every table and figure of Chockler &
//! Spiegelman (PODC 2017). Each public function in [`experiments`] produces
//! the data behind one artifact of the paper; the binaries only print it.
//!
//! | paper artifact | function | binary |
//! |---|---|---|
//! | Table 1 | [`experiments::table1`] | `table1` |
//! | Figure 1 | [`experiments::figure1`] | `figure1` |
//! | Figure 2 / Lemma 1 / Theorem 1 | [`experiments::figure2_coverage`] | `figure2_coverage` |
//! | Theorem 2 | [`experiments::theorem2_max_register`] | `theorem2_maxreg` |
//! | Theorem 5 | [`experiments::theorem5_partition`] | `theorem5_partition` |
//! | Theorem 6 | [`experiments::theorem6_per_server`] | `theorem6_per_server` |
//! | Theorem 7 | [`experiments::theorem7_bounded_storage`] | `theorem7_bounded_storage` |
//! | Theorem 8 | [`experiments::theorem8_contention`] | `theorem8_contention` |
//! | §5 time/space trade-off | [`experiments::cas_time_complexity`] | `cas_time_complexity` |
//!
//! Beyond the per-artifact binaries, `sweep_grid` runs the parallel
//! deterministic sweep harness ([`regemu_workloads::sweep`]) over a whole
//! `(k, f, n) × emulation × workload × seed` grid and serializes the
//! aggregated report to JSON/CSV — see the README's "Performance" section
//! for the quickstart. The Criterion benches under `benches/` track the
//! simulator's hot paths (`sim_engine`), the emulation protocols
//! (`emulation_ops`), and the shared-memory and adversary layers; run them
//! with `cargo bench -p regemu-bench`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// Shared CLI parsing for the live-service binaries (`serve_node`,
/// `serve_client`, `load_gen`, `serve_conform`): `k/f/n` parameter points,
/// comma-separated server lists, and address files written by `serve_node`
/// and polled by the clients.
pub mod serve_cli {
    use regemu_bounds::Params;
    use std::net::SocketAddr;
    use std::path::Path;
    use std::time::{Duration, Instant};

    /// Parses a `K/F/N` parameter point (e.g. `4/1/3`).
    pub fn parse_params(value: &str) -> Result<Params, String> {
        let nums: Vec<usize> = value
            .split('/')
            .map(|s| {
                s.trim()
                    .parse()
                    .map_err(|_| format!("invalid parameter point {value:?}"))
            })
            .collect::<Result<_, _>>()?;
        let [k, f, n] = nums.as_slice() else {
            return Err(format!("parameter point {value:?} must be K/F/N"));
        };
        Params::new(*k, *f, *n).map_err(|e| format!("invalid parameter point {value:?}: {e}"))
    }

    /// Parses a comma-separated list of server indices (e.g. `1,2`).
    pub fn parse_server_list(value: &str) -> Result<Vec<usize>, String> {
        value
            .split(',')
            .filter(|s| !s.trim().is_empty())
            .map(|s| {
                s.trim()
                    .parse()
                    .map_err(|_| format!("invalid server index {s:?}"))
            })
            .collect()
    }

    /// Reads the socket address a `serve_node --addr-file` wrote, polling
    /// until the file appears and parses (the node may still be booting).
    pub fn wait_for_addr(path: &Path, timeout: Duration) -> Result<SocketAddr, String> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Ok(text) = std::fs::read_to_string(path) {
                if let Ok(addr) = text.trim().parse() {
                    return Ok(addr);
                }
            }
            if Instant::now() >= deadline {
                return Err(format!(
                    "no server address appeared in {} within {timeout:?}",
                    path.display()
                ));
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    /// Renders one server's [`regemu_core::wire::NodeStats`] as a
    /// single-line JSON object — the shape `serve_node --stats-every-ms`
    /// dumps periodically and `serve_client --stats` prints per scrape.
    pub fn node_stats_json(server: usize, stats: &regemu_core::wire::NodeStats) -> String {
        format!(
            "{{\"server\":{server},\"requests\":{},\"responses\":{},\"faults\":{},\
             \"in_flight\":{},\"applied\":{}}}",
            stats.requests, stats.responses, stats.faults, stats.in_flight, stats.applied
        )
    }

    /// Resolves `--addr`/`--addr-file` arguments (in server order) into
    /// socket addresses. `spec` holds either a literal address or an
    /// `@`-prefixed file path.
    pub fn resolve_addrs(specs: &[String], timeout: Duration) -> Result<Vec<SocketAddr>, String> {
        specs
            .iter()
            .map(|spec| {
                if let Some(file) = spec.strip_prefix('@') {
                    wait_for_addr(Path::new(file), timeout)
                } else {
                    spec.parse()
                        .map_err(|_| format!("invalid server address {spec:?}"))
                }
            })
            .collect()
    }
}

/// Shared CLI parsing for the sweep/campaign binaries (`sweep_grid`,
/// `campaign_coordinator`): the flags that shape a
/// [`regemu_workloads::SweepConfig`] are identical across them — plus the
/// leveled progress logging every experiment binary routes through.
pub mod cli {
    use regemu_bounds::Params;
    use regemu_workloads::{
        CrashPlanSpec, RecordingModeSpec, SchedulerSpec, SweepConfig, WorkloadSpec,
    };
    use std::sync::atomic::{AtomicU8, Ordering};
    use std::sync::Once;

    /// Verbosity of the binaries' stderr progress lines, lowest first.
    ///
    /// Results (tables, JSON reports) always print: the level only gates
    /// *progress* chatter, which is what the [`crate::info!`] and
    /// [`crate::debug!`] macros emit. Errors and usage messages are printed
    /// unconditionally with plain `eprintln!`.
    #[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
    pub enum LogLevel {
        /// No progress lines at all (`--quiet`, `REGEMU_LOG=off`).
        Off = 0,
        /// The default: one-line progress notes.
        Info = 1,
        /// Extra per-step detail (`REGEMU_LOG=debug`).
        Debug = 2,
    }

    impl LogLevel {
        fn from_name(name: &str) -> Option<LogLevel> {
            match name.trim() {
                "off" => Some(LogLevel::Off),
                "info" => Some(LogLevel::Info),
                "debug" => Some(LogLevel::Debug),
                _ => None,
            }
        }
    }

    static LEVEL: AtomicU8 = AtomicU8::new(LogLevel::Info as u8);
    static LEVEL_FROM_ENV: Once = Once::new();

    /// The current progress-log level. The first call reads `REGEMU_LOG`
    /// (`off`, `info` or `debug`); an unknown value is reported once and
    /// ignored.
    pub fn log_level() -> LogLevel {
        LEVEL_FROM_ENV.call_once(|| {
            if let Ok(value) = std::env::var("REGEMU_LOG") {
                match LogLevel::from_name(&value) {
                    Some(level) => LEVEL.store(level as u8, Ordering::Relaxed),
                    None => eprintln!(
                        "ignoring unknown REGEMU_LOG value {value:?} (expected off, info or debug)"
                    ),
                }
            }
        });
        match LEVEL.load(Ordering::Relaxed) {
            0 => LogLevel::Off,
            2 => LogLevel::Debug,
            _ => LogLevel::Info,
        }
    }

    /// Overrides the progress-log level (flags beat the environment).
    pub fn set_log_level(level: LogLevel) {
        log_level(); // settle the env default first so it cannot clobber this
        LEVEL.store(level as u8, Ordering::Relaxed);
    }

    /// What `--quiet` does: silences progress lines entirely.
    pub fn set_quiet() {
        set_log_level(LogLevel::Off);
    }

    /// Incrementally collected sweep-config flags.
    ///
    /// Feed every CLI argument to [`ConfigFlags::accept`]; arguments it
    /// does not recognize belong to the binary. Finish with
    /// [`ConfigFlags::into_config`].
    #[derive(Default)]
    pub struct ConfigFlags {
        quick: bool,
        crash_f: bool,
        threads: Option<usize>,
        seeds: Option<Vec<u64>>,
        grid: Option<Vec<Params>>,
        workloads: Option<Vec<WorkloadSpec>>,
        schedulers: Option<Vec<SchedulerSpec>>,
        crash_plans: Option<Vec<CrashPlanSpec>>,
        recordings: Option<Vec<RecordingModeSpec>>,
    }

    /// The usage fragment documenting the flags [`ConfigFlags`] accepts.
    pub const CONFIG_USAGE: &str = "[--quick] [--threads N] [--seeds a,b,..] \
         [--grid k/f/n,k/f/n,..] [--workload label,label,..] \
         [--schedulers a,b,..] [--crash-plans a,b,..] [--crash-f] [--recording a,b,..]";

    impl ConfigFlags {
        /// Tries to consume `arg` (pulling values from `args` as needed).
        /// Returns `Ok(true)` when consumed, `Ok(false)` when the argument
        /// is not a config flag, and `Err` with a message on a malformed
        /// value.
        pub fn accept(
            &mut self,
            arg: &str,
            args: &mut impl Iterator<Item = String>,
        ) -> Result<bool, String> {
            let mut value = |flag: &str| args.next().ok_or(format!("{flag} needs a value"));
            match arg {
                "--quick" => self.quick = true,
                "--crash-f" => self.crash_f = true,
                "--threads" => {
                    let v = value("--threads")?;
                    self.threads = Some(
                        v.parse()
                            .map_err(|_| format!("invalid thread count {v:?}"))?,
                    );
                }
                "--seeds" => {
                    let v = value("--seeds")?;
                    let parsed: Vec<u64> = v
                        .split(',')
                        .map(|s| s.trim().parse().map_err(|_| format!("invalid seed {s:?}")))
                        .collect::<Result<_, _>>()?;
                    if parsed.is_empty() {
                        return Err("--seeds needs at least one seed".to_string());
                    }
                    self.seeds = Some(parsed);
                }
                "--grid" => {
                    let v = value("--grid")?;
                    let parsed: Vec<Params> = v
                        .split(',')
                        .map(|point| {
                            let nums: Vec<usize> = point
                                .trim()
                                .split('/')
                                .map(|s| {
                                    s.parse()
                                        .map_err(|_| format!("invalid grid point {point:?}"))
                                })
                                .collect::<Result<_, _>>()?;
                            let [k, f, n] = nums.as_slice() else {
                                return Err(format!(
                                    "grid point {point:?} must be k/f/n (e.g. 2/1/4)"
                                ));
                            };
                            Params::new(*k, *f, *n)
                                .map_err(|e| format!("invalid grid point {point:?}: {e}"))
                        })
                        .collect::<Result<_, _>>()?;
                    if parsed.is_empty() {
                        return Err("--grid needs at least one k/f/n point".to_string());
                    }
                    self.grid = Some(parsed);
                }
                "--workload" => {
                    let v = value("--workload")?;
                    let parsed: Vec<WorkloadSpec> = v
                        .split(',')
                        .map(|s| {
                            WorkloadSpec::from_label(s.trim())
                                .ok_or(format!("unknown workload {s:?}"))
                        })
                        .collect::<Result<_, _>>()?;
                    if parsed.is_empty() {
                        return Err("--workload needs at least one label".to_string());
                    }
                    self.workloads = Some(parsed);
                }
                "--schedulers" => {
                    let v = value("--schedulers")?;
                    let parsed: Vec<SchedulerSpec> = if v.trim() == "all" {
                        SchedulerSpec::ALL.to_vec()
                    } else {
                        v.split(',')
                            .map(|s| {
                                SchedulerSpec::from_name(s.trim())
                                    .ok_or(format!("unknown scheduler {s:?}"))
                            })
                            .collect::<Result<_, _>>()?
                    };
                    if parsed.is_empty() {
                        return Err("--schedulers needs at least one scheduler".to_string());
                    }
                    self.schedulers = Some(parsed);
                }
                "--crash-plans" => {
                    let v = value("--crash-plans")?;
                    let parsed: Vec<CrashPlanSpec> = if v.trim() == "all" {
                        CrashPlanSpec::ALL.to_vec()
                    } else {
                        v.split(',')
                            .map(|s| {
                                CrashPlanSpec::from_name(s.trim())
                                    .ok_or(format!("unknown crash plan {s:?}"))
                            })
                            .collect::<Result<_, _>>()?
                    };
                    if parsed.is_empty() {
                        return Err("--crash-plans needs at least one crash plan".to_string());
                    }
                    self.crash_plans = Some(parsed);
                }
                "--recording" => {
                    let v = value("--recording")?;
                    let parsed: Vec<RecordingModeSpec> = v
                        .split(',')
                        .map(|s| {
                            RecordingModeSpec::from_label(s.trim()).ok_or(format!(
                                "unknown recording mode {s:?} (expected full, digest or ring:N)"
                            ))
                        })
                        .collect::<Result<_, _>>()?;
                    if parsed.is_empty() {
                        return Err("--recording needs at least one mode".to_string());
                    }
                    self.recordings = Some(parsed);
                }
                _ => return Ok(false),
            }
            Ok(true)
        }

        /// The `--threads` value, if one was passed — binaries whose worker
        /// model is not "one thread pool in this process" (the campaign
        /// coordinator) repurpose it rather than silently dropping it.
        pub fn threads(&self) -> Option<usize> {
            self.threads
        }

        /// Builds the sweep config the collected flags describe (the
        /// standard grid unless `--quick`, with every override applied).
        pub fn into_config(self) -> Result<SweepConfig, String> {
            let mut config = if self.quick {
                SweepConfig::quick()
            } else {
                SweepConfig::standard()
            };
            if let Some(threads) = self.threads {
                config.threads = threads;
            }
            if let Some(seeds) = self.seeds {
                config.seeds = seeds;
            }
            if let Some(grid) = self.grid {
                config.grid = grid;
            }
            if let Some(workloads) = self.workloads {
                config.workloads = workloads;
            }
            if let Some(schedulers) = self.schedulers {
                config.schedulers = schedulers;
            }
            if let Some(recordings) = self.recordings {
                config.recordings = recordings;
            }
            match (self.crash_plans, self.crash_f) {
                (Some(_), true) => {
                    return Err("--crash-f conflicts with --crash-plans; pass one of them".into())
                }
                (Some(crash_plans), false) => config.crash_plans = crash_plans,
                (None, true) => config.crash_plans = vec![CrashPlanSpec::CrashF],
                (None, false) => {}
            }
            Ok(config)
        }
    }

    /// Writes `payload` to `target` (`-` for stdout), exiting the process
    /// with an error message on failure.
    pub fn write_output(target: &str, payload: &str, what: &str) {
        if target == "-" {
            print!("{payload}");
        } else if let Err(e) = std::fs::write(target, payload) {
            eprintln!("cannot write {what} to {target}: {e}");
            std::process::exit(1);
        } else {
            crate::info!("wrote {what} to {target}");
        }
    }
}

/// Logs a progress line to stderr unless the level ([`cli::log_level`]) is
/// [`cli::LogLevel::Off`]. Same syntax as `eprintln!`.
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        if $crate::cli::log_level() >= $crate::cli::LogLevel::Info {
            eprintln!($($arg)*);
        }
    };
}

/// Logs a detail line to stderr only at [`cli::LogLevel::Debug`]
/// (`REGEMU_LOG=debug`). Same syntax as `eprintln!`.
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        if $crate::cli::log_level() >= $crate::cli::LogLevel::Debug {
            eprintln!($($arg)*);
        }
    };
}

/// Experiment implementations, one per table/figure/theorem of the paper.
pub mod experiments {
    use regemu_adversary::{demonstrate_partition, LowerBoundCampaign};
    use regemu_bounds::{
        cas_bound, max_register_bound, max_register_from_registers_lower_bound,
        register_lower_bound, register_upper_bound, servers_needed_with_bounded_storage, Params,
    };
    use regemu_core::{
        AbdMaxRegisterEmulation, CasMaxRegister, CollectMaxRegister, EmulationKind, RegisterLayout,
        SharedMaxRegister, SpaceOptimalEmulation,
    };
    use regemu_workloads::{ConsistencyCheck, Scenario, TextTable, WorkloadSpec};
    use std::sync::Arc;

    /// Measures the resource consumption of the `kind` construction on a
    /// write-sequential workload (one write per writer, one read after
    /// each), verifying WS-Regularity along the way.
    pub fn measured_consumption(kind: EmulationKind, params: Params, seed: u64) -> usize {
        let report = Scenario::new(params)
            .emulation(kind)
            .workload(WorkloadSpec::WriteSequential {
                rounds: 1,
                read_after_each: true,
            })
            .check(ConsistencyCheck::WsRegular)
            .seed(seed)
            .run()
            .expect("experiment workload must complete");
        assert!(
            report.is_consistent(),
            "{} at {} violated WS-Regularity",
            kind,
            params
        );
        report.metrics.resource_consumption()
    }

    /// **Table 1.** For every parameter point of `sweep`: the paper's lower
    /// and upper bounds per base-object type, next to the *measured* resource
    /// consumption of the corresponding implementation.
    pub fn table1(sweep: &[Params]) -> TextTable {
        let mut table = TextTable::new(
            "Table 1 — base objects used by f-tolerant k-register emulations (paper bound vs measured)",
            &[
                "k", "f", "n",
                "max-reg bound", "max-reg measured",
                "CAS bound", "CAS measured",
                "reg lower", "reg upper", "reg measured (Alg.2)",
            ],
        );
        for p in sweep {
            let p = *p;
            table.push_row([
                p.k.to_string(),
                p.f.to_string(),
                p.n.to_string(),
                max_register_bound(p.f).to_string(),
                measured_consumption(EmulationKind::AbdMaxRegister, p, 1).to_string(),
                cas_bound(p.f).to_string(),
                measured_consumption(EmulationKind::AbdCas, p, 2).to_string(),
                register_lower_bound(p).to_string(),
                register_upper_bound(p).to_string(),
                measured_consumption(EmulationKind::SpaceOptimal, p, 3).to_string(),
            ]);
        }
        table
    }

    /// **Figure 1.** The register→server layout of the space-optimal
    /// construction (defaults to the paper's `n = 6, k = 5, f = 2`).
    pub fn figure1(params: Params) -> String {
        let (_, layout) = RegisterLayout::build(params);
        layout.render()
    }

    /// **Figure 2 / Lemma 1 / Theorem 1.** Coverage growth under the `Ad_i`
    /// adversary: per adversary-driven write, the number of covered registers
    /// for the register-based construction versus the max-register baseline.
    pub fn figure2_coverage(params: Params) -> TextTable {
        let space_optimal = SpaceOptimalEmulation::new(params);
        let abd = AbdMaxRegisterEmulation::new(params, false);
        let register_report = LowerBoundCampaign::new(&space_optimal)
            .run(&space_optimal)
            .expect("campaign against Algorithm 2");
        let rmw_report = LowerBoundCampaign::new(&abd)
            .run(&abd)
            .expect("campaign against ABD");

        let mut table = TextTable::new(
            format!(
                "Figure 2 / Lemma 1 — covered registers after the i-th adversarial write ({params}, F = {:?})",
                register_report.protected
            ),
            &["write #", "i*f (Lemma 1a)", "covered (Alg.2 / registers)", "covered (ABD / max-reg)"],
        );
        for (i, it) in register_report.iterations.iter().enumerate() {
            let rmw_covered = rmw_report
                .iterations
                .get(i)
                .map(|r| r.covered.to_string())
                .unwrap_or_else(|| "-".to_string());
            table.push_row([
                it.iteration.to_string(),
                (it.iteration * params.f).to_string(),
                it.covered.to_string(),
                rmw_covered,
            ]);
        }
        table
    }

    /// **Theorem 2.** Registers used by the collect-based `k`-writer
    /// max-register versus the `k` lower bound, for a range of `k`.
    pub fn theorem2_max_register(ks: &[usize]) -> TextTable {
        let mut table = TextTable::new(
            "Theorem 2 — registers needed by a k-writer max-register (ordinary shared memory)",
            &[
                "k",
                "lower bound",
                "collect construction",
                "CAS objects (Appendix B)",
            ],
        );
        for &k in ks {
            let collect = CollectMaxRegister::new(k, 0);
            table.push_row([
                k.to_string(),
                max_register_from_registers_lower_bound(k).to_string(),
                collect.register_count().to_string(),
                "1".to_string(),
            ]);
        }
        table
    }

    /// **Theorem 5.** The partitioning argument: outcome of the
    /// write-then-read schedule at `n = 2f` versus `n = 2f + 1`.
    pub fn theorem5_partition(fs: &[usize]) -> TextTable {
        let mut table = TextTable::new(
            "Theorem 5 — partition argument: value observed by a read after a write of 42",
            &[
                "f",
                "n = 2f (read sees)",
                "violation?",
                "n = 2f+1 (read sees)",
                "violation?",
            ],
        );
        for &f in fs {
            let bad = demonstrate_partition(2 * f, f).expect("partition run");
            let good = demonstrate_partition(2 * f + 1, f).expect("partition run");
            table.push_row([
                f.to_string(),
                bad.read_value.to_string(),
                bad.is_violation().to_string(),
                good.read_value.to_string(),
                good.is_violation().to_string(),
            ]);
        }
        table
    }

    /// **Theorem 6.** At `n = 2f + 1`: the per-server register occupancy of
    /// Algorithm 2's layout and the maximum number of registers the `Ad_i`
    /// campaign leaves covered on a single server (both must reach `k`).
    pub fn theorem6_per_server(ks: &[usize], f: usize) -> TextTable {
        let mut table = TextTable::new(
            format!("Theorem 6 — registers per server at n = 2f+1 (f = {f})"),
            &[
                "k",
                "bound (k)",
                "layout occupancy per server",
                "max covered on one server (Ad_i)",
            ],
        );
        for &k in ks {
            let params = Params::new(k, f, 2 * f + 1).expect("n = 2f+1 is valid");
            let emulation = SpaceOptimalEmulation::new(params);
            let occupancy = emulation
                .layout()
                .occupancy()
                .values()
                .copied()
                .max()
                .unwrap_or(0);
            let report = LowerBoundCampaign::new(&emulation)
                .run(&emulation)
                .expect("campaign");
            table.push_row([
                k.to_string(),
                k.to_string(),
                occupancy.to_string(),
                report.max_covered_on_one_server().to_string(),
            ]);
        }
        table
    }

    /// **Theorem 7.** Minimum number of servers when each stores at most `m`
    /// registers, next to the smallest `n` for which Algorithm 2's layout
    /// fits within that per-server budget.
    pub fn theorem7_bounded_storage(k: usize, f: usize, ms: &[usize]) -> TextTable {
        let mut table = TextTable::new(
            format!(
                "Theorem 7 — servers needed with at most m registers per server (k = {k}, f = {f})"
            ),
            &[
                "m",
                "lower bound ⌈kf/m⌉+f+1",
                "smallest n where Algorithm 2 fits",
            ],
        );
        for &m in ms {
            let bound = servers_needed_with_bounded_storage(k, f, m);
            // Search for the smallest legal n whose layout respects the
            // per-server budget.
            let mut fitting = None;
            for n in (2 * f + 1)..=(k * f + f + 1 + 2 * f) {
                if let Ok(params) = Params::new(k, f, n) {
                    let (_, layout) = RegisterLayout::build(params);
                    if layout.occupancy().values().all(|c| *c <= m) {
                        fitting = Some(n);
                        break;
                    }
                }
            }
            table.push_row([
                m.to_string(),
                bound.to_string(),
                fitting
                    .map(|n| n.to_string())
                    .unwrap_or_else(|| "-".to_string()),
            ]);
        }
        table
    }

    /// **Theorem 8.** Point contention versus resource consumption along an
    /// adversarial write-sequential run: contention stays 1 while resources
    /// grow with the number of writes.
    pub fn theorem8_contention(params: Params) -> TextTable {
        let emulation = SpaceOptimalEmulation::new(params);
        let report = LowerBoundCampaign::new(&emulation)
            .run(&emulation)
            .expect("campaign");
        let mut table = TextTable::new(
            format!("Theorem 8 — resource consumption vs point contention ({params})"),
            &[
                "write #",
                "point contention",
                "covered registers",
                "resource consumption",
            ],
        );
        for it in &report.iterations {
            table.push_row([
                it.iteration.to_string(),
                it.point_contention.to_string(),
                it.covered.to_string(),
                it.resource_consumption.to_string(),
            ]);
        }
        table
    }

    /// **Ablation.** Why Algorithm 2's write quorum cannot be reduced: the
    /// same crash/delay schedule is run against the paper's writer
    /// (slack 0) and against writers that return `slack` acknowledgements
    /// early; the table reports what a subsequent read observes.
    pub fn ablation_write_quorum(points: &[(usize, usize, usize)]) -> TextTable {
        use regemu_adversary::demonstrate_quorum_ablation;
        let mut table = TextTable::new(
            "Ablation — write-quorum size of Algorithm 2 (value 4242 written, then f crashes)",
            &["k", "f", "n", "slack", "read sees", "WS-Safety violated?"],
        );
        for &(k, f, n) in points {
            let params = Params::new(k, f, n).expect("valid parameters");
            let margin = (params.z() - 1) * params.f + 1;
            for slack in [0usize, margin] {
                let outcome = demonstrate_quorum_ablation(params, slack).expect("ablation run");
                table.push_row([
                    k.to_string(),
                    f.to_string(),
                    n.to_string(),
                    slack.to_string(),
                    outcome.read.to_string(),
                    outcome.violates_ws_safety.to_string(),
                ]);
            }
        }
        table
    }

    /// **Section 5 discussion.** Time/space trade-off of the CAS-based
    /// max-register: CAS attempts per `write-max` as the number of concurrent
    /// writers grows (space stays one object throughout).
    pub fn cas_time_complexity(thread_counts: &[usize], writes_per_thread: usize) -> TextTable {
        let mut table = TextTable::new(
            "CAS max-register (Algorithm 1) — retry cost vs concurrency",
            &[
                "writer threads",
                "writes",
                "CAS attempts",
                "avg attempts/write",
                "worst attempts/write",
            ],
        );
        for &threads in thread_counts {
            let reg = Arc::new(CasMaxRegister::new(0));
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let reg = reg.clone();
                    std::thread::spawn(move || {
                        for i in 0..writes_per_thread {
                            reg.write_max((t * writes_per_thread + i) as u64);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("writer thread");
            }
            let total_writes = threads * writes_per_thread;
            let attempts = reg.total_attempts();
            table.push_row([
                threads.to_string(),
                total_writes.to_string(),
                attempts.to_string(),
                format!("{:.2}", attempts as f64 / total_writes as f64),
                reg.worst_case_attempts().to_string(),
            ]);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::cli::ConfigFlags;
    use super::experiments::*;
    use regemu_bounds::Params;
    use regemu_workloads::small_sweep;

    /// Drives [`ConfigFlags`] the way the binaries do: every argument is
    /// offered to `accept`, the rest would belong to the binary.
    fn parse_flags(args: &[&str]) -> Result<regemu_workloads::SweepConfig, String> {
        let mut flags = ConfigFlags::default();
        let mut iter = args.iter().map(|s| s.to_string());
        while let Some(arg) = iter.next() {
            if !flags.accept(&arg, &mut iter)? {
                return Err(format!("unexpected non-config argument {arg:?}"));
            }
        }
        flags.into_config()
    }

    #[test]
    fn grid_flag_overrides_the_parameter_grid() {
        let config = parse_flags(&["--grid", "1/1/3,2/1/4"]).unwrap();
        assert_eq!(
            config.grid,
            vec![Params::new(1, 1, 3).unwrap(), Params::new(2, 1, 4).unwrap()]
        );
        // The rest of the standard config is untouched.
        assert_eq!(
            config.workloads,
            regemu_workloads::SweepConfig::standard().workloads
        );
    }

    #[test]
    fn workload_flag_overrides_the_workload_list() {
        let config = parse_flags(&["--workload", "write-seq/r2+read"]).unwrap();
        assert_eq!(config.workloads.len(), 1);
        assert_eq!(config.workloads[0].label(), "write-seq/r2+read");
        assert_eq!(config.grid, regemu_workloads::SweepConfig::standard().grid);
    }

    #[test]
    fn malformed_grid_and_workload_flags_are_rejected() {
        for args in [
            ["--grid", "2/4"].as_slice(),        // not k/f/n
            &["--grid", "1/x/3"],                // non-numeric
            &["--grid", "1/2/3"],                // violates n >= 2f + 1
            &["--grid", ""],                     // empty
            &["--workload", "no-such-workload"], // unknown label
            &["--workload", ""],                 // empty
        ] {
            assert!(parse_flags(args).is_err(), "{args:?} must be rejected");
        }
    }

    #[test]
    fn log_level_overrides_beat_the_environment_default() {
        use super::cli::{log_level, set_log_level, set_quiet, LogLevel};
        let before = log_level();
        set_quiet();
        assert_eq!(log_level(), LogLevel::Off);
        set_log_level(LogLevel::Debug);
        assert_eq!(log_level(), LogLevel::Debug);
        // The macros compare levels, so the ordering is part of the contract.
        assert!(LogLevel::Off < LogLevel::Info && LogLevel::Info < LogLevel::Debug);
        set_log_level(before);
    }

    #[test]
    fn table1_has_one_row_per_sweep_point() {
        let sweep = small_sweep();
        let table = table1(&sweep);
        assert_eq!(table.row_count(), sweep.len());
        // Measured columns match the bound columns for the RMW rows.
        for row in table.rows() {
            assert_eq!(row[3], row[4], "max-register measured == bound");
            assert_eq!(row[5], row[6], "CAS measured == bound");
            assert_eq!(row[8], row[9], "Algorithm 2 measured == upper bound");
        }
    }

    #[test]
    fn figure1_renders_the_paper_example() {
        let s = figure1(Params::new(5, 2, 6).unwrap());
        assert!(s.contains("R_0"));
        assert!(s.contains("R_4"));
        assert!(s.contains("25 registers"));
    }

    #[test]
    fn figure2_coverage_shows_the_separation() {
        let table = figure2_coverage(Params::new(3, 1, 3).unwrap());
        assert_eq!(table.row_count(), 3);
        let last = table.rows().last().unwrap();
        // Register-based coverage reaches k·f = 3; the max-register baseline
        // stays at or below 2f + 1 = 3 but in practice far below k·f growth.
        assert_eq!(last[2], "3");
    }

    #[test]
    fn theorem_tables_have_expected_shapes() {
        assert_eq!(theorem2_max_register(&[1, 2, 4]).row_count(), 3);
        assert_eq!(theorem5_partition(&[1, 2]).row_count(), 2);
        assert_eq!(theorem6_per_server(&[1, 2], 1).row_count(), 2);
        assert_eq!(theorem7_bounded_storage(4, 1, &[1, 2, 4]).row_count(), 3);
        assert_eq!(
            theorem8_contention(Params::new(3, 1, 3).unwrap()).row_count(),
            3
        );
    }

    #[test]
    fn ablation_table_flags_only_the_reduced_quorum() {
        let table = ablation_write_quorum(&[(1, 1, 3), (2, 1, 4)]);
        assert_eq!(table.row_count(), 4);
        for row in table.rows() {
            let slack: usize = row[3].parse().unwrap();
            let violated: bool = row[5].parse().unwrap();
            assert_eq!(violated, slack > 0, "row {row:?}");
        }
    }

    #[test]
    fn cas_time_complexity_reports_at_least_one_attempt_per_write() {
        let table = cas_time_complexity(&[1, 2], 64);
        assert_eq!(table.row_count(), 2);
        for row in table.rows() {
            let per_write: f64 = row[3].parse().unwrap();
            assert!(per_write >= 1.0);
        }
    }
}
