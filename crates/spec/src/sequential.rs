//! Sequential specifications of the emulated object types.
//!
//! The consistency conditions are all phrased relative to a *sequential
//! specification*: the set of sequential schedules the object admits. For the
//! objects in this repository the state is fully determined by the sequence
//! of writes applied so far, so a specification is captured by how writes
//! fold into a single [`Payload`] state.

use regemu_fpsm::{HighOp, HighResponse, Payload};
use serde::{Deserialize, Serialize};

/// How a sequence of writes determines the value returned by a read.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Semantics {
    /// Ordinary read/write register: a read returns the value of the last
    /// preceding write (or the initial value).
    LastWrite,
    /// Max-register: a read returns the maximum value written so far (or the
    /// initial value).
    Max,
}

/// A sequential specification with an initial value.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SequentialSpec {
    /// The fold semantics of writes.
    pub semantics: Semantics,
    /// The initial value `v0` returned when no write precedes a read.
    pub initial: Payload,
}

impl SequentialSpec {
    /// The specification of a multi-writer read/write register with initial
    /// value 0.
    pub fn register() -> Self {
        SequentialSpec {
            semantics: Semantics::LastWrite,
            initial: 0,
        }
    }

    /// The specification of a multi-writer max-register with initial value 0.
    pub fn max_register() -> Self {
        SequentialSpec {
            semantics: Semantics::Max,
            initial: 0,
        }
    }

    /// Folds a write of `value` into the current state.
    pub fn apply_write(&self, state: Payload, value: Payload) -> Payload {
        match self.semantics {
            Semantics::LastWrite => value,
            Semantics::Max => state.max(value),
        }
    }

    /// The state after applying the given sequence of writes in order.
    pub fn state_after<I>(&self, writes: I) -> Payload
    where
        I: IntoIterator<Item = Payload>,
    {
        writes
            .into_iter()
            .fold(self.initial, |st, v| self.apply_write(st, v))
    }

    /// Applies a high-level operation to `state`, returning the next state
    /// and the response the sequential specification mandates.
    pub fn step(&self, state: Payload, op: HighOp) -> (Payload, HighResponse) {
        match op {
            HighOp::Write(v) => (self.apply_write(state, v), HighResponse::WriteAck),
            HighOp::Read => (state, HighResponse::ReadValue(state)),
        }
    }

    /// Returns `true` if `response` is legal for `op` applied in `state`.
    pub fn allows(&self, state: Payload, op: HighOp, response: HighResponse) -> bool {
        self.step(state, op).1 == response
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn last_write_semantics() {
        let spec = SequentialSpec::register();
        assert_eq!(spec.state_after([3, 1, 2]), 2);
        assert_eq!(spec.state_after([]), 0);
        let (st, resp) = spec.step(5, HighOp::Read);
        assert_eq!(st, 5);
        assert_eq!(resp, HighResponse::ReadValue(5));
        let (st, resp) = spec.step(5, HighOp::Write(9));
        assert_eq!(st, 9);
        assert_eq!(resp, HighResponse::WriteAck);
    }

    #[test]
    fn max_semantics() {
        let spec = SequentialSpec::max_register();
        assert_eq!(spec.state_after([3, 1, 2]), 3);
        assert_eq!(spec.state_after([0]), 0);
        assert_eq!(spec.apply_write(7, 5), 7);
        assert_eq!(spec.apply_write(5, 7), 7);
    }

    #[test]
    fn allows_matches_step() {
        let spec = SequentialSpec::register();
        assert!(spec.allows(4, HighOp::Read, HighResponse::ReadValue(4)));
        assert!(!spec.allows(4, HighOp::Read, HighResponse::ReadValue(5)));
        assert!(spec.allows(4, HighOp::Write(1), HighResponse::WriteAck));
    }

    #[test]
    fn nonzero_initial_value() {
        let spec = SequentialSpec {
            semantics: Semantics::Max,
            initial: 10,
        };
        assert_eq!(spec.state_after([3, 4]), 10);
        assert_eq!(spec.state_after([11]), 11);
    }
}
