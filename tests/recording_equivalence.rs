//! Property-based equivalence of the recording modes.
//!
//! Recording changes what a run *retains*, never what it *does*: across a
//! randomized grid of scenarios — every `EmulationKind` (including the
//! atomic variants) × every scheduler × both crash plans × random seeds and
//! workload shapes — a `Digest` or `Ring` run must produce `RunMetrics`
//! byte-identical to the `Full` run of the same scenario, and the online
//! checker's verdict must agree with the offline verdict whenever the ring
//! never evicted an unchecked event (i.e. the report's coverage is
//! `Complete`).

use proptest::prelude::*;
use regemu::prelude::*;

/// All emulation kinds, WS-Regular and atomic alike.
fn kinds() -> Vec<EmulationKind> {
    EmulationKind::ALL
        .into_iter()
        .chain(EmulationKind::ATOMIC)
        .collect()
}

fn base_scenario(
    params: Params,
    kind: EmulationKind,
    scheduler: SchedulerSpec,
    crash: bool,
    workload_shape: u8,
    check_shape: u8,
    seed: u64,
) -> Scenario {
    let workload = match workload_shape % 3 {
        0 => WorkloadSpec::WriteSequential {
            rounds: 1,
            read_after_each: true,
        },
        1 => WorkloadSpec::RandomMixed {
            readers: 2,
            total: 10,
            write_percent: 50,
        },
        _ => WorkloadSpec::ConcurrentReadWrite { rounds: 1 },
    };
    let check = match check_shape % 3 {
        0 => ConsistencyCheck::WsSafe,
        1 => ConsistencyCheck::WsRegular,
        _ => ConsistencyCheck::Atomic,
    };
    Scenario::new(params)
        .emulation(kind)
        .workload(workload)
        .scheduler(scheduler)
        .crashes(if crash {
            CrashPlanSpec::CrashF
        } else {
            CrashPlanSpec::None
        })
        .check(check)
        .seed(seed)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 20, ..ProptestConfig::default() })]

    /// The headline equivalence: metrics, schedules and completion counts
    /// are identical across recording modes, and online verdicts agree with
    /// offline ones whenever the checker saw the whole stream.
    #[test]
    fn recording_modes_are_observationally_equivalent(
        (k, f, extra) in (1usize..=3, 1usize..=2, 0usize..=2),
        kind_index in 0usize..6,
        scheduler_index in 0usize..4,
        crash in proptest::bool::ANY,
        workload_shape in 0u8..3,
        check_shape in 0u8..3,
        cap_index in 0usize..3,
        seed in 0u64..1000,
    ) {
        let params = Params::new(k, f, 2 * f + 1 + extra).expect("n ≥ 2f + 1 by construction");
        let kind = kinds()[kind_index % kinds().len()];
        let scheduler = SchedulerSpec::ALL[scheduler_index % SchedulerSpec::ALL.len()];
        let capacity = [16usize, 256, 2048][cap_index % 3];
        let scenario = base_scenario(
            params, kind, scheduler, crash, workload_shape, check_shape, seed,
        );

        let full = scenario.run();
        let digest = scenario.clone().recording(RecordingModeSpec::Digest).run();
        let ring = scenario
            .clone()
            .recording(RecordingModeSpec::Ring(capacity))
            .run();

        match (full, digest, ring) {
            (Ok(full), Ok(digest), Ok(ring)) => {
                // RunMetrics is a pure function of the run, mode-independent.
                prop_assert_eq!(&digest.metrics, &full.metrics);
                prop_assert_eq!(&ring.metrics, &full.metrics);
                prop_assert_eq!(digest.completed_ops, full.completed_ops);
                prop_assert_eq!(ring.completed_ops, full.completed_ops);
                // The high-level schedule lives in the interval digest,
                // retained in every mode.
                prop_assert_eq!(&digest.history, &full.history);
                prop_assert_eq!(&ring.history, &full.history);

                // Coverage semantics: full recording always checks fully;
                // digest never checks at all.
                prop_assert!(full.is_fully_checked());
                prop_assert_eq!(digest.check_coverage, CheckCoverage::NotRecorded);
                prop_assert!(digest.check_violation.is_none());

                // Online verdicts agree with offline ones whenever the ring
                // never evicted an unchecked event.
                match ring.check_coverage {
                    CheckCoverage::Complete => prop_assert_eq!(
                        ring.is_consistent(),
                        full.is_consistent(),
                        "ring verdict {:?} disagrees with offline {:?}",
                        ring.check_violation,
                        full.check_violation
                    ),
                    CheckCoverage::Truncated => {
                        // Inconclusive by definition: events were evicted
                        // faster than the engine drained them, so the online
                        // verdict (violation or not) claims nothing about
                        // the full run — a pre-gap WS violation, for
                        // example, could have been vacated by concurrent
                        // writes in the unseen suffix.
                    }
                    CheckCoverage::NotRecorded => {
                        prop_assert!(false, "ring runs always retain a window");
                    }
                }
            }
            // Determinism extends to failures: if one mode cannot complete
            // the run, all modes fail identically.
            (full, digest, ring) => {
                let full_err = full.expect_err("some mode errored").to_string();
                prop_assert_eq!(digest.expect_err("digest must fail alike").to_string(), full_err.clone());
                prop_assert_eq!(ring.expect_err("ring must fail alike").to_string(), full_err);
            }
        }
    }

    /// Peak retained events honour the configured bound for every scenario
    /// shape, while the digests keep working (non-zero totals).
    #[test]
    fn ring_capacity_bounds_peak_retention(
        (k, f) in (1usize..=3, 1usize..=2),
        workload_shape in 0u8..3,
        capacity in 1usize..64,
        seed in 0u64..500,
    ) {
        let params = Params::new(k, f, 2 * f + 1).unwrap();
        let scenario = base_scenario(
            params,
            EmulationKind::SpaceOptimal,
            SchedulerSpec::Fair,
            false,
            workload_shape,
            1,
            seed,
        );
        let mut run = scenario
            .clone()
            .recording(RecordingModeSpec::Ring(capacity))
            .build();
        run.run().unwrap();
        prop_assert!(run.history().peak_retained_events() <= capacity);
        prop_assert!(run.history().total_events() > 0);

        let mut digest = scenario.recording(RecordingModeSpec::Digest).build();
        digest.run().unwrap();
        prop_assert_eq!(digest.history().peak_retained_events(), 0);
        prop_assert_eq!(digest.history().total_events(), run.history().total_events());
    }
}
