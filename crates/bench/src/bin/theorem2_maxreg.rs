//! Regenerates the **Theorem 2** comparison: a `k`-writer max-register needs
//! at least `k` read/write registers (and exactly one CAS object suffices).
//!
//! ```text
//! cargo run -p regemu-bench --bin theorem2_maxreg
//! ```

use regemu_bench::experiments::theorem2_max_register;

fn main() {
    println!("{}", theorem2_max_register(&[1, 2, 4, 8, 16, 32, 64]));
}
