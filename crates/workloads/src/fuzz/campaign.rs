//! Campaign-scale fuzzing: sharded corpus search with deterministic merge.
//!
//! A single [`Fuzzer`] explores in one process; a *fuzz campaign* shards a
//! total iteration budget over worker processes on the same spool-directory
//! protocol the sweep campaigns use (`crate::campaign`). The unit of
//! determinism is the **stream**: a campaign runs a fixed number of logical
//! fuzzing streams (frozen in the manifest at init, like a sweep campaign's
//! case shards), stream `s` seeded from the master seed and `s`, so every
//! stream's exploration is a pure function of the campaign config. Shards
//! are contiguous stream ranges; how streams are grouped into shards, which
//! worker runs them, and in what order never changes any stream's output —
//! which is what makes the merged failure set **byte-identical** across
//! shard counts, worker interleavings, and kill/resume cycles.
//!
//! ## Corpus exchange
//!
//! Streams run their budget in *generations*. At the end of each
//! generation, a worker publishes the corpus entries its streams admitted
//! during that generation as one `corpus-SSSS-GG-NNNN.trace` file each
//! (stream, generation, admission sequence — written temp-file+rename, so a
//! torn entry is never visible). The coordinator barriers between
//! generations: generation `g` starts only after *every* shard finished
//! generation `g - 1`. A stream opening generation `g` therefore ingests a
//! fixed, manifest-determined set — all published entries of generations
//! `< g`, in `(stream, generation, sequence)` order — so corpus admission
//! stays a pure function of the manifest state, and cross-pollination
//! between shards costs no determinism. A campaign can also start from a
//! *previous* campaign's published corpus: [`import_seed_corpus`] copies a
//! directory's `*.trace` files into the spool as `seed-NNNN.trace` entries,
//! the fixed ingest set of every stream's generation 0, frozen once the
//! manifest exists.
//!
//! ## The spool directory
//!
//! | file | written by | contents |
//! |---|---|---|
//! | `fuzz-config.txt` | coordinator, once | canonical [`FuzzCampaignConfig`] text |
//! | `fuzz-manifest.txt` | coordinator | [`FuzzManifest`]: fingerprint, stream ranges, per-shard generation progress |
//! | `seed-NNNN.trace` | coordinator, at init | an imported generation-0 seed ([`import_seed_corpus`]) |
//! | `corpus-SSSS-GG-NNNN.trace` | workers | one published corpus entry (`regemu-trace v1`) |
//! | `failures-SSSS-GG.txt` | workers | the generation's shrunk failure reports for stream `SSSS` |
//! | `fuzz-shard-NNNN-GG.txt` | workers | per-`(shard, generation)` completion report |
//!
//! Because every `(shard, generation)` unit is a pure function of the spool
//! contents at its barrier, a killed worker is re-run idempotently: it
//! republishes byte-identical files. Resume revalidates completion reports
//! exactly like the sweep campaign revalidates shard reports.
//!
//! ## The merged failure set
//!
//! [`merge_fuzz_campaign`] collects every shrunk failure from every
//! `failures-*.txt`, deduplicates by the shrunk trace text (shrinking is a
//! deterministic fixed point, so equal repros are byte-equal), normalizes
//! `found-at` to the minimum across duplicates, and orders by
//! `(kind label, trace text)`. The resulting
//! [`FuzzCampaignReport::failures_text`] is the campaign's canonical
//! artifact: the CI determinism job diffs it across 1-shard and 4-shard
//! runs of the same config.

use super::shrink::{shrink_failure, FailureReport};
use super::trace::RecordedSchedule;
use super::{FailureKind, FuzzCase, FuzzConfig, FuzzEmulation, Fuzzer};
use crate::campaign::{
    fnv64, malformed, plan_shards, write_atomically, CampaignError, ShardRange, WorkerMode,
};
use crate::runner::ConsistencyCheck;
use crate::sweep::WorkloadSpec;
use regemu_bounds::Params;
use regemu_spec::Condition;
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

/// Version tag of the fuzz-campaign spool formats.
pub const FUZZ_FORMAT_VERSION: u32 = 1;

/// What a fuzz campaign explores and how the exploration is split.
///
/// [`FuzzCampaignConfig::fuzz`] holds the *total* iteration budget; streams
/// split it (first `budget % streams` streams get one extra iteration), and
/// each stream splits its slice across generations the same way.
#[derive(Clone, Debug)]
pub struct FuzzCampaignConfig {
    /// The underlying fuzz config. `budget` is the campaign-wide total;
    /// `stop_on_failure` is ignored (streams always spend their slice, so
    /// the merged artifact never depends on who found a failure first).
    pub fuzz: FuzzConfig,
    /// Number of independent fuzzing streams (the determinism unit).
    pub streams: usize,
    /// Number of corpus-exchange generations per stream.
    pub generations: usize,
}

impl FuzzCampaignConfig {
    /// A campaign over `fuzz` with the default split: 8 streams, 2
    /// generations.
    pub fn new(fuzz: FuzzConfig) -> Self {
        FuzzCampaignConfig {
            fuzz,
            streams: 8,
            generations: 2,
        }
    }

    /// Sets the stream count (at least 1).
    pub fn streams(mut self, streams: usize) -> Self {
        self.streams = streams.max(1);
        self
    }

    /// Sets the generation count (at least 1).
    pub fn generations(mut self, generations: usize) -> Self {
        self.generations = generations.max(1);
        self
    }

    /// The seed of stream `s`: the master seed and the stream index mixed
    /// through the SplitMix64 finalizer, so streams explore independently.
    pub fn stream_seed(&self, stream: usize) -> u64 {
        let mut x = self
            .fuzz
            .seed
            .wrapping_add((stream as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    /// The iteration budget of stream `s` (its slice of the total).
    pub fn stream_budget(&self, stream: usize) -> usize {
        plan_shards(self.fuzz.budget, self.streams)
            .get(stream)
            .map(ShardRange::len)
            .unwrap_or(0)
    }

    /// The iteration budget of generation `g` within stream `s`.
    pub fn generation_budget(&self, stream: usize, generation: usize) -> usize {
        plan_shards(self.stream_budget(stream), self.generations)
            .get(generation)
            .map(ShardRange::len)
            .unwrap_or(0)
    }

    /// The [`FuzzConfig`] stream `s` runs: the campaign config with the
    /// stream's derived seed and slice of the budget.
    pub fn stream_config(&self, stream: usize) -> FuzzConfig {
        let mut config = self.fuzz.clone();
        config.seed = self.stream_seed(stream);
        config.budget = self.stream_budget(stream);
        config.stop_on_failure = false;
        config
    }
}

/// Serializes a [`FuzzCampaignConfig`] as canonical line-based text.
pub fn fuzz_config_to_text(config: &FuzzCampaignConfig) -> String {
    format!(
        "regemu-fuzz-campaign-config v{FUZZ_FORMAT_VERSION}\n\
         params {} {} {}\n\
         emulation {}\n\
         workload {}\n\
         check {}\n\
         seed {}\n\
         budget {}\n\
         max-steps {}\n\
         streams {}\n\
         generations {}\n",
        config.fuzz.params.k,
        config.fuzz.params.f,
        config.fuzz.params.n,
        config.fuzz.emulation,
        config.fuzz.workload.label(),
        config.fuzz.check.name(),
        config.fuzz.seed,
        config.fuzz.budget,
        config.fuzz.max_steps_per_op,
        config.streams,
        config.generations,
    )
}

/// Parses the canonical [`FuzzCampaignConfig`] text.
///
/// # Errors
///
/// Returns a message naming the first malformed line.
pub fn fuzz_config_from_text(text: &str) -> Result<FuzzCampaignConfig, String> {
    let mut lines = text.lines();
    let header = lines.next().ok_or("empty fuzz-campaign config")?;
    if header != format!("regemu-fuzz-campaign-config v{FUZZ_FORMAT_VERSION}") {
        return Err(format!("unsupported config header {header:?}"));
    }
    let mut field = |name: &str| -> Result<String, String> {
        let line = lines.next().ok_or(format!("missing {name} line"))?;
        line.strip_prefix(&format!("{name} "))
            .map(str::to_string)
            .ok_or(format!("expected {name} line, got {line:?}"))
    };
    let params_raw = field("params")?;
    let mut parts = params_raw.split_whitespace();
    let mut next_num = |what: &str| -> Result<usize, String> {
        parts
            .next()
            .ok_or_else(|| "params needs k f n".to_string())?
            .parse()
            .map_err(|_| format!("bad params {what}"))
    };
    let (k, f, n) = (next_num("k")?, next_num("f")?, next_num("n")?);
    let params = Params::new(k, f, n).map_err(|e| format!("invalid params: {e}"))?;
    let emulation_name = field("emulation")?;
    let emulation = FuzzEmulation::from_name(&emulation_name)
        .ok_or_else(|| format!("unknown emulation {emulation_name:?}"))?;
    let workload_label = field("workload")?;
    let workload = WorkloadSpec::from_label(&workload_label)
        .ok_or_else(|| format!("unknown workload {workload_label:?}"))?;
    let check_name = field("check")?;
    let check = ConsistencyCheck::from_name(&check_name)
        .ok_or_else(|| format!("unknown check {check_name:?}"))?;
    let num = |v: String, what: &str| -> Result<u64, String> {
        v.parse().map_err(|_| format!("bad {what} value {v:?}"))
    };
    let seed = num(field("seed")?, "seed")?;
    let budget = num(field("budget")?, "budget")? as usize;
    let max_steps_per_op = num(field("max-steps")?, "max-steps")?;
    let streams = num(field("streams")?, "streams")?.max(1) as usize;
    let generations = num(field("generations")?, "generations")?.max(1) as usize;
    let mut fuzz = FuzzConfig::new(params)
        .emulation(emulation)
        .workload(workload)
        .check(check)
        .seed(seed)
        .budget(budget);
    fuzz.max_steps_per_op = max_steps_per_op;
    Ok(FuzzCampaignConfig {
        fuzz,
        streams,
        generations,
    })
}

/// Fingerprint identifying the campaign's exploration space.
pub fn fuzz_config_fingerprint(config: &FuzzCampaignConfig) -> String {
    format!("{:016x}", fnv64(fuzz_config_to_text(config).as_bytes()))
}

// --------------------------------------------------------------------------
// Spool layout
// --------------------------------------------------------------------------

/// Path of the fuzz-campaign config inside a spool directory.
pub fn fuzz_config_path(spool: &Path) -> PathBuf {
    spool.join("fuzz-config.txt")
}

/// Path of the fuzz-campaign manifest inside a spool directory.
pub fn fuzz_manifest_path(spool: &Path) -> PathBuf {
    spool.join("fuzz-manifest.txt")
}

/// Path of a published corpus entry.
pub fn corpus_entry_path(spool: &Path, stream: usize, gen: usize, seq: usize) -> PathBuf {
    spool.join(format!("corpus-{stream:04}-{gen:02}-{seq:04}.trace"))
}

/// Path of a stream's per-generation failure file.
pub fn failures_path(spool: &Path, stream: usize, gen: usize) -> PathBuf {
    spool.join(format!("failures-{stream:04}-{gen:02}.txt"))
}

/// Path of a `(shard, generation)` completion report.
pub fn fuzz_shard_report_path(spool: &Path, shard: usize, gen: usize) -> PathBuf {
    spool.join(format!("fuzz-shard-{shard:04}-{gen:02}.txt"))
}

/// Path of an imported generation-0 seed entry ([`import_seed_corpus`]).
pub fn seed_entry_path(spool: &Path, seq: usize) -> PathBuf {
    spool.join(format!("seed-{seq:04}.trace"))
}

// --------------------------------------------------------------------------
// The manifest
// --------------------------------------------------------------------------

/// One shard (a contiguous stream range) and its generation progress.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FuzzShardEntry {
    /// The shard's stream range.
    pub range: ShardRange,
    /// Generations completed so far (`generations` = shard finished).
    pub gens_done: usize,
    /// Worker attempts consumed so far.
    pub attempts: u32,
}

/// The versioned, on-disk state of a fuzz campaign.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FuzzManifest {
    /// Fingerprint of the config ([`fuzz_config_fingerprint`]).
    pub fingerprint: String,
    /// Total number of streams.
    pub streams: usize,
    /// Generations per stream.
    pub generations: usize,
    /// Per-shard stream ranges and progress, in shard order.
    pub shards: Vec<FuzzShardEntry>,
}

impl FuzzManifest {
    /// Plans a fresh manifest for `config` split into `shards` shards.
    pub fn plan(config: &FuzzCampaignConfig, shards: usize) -> Self {
        FuzzManifest {
            fingerprint: fuzz_config_fingerprint(config),
            streams: config.streams,
            generations: config.generations,
            shards: plan_shards(config.streams, shards)
                .into_iter()
                .map(|range| FuzzShardEntry {
                    range,
                    gens_done: 0,
                    attempts: 0,
                })
                .collect(),
        }
    }

    /// Serializes the manifest as its on-disk text.
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "regemu-fuzz-campaign-manifest v{FUZZ_FORMAT_VERSION}\n\
             fingerprint {}\nstreams {}\ngenerations {}\nshards {}\n",
            self.fingerprint,
            self.streams,
            self.generations,
            self.shards.len()
        );
        for s in &self.shards {
            out.push_str(&format!(
                "shard {} {} {} {} {}\n",
                s.range.index, s.range.start, s.range.end, s.gens_done, s.attempts
            ));
        }
        out
    }

    /// Parses the on-disk manifest text.
    ///
    /// # Errors
    ///
    /// Returns a message naming what is malformed.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty manifest")?;
        if header != format!("regemu-fuzz-campaign-manifest v{FUZZ_FORMAT_VERSION}") {
            return Err(format!("unsupported manifest header {header:?}"));
        }
        let mut field = |name: &str| -> Result<String, String> {
            let line = lines.next().ok_or(format!("missing {name} line"))?;
            line.strip_prefix(&format!("{name} "))
                .map(str::to_string)
                .ok_or(format!("expected {name} line, got {line:?}"))
        };
        let fingerprint = field("fingerprint")?;
        let parse = |s: String, what: &str| -> Result<usize, String> {
            s.parse().map_err(|_| format!("bad {what} {s:?}"))
        };
        let streams = parse(field("streams")?, "stream count")?;
        let generations = parse(field("generations")?, "generation count")?;
        let shard_count = parse(field("shards")?, "shard count")?;
        let mut shards = Vec::with_capacity(shard_count);
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            let parts: Vec<&str> = line.split_whitespace().collect();
            let ["shard", index, start, end, gens_done, attempts] = parts.as_slice() else {
                return Err(format!("bad shard line {line:?}"));
            };
            let parse = |s: &str| s.parse::<usize>().map_err(|_| format!("bad number {s:?}"));
            shards.push(FuzzShardEntry {
                range: ShardRange {
                    index: parse(index)?,
                    start: parse(start)?,
                    end: parse(end)?,
                },
                gens_done: parse(gens_done)?,
                attempts: attempts
                    .parse()
                    .map_err(|_| format!("bad attempt count {attempts:?}"))?,
            });
        }
        if shards.len() != shard_count {
            return Err(format!(
                "manifest declares {shard_count} shards but lists {}",
                shards.len()
            ));
        }
        let mut expected_start = 0;
        for (i, s) in shards.iter().enumerate() {
            if s.range.index != i || s.range.start != expected_start || s.range.end < s.range.start
            {
                return Err(format!("shard {i} range is not a partition: {:?}", s.range));
            }
            if s.gens_done > generations {
                return Err(format!("shard {i} claims {} generations", s.gens_done));
            }
            expected_start = s.range.end;
        }
        if expected_start != streams {
            return Err(format!(
                "shards cover {expected_start} streams, manifest declares {streams}"
            ));
        }
        Ok(FuzzManifest {
            fingerprint,
            streams,
            generations,
            shards,
        })
    }

    /// Loads the manifest from a spool directory, or `None` when absent.
    pub fn load(spool: &Path) -> Result<Option<Self>, CampaignError> {
        let path = fuzz_manifest_path(spool);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        FuzzManifest::from_text(&text)
            .map(Some)
            .map_err(|reason| malformed(&path, reason))
    }

    /// Atomically writes the manifest into the spool.
    pub fn store(&self, spool: &Path) -> Result<(), CampaignError> {
        write_atomically(&fuzz_manifest_path(spool), &self.to_text())
    }

    /// Returns `true` once every shard has run all generations.
    pub fn is_complete(&self) -> bool {
        self.shards.iter().all(|s| s.gens_done >= self.generations)
    }

    /// The barrier generation: the next generation some shard still has to
    /// run (all shards with `gens_done == g` run before any starts `g + 1`).
    pub fn current_generation(&self) -> Option<usize> {
        self.shards
            .iter()
            .map(|s| s.gens_done)
            .min()
            .filter(|&g| g < self.generations)
    }
}

/// Initializes (or resumes) a fuzz-campaign spool for `config` split into
/// `shards` shards. Mirrors `crate::campaign::init_spool`: an existing
/// manifest wins over the `shards` argument and must match the config's
/// fingerprint.
///
/// # Errors
///
/// Fails on spool I/O, a malformed manifest, or a fingerprint mismatch.
pub fn init_fuzz_spool(
    spool: &Path,
    config: &FuzzCampaignConfig,
    shards: usize,
) -> Result<FuzzManifest, CampaignError> {
    fs::create_dir_all(spool)?;
    let fingerprint = fuzz_config_fingerprint(config);
    if let Some(manifest) = FuzzManifest::load(spool)? {
        if manifest.fingerprint != fingerprint {
            return Err(CampaignError::ConfigMismatch {
                manifest: manifest.fingerprint,
                config: fingerprint,
            });
        }
        return Ok(manifest);
    }
    write_atomically(&fuzz_config_path(spool), &fuzz_config_to_text(config))?;
    let manifest = FuzzManifest::plan(config, shards);
    manifest.store(spool)?;
    Ok(manifest)
}

/// Imports every `*.trace` file in `dir` — typically the `corpus-*.trace`
/// entries published by a *previous* campaign's spool — as this campaign's
/// generation-0 seed corpus: `seed-NNNN.trace` entries, numbered in
/// file-name order, that every stream ingests before its first iteration.
/// Each file must parse as a `regemu-trace v1` recorded schedule.
///
/// Re-importing the same directory is idempotent (byte-identical seeds are
/// left in place). Once the campaign manifest exists the seed set is
/// frozen: resumed workers re-derive generation 0 from it, so importing a
/// different, larger or smaller set into a started campaign is an error,
/// not a silent determinism break.
///
/// Returns the number of seed entries in the spool after the import.
///
/// # Errors
///
/// Fails on I/O errors, on a seed file that does not parse as a recorded
/// trace, or on any change to a started campaign's frozen seed set.
pub fn import_seed_corpus(spool: &Path, dir: &Path) -> Result<usize, CampaignError> {
    let mut sources: Vec<PathBuf> = Vec::new();
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_file() && path.extension().is_some_and(|e| e == "trace") {
            sources.push(path);
        }
    }
    sources.sort();
    fs::create_dir_all(spool)?;
    let frozen = FuzzManifest::load(spool)?.is_some();
    for (seq, source) in sources.iter().enumerate() {
        let text = fs::read_to_string(source)?;
        RecordedSchedule::from_text(&text).map_err(|reason| malformed(source, reason))?;
        let target = seed_entry_path(spool, seq);
        let changed = format!(
            "campaign already started with a different seed corpus \
             (seed {seq} != {}); use a fresh --spool to reseed",
            source.display()
        );
        match fs::read_to_string(&target) {
            Ok(existing) if existing == text => continue,
            Ok(_) if frozen => return Err(malformed(&target, changed)),
            Ok(_) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                if frozen {
                    return Err(malformed(&target, changed));
                }
            }
            Err(e) => return Err(e.into()),
        }
        write_atomically(&target, &text)?;
    }
    let stale = seed_entry_path(spool, sources.len());
    if stale.exists() {
        if frozen {
            return Err(malformed(
                &stale,
                "campaign already started with a larger seed corpus; \
                 use a fresh --spool to reseed",
            ));
        }
        for seq in sources.len().. {
            let path = seed_entry_path(spool, seq);
            if !path.exists() {
                break;
            }
            fs::remove_file(&path)?;
        }
    }
    Ok(sources.len())
}

/// Reads the spool's imported generation-0 seeds in sequence order — the
/// fixed extra ingest set of every stream's generation 0. Empty when no
/// seed corpus was imported.
///
/// # Errors
///
/// Fails on I/O errors or a malformed seed entry.
pub fn seed_corpus(spool: &Path) -> Result<Vec<FuzzCase>, CampaignError> {
    let mut cases = Vec::new();
    for seq in 0.. {
        let path = seed_entry_path(spool, seq);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => break,
            Err(e) => return Err(e.into()),
        };
        let schedule =
            RecordedSchedule::from_text(&text).map_err(|reason| malformed(&path, reason))?;
        cases.push(schedule.case());
    }
    Ok(cases)
}

/// Loads the campaign's [`FuzzCampaignConfig`] from a spool directory.
///
/// # Errors
///
/// Fails when the config file is missing or malformed.
pub fn load_fuzz_config(spool: &Path) -> Result<FuzzCampaignConfig, CampaignError> {
    let path = fuzz_config_path(spool);
    let text = fs::read_to_string(&path)?;
    fuzz_config_from_text(&text).map_err(|reason| malformed(&path, reason))
}

// --------------------------------------------------------------------------
// The worker: one (shard, generation) unit
// --------------------------------------------------------------------------

/// Reads every corpus entry published for generations `< gen`, in
/// `(stream, generation, sequence)` order — the fixed ingest set of any
/// stream opening generation `gen`.
fn published_before(
    spool: &Path,
    streams: usize,
    gen: usize,
) -> Result<Vec<FuzzCase>, CampaignError> {
    let mut cases = Vec::new();
    for stream in 0..streams {
        for g in 0..gen {
            for seq in 0.. {
                let path = corpus_entry_path(spool, stream, g, seq);
                let text = match fs::read_to_string(&path) {
                    Ok(t) => t,
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => break,
                    Err(e) => return Err(e.into()),
                };
                let schedule = RecordedSchedule::from_text(&text)
                    .map_err(|reason| malformed(&path, reason))?;
                cases.push(schedule.case());
            }
        }
    }
    Ok(cases)
}

/// The per-stream outcome of one generation.
struct StreamGenOutcome {
    iterations: usize,
    corpus_added: usize,
    failures: Vec<FailureReport>,
}

/// Runs one stream through generations `0..=gen`, re-deriving earlier
/// generations deterministically (each is a pure function of the spool
/// state at its barrier), and returns what generation `gen` produced. Also
/// publishes generation `gen`'s corpus entries and failure file.
fn run_stream_generation(
    spool: &Path,
    config: &FuzzCampaignConfig,
    stream: usize,
    gen: usize,
) -> Result<StreamGenOutcome, CampaignError> {
    let stream_config = config.stream_config(stream);
    let mut fuzzer = Fuzzer::new(stream_config.clone());
    let mut corpus_mark = 0;
    let mut failure_mark = 0;
    for g in 0..=gen {
        if g == 0 {
            // Imported seeds are generation 0's fixed ingest set; they are
            // admitted before the corpus mark, so they are never
            // republished and re-derivation stays deterministic.
            for case in seed_corpus(spool)? {
                fuzzer.ingest(case);
            }
        } else {
            for case in published_before(spool, config.streams, g)? {
                fuzzer.ingest(case);
            }
        }
        corpus_mark = fuzzer.corpus().len();
        failure_mark = fuzzer.failures().len();
        fuzzer.run_iterations(config.generation_budget(stream, g));
    }

    // Publish generation `gen`: the corpus entries admitted during it...
    let new_entries: Vec<FuzzCase> = fuzzer.corpus()[corpus_mark..].to_vec();
    for (seq, case) in new_entries.iter().enumerate() {
        let schedule = RecordedSchedule::from_parts(&stream_config, case);
        write_atomically(
            &corpus_entry_path(spool, stream, gen, seq),
            &schedule.to_text(),
        )?;
    }
    // ...and the generation's failures, shrunk.
    let failures: Vec<FailureReport> = fuzzer.failures()[failure_mark..]
        .iter()
        .map(|failure| shrink_failure(&stream_config, failure))
        .collect();
    let mut text = format!(
        "regemu-fuzz-failures v{FUZZ_FORMAT_VERSION}\ncount {}\n",
        failures.len()
    );
    for report in &failures {
        text.push_str(&report.to_text());
    }
    write_atomically(&failures_path(spool, stream, gen), &text)?;

    let gen_start = {
        let mut start = 0;
        for g in 0..gen {
            start += config.generation_budget(stream, g);
        }
        start
    };
    Ok(StreamGenOutcome {
        iterations: fuzzer.iterations() - gen_start,
        corpus_added: new_entries.len(),
        failures,
    })
}

/// Runs one `(shard, generation)` unit: every stream in the shard's range
/// through generation `gen`, publishing corpus entries, failure files, and
/// finally the unit's completion report. Pure given the spool state at the
/// generation barrier, and idempotent — re-running republishes
/// byte-identical files.
///
/// # Errors
///
/// Fails on spool I/O or when the spool has no (or a malformed) config.
pub fn run_fuzz_shard_gen(spool: &Path, shard: usize, gen: usize) -> Result<(), CampaignError> {
    let config = load_fuzz_config(spool)?;
    let manifest = FuzzManifest::load(spool)?
        .ok_or_else(|| malformed(&fuzz_manifest_path(spool), "missing manifest".to_string()))?;
    let entry = manifest
        .shards
        .get(shard)
        .ok_or(CampaignError::UnknownShard(shard))?;
    let mut report = format!(
        "regemu-fuzz-shard v{FUZZ_FORMAT_VERSION}\nshard {shard}\ngeneration {gen}\n\
         streams {} {}\n",
        entry.range.start, entry.range.end
    );
    // Heartbeats are advisory observer artifacts; the unit's report below
    // stays a pure function of the spool state at the generation barrier.
    let mut beat = crate::status::HeartbeatWriter::new(spool, shard, "fuzz", entry.attempts);
    let (mut iterations, mut corpus_entries) = (0u64, 0u64);
    beat.set_fuzz_progress(gen as u64, iterations, corpus_entries);
    beat.publish(0, entry.range.len() as u64);
    for (streams_done, stream) in (entry.range.start..entry.range.end).enumerate() {
        let outcome = run_stream_generation(spool, &config, stream, gen)?;
        report.push_str(&format!(
            "stream {stream} iterations {} corpus {} failures {}\n",
            outcome.iterations,
            outcome.corpus_added,
            outcome.failures.len()
        ));
        iterations += outcome.iterations as u64;
        corpus_entries += outcome.corpus_added as u64;
        beat.set_fuzz_progress(gen as u64, iterations, corpus_entries);
        beat.publish(streams_done as u64 + 1, entry.range.len() as u64);
    }
    report.push_str("end\n");
    write_atomically(&fuzz_shard_report_path(spool, shard, gen), &report)
}

/// Validates a `(shard, generation)` completion report: it must exist,
/// parse, and cover exactly the shard's stream range.
fn shard_gen_is_done(spool: &Path, range: ShardRange, gen: usize) -> bool {
    let path = fuzz_shard_report_path(spool, range.index, gen);
    let Ok(text) = fs::read_to_string(&path) else {
        return false;
    };
    let mut lines = text.lines();
    if lines.next() != Some(&format!("regemu-fuzz-shard v{FUZZ_FORMAT_VERSION}")[..]) {
        return false;
    }
    if lines.next() != Some(&format!("shard {}", range.index)[..])
        || lines.next() != Some(&format!("generation {gen}")[..])
        || lines.next() != Some(&format!("streams {} {}", range.start, range.end)[..])
    {
        return false;
    }
    let mut expected = range.start;
    for line in lines {
        if line == "end" {
            return expected == range.end;
        }
        let mut parts = line.split_whitespace();
        if parts.next() != Some("stream") || parts.next() != Some(&expected.to_string()[..]) {
            return false;
        }
        expected += 1;
    }
    false
}

// --------------------------------------------------------------------------
// The merge
// --------------------------------------------------------------------------

/// One entry of the merged, deduplicated failure set.
#[derive(Clone, Debug)]
pub struct MergedFailure {
    /// The shrunk repro.
    pub report: FailureReport,
    /// How many streams found a failure shrinking to this repro.
    pub occurrences: usize,
}

/// The outcome of a whole fuzz campaign.
#[derive(Clone, Debug)]
pub struct FuzzCampaignReport {
    /// The campaign config.
    pub config: FuzzCampaignConfig,
    /// Total iterations executed across all streams.
    pub iterations: usize,
    /// Total corpus entries published across all streams and generations.
    pub corpus_published: usize,
    /// The deduplicated failure set, ordered by `(kind, trace text)`.
    pub failures: Vec<MergedFailure>,
}

impl FuzzCampaignReport {
    /// Whether any failure survived the merge.
    pub fn found(&self) -> bool {
        !self.failures.is_empty()
    }

    /// Deterministic summary text.
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "regemu-fuzz-campaign-report v{FUZZ_FORMAT_VERSION}\n\
             params {} {} {}\nemulation {}\nworkload {}\ncheck {}\nseed {}\n\
             streams {}\ngenerations {}\nbudget {}\niterations {}\n\
             corpus-published {}\nfailures {}\n",
            self.config.fuzz.params.k,
            self.config.fuzz.params.f,
            self.config.fuzz.params.n,
            self.config.fuzz.emulation,
            self.config.fuzz.workload.label(),
            self.config.fuzz.check.name(),
            self.config.fuzz.seed,
            self.config.streams,
            self.config.generations,
            self.config.fuzz.budget,
            self.iterations,
            self.corpus_published,
            self.failures.len(),
        );
        for f in &self.failures {
            out.push_str(&format!(
                "failure kind={} occurrences={} trace-fnv={:016x} verdict={}\n",
                f.report.kind.label(),
                f.occurrences,
                fnv64(f.report.trace.to_text().as_bytes()),
                f.report.verdict,
            ));
        }
        out
    }

    /// The canonical merged failure artifact: every deduplicated shrunk
    /// repro as a full failure report, in merge order. This is the file the
    /// CI determinism job diffs across shard counts.
    pub fn failures_text(&self) -> String {
        let mut out = format!(
            "regemu-fuzz-campaign-failures v{FUZZ_FORMAT_VERSION}\ncount {}\n",
            self.failures.len()
        );
        for f in &self.failures {
            out.push_str(&f.report.to_text());
        }
        out
    }
}

/// Parses one `failures-SSSS-GG.txt` file back into failure reports.
fn parse_failures_file(path: &Path) -> Result<Vec<FailureReport>, CampaignError> {
    let text = fs::read_to_string(path)?;
    let mut lines = text.lines().peekable();
    let header = lines.next().unwrap_or_default();
    if header != format!("regemu-fuzz-failures v{FUZZ_FORMAT_VERSION}") {
        return Err(malformed(path, format!("bad header {header:?}")));
    }
    let count: usize = lines
        .next()
        .and_then(|l| l.strip_prefix("count "))
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| malformed(path, "bad count line"))?;
    let mut reports = Vec::with_capacity(count);
    for _ in 0..count {
        if lines.next() != Some(&format!("regemu-failure-report v{FUZZ_FORMAT_VERSION}")[..]) {
            return Err(malformed(path, "missing failure-report header"));
        }
        let kind_label = lines
            .next()
            .and_then(|l| l.strip_prefix("kind "))
            .ok_or_else(|| malformed(path, "missing kind line"))?;
        let verdict = lines
            .next()
            .and_then(|l| l.strip_prefix("verdict "))
            .ok_or_else(|| malformed(path, "missing verdict line"))?
            .to_string();
        let found_at: usize = lines
            .next()
            .and_then(|l| l.strip_prefix("found-at "))
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| malformed(path, "bad found-at line"))?;
        if lines.next().filter(|l| l.starts_with("replay ")).is_none() {
            return Err(malformed(path, "missing replay line"));
        }
        // The embedded trace runs through its own `end` terminator.
        let mut trace_text = String::new();
        for line in lines.by_ref() {
            trace_text.push_str(line);
            trace_text.push('\n');
            if line == "end" {
                break;
            }
        }
        let trace = RecordedSchedule::from_text(&trace_text)
            .map_err(|reason| malformed(path, format!("embedded trace: {reason}")))?;
        let kind = match kind_label {
            "stuck" => FailureKind::Stuck,
            other => match other.strip_prefix("violation:") {
                Some("atomicity") => FailureKind::Violation(Condition::Atomicity),
                Some("WS-Regularity") => FailureKind::Violation(Condition::WsRegularity),
                Some("WS-Safety") => FailureKind::Violation(Condition::WsSafety),
                _ => {
                    return Err(malformed(path, format!("unknown failure kind {other:?}")));
                }
            },
        };
        reports.push(FailureReport {
            trace,
            kind,
            verdict,
            found_at,
        });
    }
    Ok(reports)
}

/// Merges a completed campaign's failure files into the deduplicated,
/// deterministically ordered failure set and the campaign totals.
///
/// # Errors
///
/// Fails on spool I/O, malformed files, or when some `(shard, generation)`
/// unit has not completed.
pub fn merge_fuzz_campaign(spool: &Path) -> Result<FuzzCampaignReport, CampaignError> {
    let config = load_fuzz_config(spool)?;
    let manifest = FuzzManifest::load(spool)?
        .ok_or_else(|| malformed(&fuzz_manifest_path(spool), "missing manifest".to_string()))?;
    for entry in &manifest.shards {
        for gen in 0..manifest.generations {
            if !shard_gen_is_done(spool, entry.range, gen) {
                return Err(CampaignError::IncompleteMerge {
                    missing_index: entry.range.index,
                });
            }
        }
    }

    let mut iterations = 0;
    let mut corpus_published = 0;
    // Dedup by the shrunk trace text; order by (kind label, trace text).
    let mut merged: BTreeMap<(String, String), MergedFailure> = BTreeMap::new();
    for stream in 0..manifest.streams {
        for gen in 0..manifest.generations {
            for seq in 0.. {
                if corpus_entry_path(spool, stream, gen, seq).exists() {
                    corpus_published += 1;
                } else {
                    break;
                }
            }
            for report in parse_failures_file(&failures_path(spool, stream, gen))? {
                let key = (report.kind.label(), report.trace.to_text());
                merged
                    .entry(key)
                    .and_modify(|m| {
                        m.occurrences += 1;
                        // Normalize to the earliest discovery, so merge
                        // order of duplicates cannot leak into the artifact.
                        if report.found_at < m.report.found_at {
                            m.report.found_at = report.found_at;
                        }
                    })
                    .or_insert(MergedFailure {
                        report,
                        occurrences: 1,
                    });
            }
        }
        iterations += config.stream_budget(stream);
    }

    Ok(FuzzCampaignReport {
        config,
        iterations,
        corpus_published,
        failures: merged.into_values().collect(),
    })
}

// --------------------------------------------------------------------------
// The coordinator
// --------------------------------------------------------------------------

/// Options of a fuzz-campaign run.
#[derive(Clone, Debug)]
pub struct FuzzCampaignOptions {
    /// Spool directory holding the manifest, config, corpus and failures.
    pub spool: PathBuf,
    /// Number of shards to split the stream space into (ignored when
    /// resuming: the existing manifest's plan wins).
    pub shards: usize,
    /// Maximum number of concurrently running worker processes.
    pub workers: usize,
    /// Attempt budget per `(shard, generation)` unit.
    pub max_attempts: u32,
    /// How units are executed.
    pub worker: WorkerMode,
    /// Stop after completing this many `(shard, generation)` units in
    /// *this* invocation, leaving the campaign resumable.
    pub exit_after: Option<usize>,
    /// Suppress progress lines on stderr.
    pub quiet: bool,
}

impl FuzzCampaignOptions {
    /// Reasonable defaults: in-process workers, 4 shards, 2 at a time,
    /// 3 attempts.
    pub fn new(spool: impl Into<PathBuf>) -> Self {
        FuzzCampaignOptions {
            spool: spool.into(),
            shards: 4,
            workers: 2,
            max_attempts: 3,
            worker: WorkerMode::InProcess,
            exit_after: None,
            quiet: false,
        }
    }
}

/// What a [`run_fuzz_campaign`] invocation did.
#[derive(Debug)]
pub struct FuzzCampaignOutcome {
    /// The merged report — `Some` once every unit is done, `None` when the
    /// invocation stopped early ([`FuzzCampaignOptions::exit_after`]).
    pub report: Option<FuzzCampaignReport>,
    /// Total `(shard, generation)` units in the campaign.
    pub units_total: usize,
    /// Units executed by this invocation.
    pub units_run: usize,
    /// Units whose existing completion report was reused (resume).
    pub units_reused: usize,
    /// Worker attempts that failed and were retried.
    pub retries: u32,
}

/// Spawns the worker process of one `(shard, generation)` unit.
fn spawn_unit(
    bin: &Path,
    spool: &Path,
    shard: usize,
    gen: usize,
    quiet: bool,
) -> Result<std::process::Child, String> {
    let mut command = Command::new(bin);
    command
        .arg("--spool")
        .arg(spool)
        .arg("--shard")
        .arg(shard.to_string())
        .arg("--gen")
        .arg(gen.to_string())
        .stdin(Stdio::null())
        .stdout(Stdio::null());
    if quiet {
        // Quiet coordinators silence their workers' progress chatter too
        // (errors still reach stderr).
        command.env("REGEMU_LOG", "off");
    }
    command
        .spawn()
        .map_err(|e| format!("cannot spawn worker {}: {e}", bin.display()))
}

/// Runs (or resumes) a sharded fuzz campaign to completion: initializes the
/// spool, revalidates completed `(shard, generation)` units, executes the
/// rest generation by generation (the corpus-exchange barrier), and merges
/// the failure files into the final [`FuzzCampaignReport`].
///
/// Spawned units of the *same* generation run concurrently up to
/// [`FuzzCampaignOptions::workers`]; the generation barrier is the only
/// synchronization, and it lives in the manifest, so a killed campaign
/// resumes exactly where it stopped.
///
/// # Errors
///
/// Fails on spool I/O or format errors, on a config mismatch with an
/// existing spool, or when a unit exhausts its attempt budget.
pub fn run_fuzz_campaign(
    config: &FuzzCampaignConfig,
    options: &FuzzCampaignOptions,
) -> Result<FuzzCampaignOutcome, CampaignError> {
    let spool = options.spool.as_path();
    let mut manifest = init_fuzz_spool(spool, config, options.shards)?;

    // Revalidate progress: a unit whose completion report is missing or
    // torn sends its shard back to that generation.
    let mut units_reused = 0;
    for i in 0..manifest.shards.len() {
        let mut validated = 0;
        for gen in 0..manifest.shards[i].gens_done {
            if shard_gen_is_done(spool, manifest.shards[i].range, gen) {
                validated += 1;
            } else {
                break;
            }
        }
        units_reused += validated;
        manifest.shards[i].gens_done = validated;
    }
    manifest.store(spool)?;

    let units_total = manifest.shards.len() * manifest.generations;
    let budget = options.max_attempts.max(1);
    let exit_after = options.exit_after.unwrap_or(usize::MAX);
    let mut units_run = 0;
    let mut retries = 0;

    'generations: while let Some(gen) = manifest.current_generation() {
        // Every shard still at `gen` runs it; the concurrency cap only
        // bounds the process pool, never the outcome.
        let mut queue: std::collections::VecDeque<usize> = manifest
            .shards
            .iter()
            .filter(|s| s.gens_done == gen)
            .map(|s| s.range.index)
            .collect();

        // A unit outcome: Ok = worker finished (report still revalidated),
        // Err = why it must be retried.
        struct Settle<'a> {
            spool: &'a Path,
            quiet: bool,
            budget: u32,
            units_total: usize,
            gen: usize,
            units_run: &'a mut usize,
            retries: &'a mut u32,
        }
        impl Settle<'_> {
            fn settle(
                &mut self,
                manifest: &mut FuzzManifest,
                queue: &mut std::collections::VecDeque<usize>,
                shard: usize,
                outcome: Result<(), String>,
            ) -> Result<(), CampaignError> {
                let gen = self.gen;
                let reason = match outcome {
                    Ok(()) if shard_gen_is_done(self.spool, manifest.shards[shard].range, gen) => {
                        manifest.shards[shard].gens_done = gen + 1;
                        manifest.store(self.spool)?;
                        *self.units_run += 1;
                        if !self.quiet {
                            eprintln!(
                                "fuzz-campaign: shard {shard} generation {gen} done \
                                 ({}/{} units)",
                                manifest.shards.iter().map(|s| s.gens_done).sum::<usize>(),
                                self.units_total
                            );
                        }
                        return Ok(());
                    }
                    Ok(()) => "completion report missing or torn".to_string(),
                    Err(reason) => reason,
                };
                *self.retries += 1;
                if manifest.shards[shard].attempts >= self.budget {
                    return Err(CampaignError::ShardFailed {
                        shard,
                        attempts: manifest.shards[shard].attempts,
                        reason,
                    });
                }
                if !self.quiet {
                    eprintln!(
                        "fuzz-campaign: shard {shard} generation {gen} failed ({reason}); \
                         retrying (attempt {} of {})",
                        manifest.shards[shard].attempts + 1,
                        self.budget
                    );
                }
                queue.push_back(shard);
                Ok(())
            }
        }
        let mut ctx = Settle {
            spool,
            quiet: options.quiet,
            budget,
            units_total,
            gen,
            units_run: &mut units_run,
            retries: &mut retries,
        };

        match &options.worker {
            WorkerMode::InProcess => {
                while let Some(shard) = queue.pop_front() {
                    if *ctx.units_run >= exit_after {
                        break 'generations;
                    }
                    manifest.shards[shard].attempts += 1;
                    manifest.store(spool)?;
                    let outcome = run_fuzz_shard_gen(spool, shard, gen).map_err(|e| e.to_string());
                    ctx.settle(&mut manifest, &mut queue, shard, outcome)?;
                }
            }
            WorkerMode::Spawn(bin) => {
                let pool = options.workers.max(1);
                let mut running: Vec<(usize, std::process::Child)> = Vec::new();
                loop {
                    if *ctx.units_run >= exit_after {
                        for (_, mut child) in running {
                            let _ = child.kill();
                            let _ = child.wait();
                        }
                        break 'generations;
                    }
                    while running.len() < pool {
                        let Some(shard) = queue.pop_front() else {
                            break;
                        };
                        manifest.shards[shard].attempts += 1;
                        manifest.store(spool)?;
                        match spawn_unit(bin, spool, shard, gen, options.quiet) {
                            Ok(child) => running.push((shard, child)),
                            Err(reason) => {
                                ctx.settle(&mut manifest, &mut queue, shard, Err(reason))?
                            }
                        }
                    }
                    if running.is_empty() {
                        break;
                    }
                    let mut progressed = false;
                    let mut idx = 0;
                    while idx < running.len() {
                        match running[idx].1.try_wait() {
                            Ok(Some(status)) => {
                                let (shard, _) = running.swap_remove(idx);
                                progressed = true;
                                let outcome = if status.success() {
                                    Ok(())
                                } else {
                                    Err(format!("worker exited with {status}"))
                                };
                                ctx.settle(&mut manifest, &mut queue, shard, outcome)?;
                            }
                            Ok(None) => idx += 1,
                            Err(e) => {
                                let (shard, _) = running.swap_remove(idx);
                                progressed = true;
                                ctx.settle(
                                    &mut manifest,
                                    &mut queue,
                                    shard,
                                    Err(format!("cannot wait on worker: {e}")),
                                )?;
                            }
                        }
                    }
                    if !progressed {
                        std::thread::sleep(std::time::Duration::from_millis(30));
                    }
                }
            }
        }
    }

    let report = if manifest.is_complete() {
        Some(merge_fuzz_campaign(spool)?)
    } else {
        None
    };
    Ok(FuzzCampaignOutcome {
        report,
        units_total,
        units_run,
        units_reused,
        retries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use regemu_core::FaultyKind;

    fn tmp_spool(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "regemu-fuzz-campaign-test-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn small_config() -> FuzzCampaignConfig {
        FuzzCampaignConfig::new(FuzzConfig::new(Params::new(1, 1, 3).unwrap()).budget(48))
            .streams(4)
            .generations(2)
    }

    #[test]
    fn config_text_round_trips_and_fingerprints_pin_the_space() {
        let config = small_config();
        let text = fuzz_config_to_text(&config);
        let parsed = fuzz_config_from_text(&text).unwrap();
        assert_eq!(fuzz_config_to_text(&parsed), text);
        assert_eq!(
            fuzz_config_fingerprint(&parsed),
            fuzz_config_fingerprint(&config)
        );
        let mut other = config;
        other.streams = 5;
        assert_ne!(
            fuzz_config_fingerprint(&other),
            fuzz_config_fingerprint(&small_config())
        );
    }

    #[test]
    fn budget_splits_cover_the_total_exactly() {
        let config = small_config();
        let total: usize = (0..config.streams).map(|s| config.stream_budget(s)).sum();
        assert_eq!(total, config.fuzz.budget);
        for s in 0..config.streams {
            let per_gen: usize = (0..config.generations)
                .map(|g| config.generation_budget(s, g))
                .sum();
            assert_eq!(per_gen, config.stream_budget(s));
        }
        // Stream seeds are distinct.
        let seeds: std::collections::BTreeSet<u64> =
            (0..config.streams).map(|s| config.stream_seed(s)).collect();
        assert_eq!(seeds.len(), config.streams);
    }

    #[test]
    fn manifest_round_trips_and_tracks_the_generation_barrier() {
        let config = small_config();
        let mut manifest = FuzzManifest::plan(&config, 3);
        assert_eq!(manifest.current_generation(), Some(0));
        let parsed = FuzzManifest::from_text(&manifest.to_text()).unwrap();
        assert_eq!(parsed, manifest);
        manifest.shards[0].gens_done = 1;
        assert_eq!(manifest.current_generation(), Some(0));
        for s in &mut manifest.shards {
            s.gens_done = 1;
        }
        assert_eq!(manifest.current_generation(), Some(1));
        for s in &mut manifest.shards {
            s.gens_done = 2;
        }
        assert_eq!(manifest.current_generation(), None);
        assert!(manifest.is_complete());
    }

    #[test]
    fn a_clean_campaign_completes_with_zero_failures_and_reruns_identically() {
        let spool = tmp_spool("clean");
        let config = small_config();
        let options = FuzzCampaignOptions {
            quiet: true,
            ..FuzzCampaignOptions::new(&spool)
        };
        let outcome = run_fuzz_campaign(&config, &options).unwrap();
        let report = outcome.report.expect("campaign must complete");
        assert!(!report.found(), "{}", report.to_text());
        assert_eq!(report.iterations, config.fuzz.budget);
        assert!(report.corpus_published > 0);
        let text = report.to_text();
        let failures = report.failures_text();

        // A second merge of the same spool is byte-identical.
        let again = merge_fuzz_campaign(&spool).unwrap();
        assert_eq!(again.to_text(), text);
        assert_eq!(again.failures_text(), failures);
        let _ = fs::remove_dir_all(&spool);
    }

    #[test]
    fn the_stuck_oracle_is_caught_and_merges_identically_across_shard_counts() {
        let config = FuzzCampaignConfig::new(
            FuzzConfig::new(Params::new(1, 1, 3).unwrap())
                .emulation(FuzzEmulation::Faulty(FaultyKind::DroppedAcks))
                .budget(24),
        )
        .streams(4)
        .generations(2);

        let mut artifacts = Vec::new();
        for shards in [1, 4] {
            let spool = tmp_spool(&format!("stuck-{shards}"));
            let options = FuzzCampaignOptions {
                shards,
                quiet: true,
                ..FuzzCampaignOptions::new(&spool)
            };
            let outcome = run_fuzz_campaign(&config, &options).unwrap();
            let report = outcome.report.expect("campaign must complete");
            assert!(report.found(), "stuck oracle not caught");
            assert!(
                report
                    .failures
                    .iter()
                    .all(|f| f.report.kind == FailureKind::Stuck),
                "{}",
                report.to_text()
            );
            artifacts.push((report.to_text(), report.failures_text()));
            let _ = fs::remove_dir_all(&spool);
        }
        assert_eq!(artifacts[0], artifacts[1], "shard count leaked into merge");
    }

    #[test]
    fn seed_corpus_import_is_idempotent_and_frozen_once_started() {
        // A finished campaign donates its published corpus as seeds.
        let donor = tmp_spool("seed-donor");
        let config = small_config();
        let donor_options = FuzzCampaignOptions {
            quiet: true,
            ..FuzzCampaignOptions::new(&donor)
        };
        run_fuzz_campaign(&config, &donor_options).unwrap();

        let spool = tmp_spool("seed-import");
        let count = import_seed_corpus(&spool, &donor).unwrap();
        assert!(count > 0, "donor campaign published no corpus");
        assert!(seed_entry_path(&spool, 0).exists());
        assert!(!seed_entry_path(&spool, count).exists());
        assert_eq!(seed_corpus(&spool).unwrap().len(), count);
        // Re-importing the same directory changes nothing.
        assert_eq!(import_seed_corpus(&spool, &donor).unwrap(), count);

        // Run the seeded campaign to completion; the manifest now freezes
        // the seed set.
        let options = FuzzCampaignOptions {
            quiet: true,
            ..FuzzCampaignOptions::new(&spool)
        };
        let outcome = run_fuzz_campaign(&config, &options).unwrap();
        assert!(outcome.report.is_some());
        // The identical import is still fine on resume...
        assert_eq!(import_seed_corpus(&spool, &donor).unwrap(), count);
        // ...but a smaller or different set is rejected.
        let other = tmp_spool("seed-other");
        fs::create_dir_all(&other).unwrap();
        let donated = fs::read_to_string(corpus_entry_path(&donor, 0, 0, 0)).unwrap();
        fs::write(other.join("only.trace"), donated).unwrap();
        if count > 1 {
            assert!(import_seed_corpus(&spool, &other).is_err());
        }

        // A file that is not a recorded trace is a malformed-seed error.
        let bad = tmp_spool("seed-bad");
        fs::create_dir_all(&bad).unwrap();
        fs::write(bad.join("junk.trace"), "not a trace\n").unwrap();
        let bad_spool = tmp_spool("seed-bad-spool");
        assert!(matches!(
            import_seed_corpus(&bad_spool, &bad),
            Err(CampaignError::Malformed { .. })
        ));

        for dir in [&donor, &spool, &other, &bad, &bad_spool] {
            let _ = fs::remove_dir_all(dir);
        }
    }

    #[test]
    fn a_seeded_campaign_merges_identically_across_shard_counts() {
        let donor = tmp_spool("seed-shards-donor");
        let config = small_config();
        let donor_options = FuzzCampaignOptions {
            quiet: true,
            ..FuzzCampaignOptions::new(&donor)
        };
        run_fuzz_campaign(&config, &donor_options).unwrap();

        let mut artifacts = Vec::new();
        for shards in [1, 4] {
            let spool = tmp_spool(&format!("seed-shards-{shards}"));
            let seeded = import_seed_corpus(&spool, &donor).unwrap();
            assert!(seeded > 0);
            let options = FuzzCampaignOptions {
                shards,
                quiet: true,
                ..FuzzCampaignOptions::new(&spool)
            };
            let report = run_fuzz_campaign(&config, &options)
                .unwrap()
                .report
                .expect("campaign must complete");
            artifacts.push((report.to_text(), report.failures_text()));
            let _ = fs::remove_dir_all(&spool);
        }
        assert_eq!(
            artifacts[0], artifacts[1],
            "seed corpus broke shard-count invariance"
        );
        let _ = fs::remove_dir_all(&donor);
    }

    #[test]
    fn a_torn_unit_report_is_rerun_on_resume() {
        let spool = tmp_spool("torn");
        let config = small_config();
        let options = FuzzCampaignOptions {
            quiet: true,
            shards: 2,
            ..FuzzCampaignOptions::new(&spool)
        };
        let first = run_fuzz_campaign(&config, &options).unwrap();
        let report = first.report.unwrap();
        // Tear one completion report; resume must re-run exactly that unit
        // (and everything after it in that shard) and still merge
        // byte-identically.
        fs::write(
            fuzz_shard_report_path(&spool, 0, 1),
            "regemu-fuzz-shard v1\ntorn",
        )
        .unwrap();
        let second = run_fuzz_campaign(&config, &options).unwrap();
        assert!(second.units_run >= 1);
        assert!(second.units_reused < first.units_total);
        assert_eq!(second.report.unwrap().to_text(), report.to_text());
        let _ = fs::remove_dir_all(&spool);
    }
}
