//! Integration test: the executable `Ad_i` adversary reproduces the covering
//! behaviour behind the paper's lower bounds (Lemma 1, Theorems 1, 6 and 8)
//! on every register-based emulation.

use regemu::prelude::*;
use regemu_adversary::LowerBoundCampaign;
use regemu_core::register_based_emulations;

#[test]
fn lemma_1_coverage_growth_holds_for_every_register_based_emulation() {
    for params in [
        Params::new(2, 1, 3).unwrap(),
        Params::new(3, 1, 4).unwrap(),
        Params::new(4, 1, 6).unwrap(),
        Params::new(2, 2, 5).unwrap(),
        Params::new(3, 2, 8).unwrap(),
    ] {
        for emulation in register_based_emulations(params) {
            let report = LowerBoundCampaign::new(emulation.as_ref())
                .run(emulation.as_ref())
                .unwrap_or_else(|e| panic!("{} at {params}: {e}", emulation.name()));
            assert!(
                report.satisfies_coverage_growth(),
                "{} at {params}: coverage did not grow by f per write: {report:?}",
                emulation.name()
            );
            assert!(
                report.coverage_always_avoids_protected(),
                "{} at {params}: coverage touched the protected set",
                emulation.name()
            );
            assert!(report.final_covered >= params.k * params.f);
        }
    }
}

#[test]
fn theorem_1_resource_consumption_is_at_least_the_lower_bound() {
    for params in [Params::new(3, 1, 4).unwrap(), Params::new(5, 2, 6).unwrap()] {
        let emulation = SpaceOptimalEmulation::new(params);
        let report = LowerBoundCampaign::new(&emulation).run(&emulation).unwrap();
        assert!(
            report.final_resource_consumption >= register_lower_bound(params),
            "{params}: measured {} < lower bound {}",
            report.final_resource_consumption,
            register_lower_bound(params)
        );
        assert!(report.final_resource_consumption <= register_upper_bound(params));
    }
}

#[test]
fn theorem_6_per_server_occupancy_reaches_k_at_minimal_n() {
    for (k, f) in [(2usize, 1usize), (3, 1), (4, 1), (2, 2)] {
        let params = Params::new(k, f, 2 * f + 1).unwrap();
        let emulation = SpaceOptimalEmulation::new(params);
        let report = LowerBoundCampaign::new(&emulation).run(&emulation).unwrap();
        assert_eq!(
            report.max_covered_on_one_server(),
            k,
            "at n = 2f+1 the adversary pins k covered registers on one server (k={k}, f={f})"
        );
        // And the layout indeed stores k registers on every server.
        let occupancy = emulation.layout().occupancy();
        assert!(occupancy.values().all(|c| *c == k));
    }
}

#[test]
fn theorem_8_resources_grow_while_point_contention_stays_one() {
    let params = Params::new(6, 1, 3).unwrap();
    let emulation = SpaceOptimalEmulation::new(params);
    let report = LowerBoundCampaign::new(&emulation).run(&emulation).unwrap();
    assert!(report.is_write_sequential_evidence());
    // Coverage (and hence the number of registers that must exist) grows
    // linearly in the number of writes even though no two operations ever
    // overlap — no function of point contention can bound it.
    let first = report.iterations.first().unwrap().covered;
    let last = report.iterations.last().unwrap().covered;
    assert!(last >= first + (params.k - 1) * params.f);
}

#[test]
fn theorem_5_partition_argument() {
    use regemu_adversary::demonstrate_partition;
    // n = 2f: violation; n = 2f + 1: safe. (Also covered by unit tests; here
    // we assert the checker integration end-to-end.)
    let bad = demonstrate_partition(4, 2).unwrap();
    assert!(bad.is_violation());
    assert!(check_ws_safe(&bad.history, &SequentialSpec::register()).is_err());

    let good = demonstrate_partition(5, 2).unwrap();
    assert!(!good.is_violation());
    assert!(check_ws_safe(&good.history, &SequentialSpec::register()).is_ok());
}

#[test]
fn adversary_cannot_grow_coverage_of_rmw_based_emulations() {
    // The other side of the separation: against max-register/CAS emulations
    // the same adversary is powerless — space stays at 2f + 1.
    let params = Params::new(5, 1, 3).unwrap();
    for emulation in [
        Box::new(AbdMaxRegisterEmulation::new(params, false)) as Box<dyn Emulation>,
        Box::new(AbdCasEmulation::new(params, false)) as Box<dyn Emulation>,
    ] {
        let report = LowerBoundCampaign::new(emulation.as_ref())
            .run(emulation.as_ref())
            .unwrap();
        assert!(
            report.final_resource_consumption <= 2 * params.f + 1,
            "{}",
            emulation.name()
        );
        assert!(report.final_covered <= 2 * params.f + 1);
    }
}
