//! Timestamp helpers.
//!
//! Emulated writes are ordered by the timestamp component of [`Value`]. The
//! paper's algorithms only need timestamps that grow across sequential writes
//! (safety is only claimed for write-sequential runs, so no tie-breaking is
//! required); we nevertheless embed the writer index in the low bits so that
//! timestamps are *globally unique*, which lets the same protocols be used in
//! the concurrent stress tests and in the atomic (write-back) ABD variant.
//!
//! [`Value`]: regemu_fpsm::Value

/// Number of low bits reserved for the writer index.
pub const WRITER_BITS: u32 = 16;

/// Maximum number of writers distinguishable by a timestamp.
pub const MAX_WRITERS: usize = (1 << WRITER_BITS) - 1;

/// Composes a timestamp from a round number and a 0-based writer index.
///
/// # Panics
///
/// Panics if `writer >= MAX_WRITERS`.
pub fn compose(round: u64, writer: usize) -> u64 {
    assert!(
        writer < MAX_WRITERS,
        "writer index {writer} exceeds the timestamp capacity"
    );
    (round << WRITER_BITS) | (writer as u64 + 1)
}

/// The round number encoded in a timestamp.
pub fn round_of(ts: u64) -> u64 {
    ts >> WRITER_BITS
}

/// The 0-based writer index encoded in a timestamp, if any (the initial
/// timestamp 0 encodes no writer).
pub fn writer_of(ts: u64) -> Option<usize> {
    let low = ts & ((1 << WRITER_BITS) - 1);
    if low == 0 {
        None
    } else {
        Some(low as usize - 1)
    }
}

/// The timestamp a writer should use after observing `current`: one round
/// higher, tagged with the writer's own index.
pub fn next(current: u64, writer: usize) -> u64 {
    compose(round_of(current) + 1, writer)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compose_and_decompose_roundtrip() {
        let ts = compose(7, 3);
        assert_eq!(round_of(ts), 7);
        assert_eq!(writer_of(ts), Some(3));
        assert_eq!(writer_of(0), None);
        assert_eq!(round_of(0), 0);
    }

    #[test]
    fn next_is_strictly_larger_regardless_of_writer() {
        let a = next(0, 5);
        let b = next(a, 0);
        let c = next(b, 9);
        assert!(a > 0 && b > a && c > b);
    }

    #[test]
    fn timestamps_of_distinct_writers_in_the_same_round_differ() {
        assert_ne!(compose(4, 0), compose(4, 1));
        assert!(compose(5, 0) > compose(4, MAX_WRITERS - 1));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn too_many_writers_panics() {
        compose(1, MAX_WRITERS);
    }
}
