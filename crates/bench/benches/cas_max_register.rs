//! Criterion bench: contended throughput of the CAS-based max-register
//! (Algorithm 1) versus the fetch-max baseline — the time/space trade-off of
//! the paper's discussion section, measured on real threads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use regemu_core::{CasMaxRegister, FetchMaxRegister, SharedMaxRegister};
use std::sync::Arc;

const WRITES_PER_THREAD: u64 = 2_000;

fn contended_writes(reg: Arc<dyn SharedMaxRegister>, threads: usize) {
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let reg = reg.clone();
            std::thread::spawn(move || {
                for i in 0..WRITES_PER_THREAD {
                    reg.write_max(t as u64 * 1_000_000 + i);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

fn bench_contended_write_max(c: &mut Criterion) {
    let mut group = c.benchmark_group("cas_max_register/contended_write_max");
    for threads in [1usize, 2, 4] {
        group.throughput(Throughput::Elements(threads as u64 * WRITES_PER_THREAD));
        group.bench_with_input(
            BenchmarkId::new("cas_algorithm1", threads),
            &threads,
            |b, &threads| {
                b.iter(|| contended_writes(Arc::new(CasMaxRegister::new(0)), threads));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("fetch_max", threads),
            &threads,
            |b, &threads| {
                b.iter(|| contended_writes(Arc::new(FetchMaxRegister::new(0)), threads));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_contended_write_max);
criterion_main!(benches);
