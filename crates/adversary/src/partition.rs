//! Executable partitioning argument for Theorem 5 (`n ≥ 2f + 1`).
//!
//! Theorem 5 states that no `f`-tolerant WS-Safe obstruction-free emulation
//! exists with `n ≤ 2f` servers. The classic proof is a partitioning
//! argument: any emulation that is live while `f` servers are silent can be
//! driven so that a write talks only to one half of the servers and a later
//! read only to the other half — the halves do not intersect when `n ≤ 2f`,
//! so the read misses the write and WS-Safety is violated.
//!
//! This module makes the argument executable. [`QuorumEmulation`] is the
//! natural `n - f` quorum protocol (one max-register per server); any
//! `f`-tolerant emulation must return after hearing from `n - f` servers, so
//! its behaviour under the partitioning schedule is representative.
//! [`demonstrate_partition`] builds the adversarial schedule and returns the
//! resulting high-level history:
//!
//! * with `n = 2f` the history **violates WS-Safety** — the impossibility;
//! * with `n = 2f + 1` (same schedule) the quorums intersect and the history
//!   is WS-Safe, matching the `2f + 1` upper bound.

use regemu_fpsm::{
    BaseOp, BaseResponse, ClientProtocol, Context, Delivery, HighOp, HighResponse, ObjectId,
    ObjectKind, OpId, ServerId, SimConfig, SimError, Simulation, Topology, Value,
};
use regemu_spec::HighHistory;
use std::collections::BTreeSet;

/// A minimal `n - f` quorum register emulation over one max-register per
/// server, used only to make the partitioning argument concrete. It is the
/// standard single-phase-write / single-phase-read construction: correct for
/// `n ≥ 2f + 1`, necessarily unsafe for `n ≤ 2f`.
#[derive(Debug)]
pub struct QuorumEmulation {
    /// Number of servers.
    pub n: usize,
    /// Failure threshold.
    pub f: usize,
    topology: Topology,
    objects: Vec<ObjectId>,
}

impl QuorumEmulation {
    /// Builds the emulation over `n` servers, one max-register each.
    pub fn new(n: usize, f: usize) -> Self {
        assert!(
            n > f,
            "need more servers than failures for the quorum to be nonempty"
        );
        let mut topology = Topology::new(n);
        let objects = topology.add_object_per_server(ObjectKind::MaxRegister);
        QuorumEmulation {
            n,
            f,
            topology,
            objects,
        }
    }

    /// A fresh simulation of the emulation (without a fault budget: the
    /// demonstration only delays messages, it never crashes servers).
    pub fn build_simulation(&self) -> Simulation {
        Simulation::new(self.topology.clone(), SimConfig::unchecked())
    }

    /// Client protocol: writes `write-max` to all servers and returns after
    /// `n - f` acks; reads `read-max` from all servers and returns the
    /// maximum after `n - f` replies.
    pub fn client(&self) -> QuorumClient {
        QuorumClient {
            objects: self.objects.clone(),
            quorum: self.n - self.f,
            acked: BTreeSet::new(),
            best: Value::INITIAL,
            pending_kind: None,
        }
    }
}

/// The client protocol of [`QuorumEmulation`].
#[derive(Debug)]
pub struct QuorumClient {
    objects: Vec<ObjectId>,
    quorum: usize,
    acked: BTreeSet<ObjectId>,
    best: Value,
    pending_kind: Option<HighOp>,
}

impl ClientProtocol for QuorumClient {
    fn on_invoke(&mut self, op: HighOp, ctx: &mut Context<'_>) {
        self.acked.clear();
        self.best = Value::INITIAL;
        self.pending_kind = Some(op);
        for b in &self.objects {
            match op {
                HighOp::Write(v) => {
                    ctx.trigger(*b, BaseOp::WriteMax(Value::new(1, v)));
                }
                HighOp::Read => {
                    ctx.trigger(*b, BaseOp::ReadMax);
                }
            }
        }
    }

    fn on_response(&mut self, delivery: Delivery, ctx: &mut Context<'_>) {
        let Some(op) = self.pending_kind else { return };
        match delivery.response {
            BaseResponse::WriteMaxAck => {
                self.acked.insert(delivery.object);
            }
            BaseResponse::MaxValue(v) => {
                self.best = self.best.max(v);
                self.acked.insert(delivery.object);
            }
            _ => {}
        }
        if self.acked.len() >= self.quorum && !ctx.has_completed() {
            self.pending_kind = None;
            match op {
                HighOp::Write(_) => ctx.complete(HighResponse::WriteAck),
                HighOp::Read => ctx.complete(HighResponse::ReadValue(self.best.val)),
            }
        }
    }

    fn name(&self) -> &'static str {
        "quorum-register"
    }
}

/// The outcome of the partitioning schedule.
#[derive(Debug)]
pub struct PartitionOutcome {
    /// The high-level schedule produced by the run (a complete write followed
    /// by a non-concurrent complete read).
    pub history: HighHistory,
    /// The value returned by the read.
    pub read_value: u64,
    /// The value written by the write.
    pub written_value: u64,
}

impl PartitionOutcome {
    /// Whether the read missed the preceding write — the WS-Safety violation
    /// the partition argument is after.
    pub fn is_violation(&self) -> bool {
        self.read_value != self.written_value
    }
}

/// Runs the partitioning schedule against [`QuorumEmulation`] with the given
/// `n` and `f`: the write hears only from servers `0..n-f`, the subsequent
/// read hears only from servers `f..n`.
///
/// # Errors
///
/// Propagates simulation errors (none are expected for valid `n > f`).
pub fn demonstrate_partition(n: usize, f: usize) -> Result<PartitionOutcome, SimError> {
    let emulation = QuorumEmulation::new(n, f);
    let mut sim = emulation.build_simulation();
    let writer = sim.register_client(Box::new(emulation.client()));
    let reader = sim.register_client(Box::new(emulation.client()));

    let written_value = 42;
    let write = sim.invoke(writer, HighOp::Write(written_value))?;
    // Deliver the write's low-level operations only on the first n - f
    // servers; the environment delays the rest indefinitely.
    let write_side: BTreeSet<ServerId> = (0..(n - f)).map(ServerId::new).collect();
    deliver_only_on(&mut sim, writer, &write_side)?;
    assert!(
        sim.result_of(write).is_some(),
        "the write must return after n - f acks"
    );

    // The read starts strictly after the write returned, and hears only from
    // the *last* n - f servers. The writer's leftover low-level writes on
    // those servers stay delayed (the environment keeps withholding them).
    let read = sim.invoke(reader, HighOp::Read)?;
    let read_side: BTreeSet<ServerId> = (f..n).map(ServerId::new).collect();
    deliver_only_on(&mut sim, reader, &read_side)?;
    assert!(
        sim.result_of(read).is_some(),
        "the read must return after n - f replies"
    );

    let read_value = sim
        .result_of(read)
        .and_then(|r| r.payload())
        .expect("read returns a payload");
    Ok(PartitionOutcome {
        history: HighHistory::from_run(sim.history()),
        read_value,
        written_value,
    })
}

/// Delivers every deliverable pending operation of `client` whose server
/// belongs to `allowed`, until none remains. Operations of other clients are
/// withheld, modelling the asymmetric delays of the partition argument.
fn deliver_only_on(
    sim: &mut Simulation,
    client: regemu_fpsm::ClientId,
    allowed: &BTreeSet<ServerId>,
) -> Result<(), SimError> {
    loop {
        let next: Option<OpId> = sim
            .deliverable_ops()
            .filter(|p| p.client == client && allowed.contains(&p.server))
            .map(|p| p.op_id)
            .min();
        match next {
            Some(op) => {
                sim.deliver(op)?;
            }
            None => return Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regemu_spec::{check_ws_safe, SequentialSpec};

    #[test]
    fn with_2f_servers_the_partition_violates_ws_safety() {
        for f in 1..=3usize {
            let outcome = demonstrate_partition(2 * f, f).unwrap();
            assert!(
                outcome.is_violation(),
                "n = 2f must admit a violation (f = {f})"
            );
            let err = check_ws_safe(&outcome.history, &SequentialSpec::register());
            assert!(
                err.is_err(),
                "the produced schedule must fail the WS-Safety checker"
            );
        }
    }

    #[test]
    fn with_2f_plus_1_servers_the_same_schedule_is_safe() {
        for f in 1..=3usize {
            let outcome = demonstrate_partition(2 * f + 1, f).unwrap();
            assert!(
                !outcome.is_violation(),
                "n = 2f + 1 quorums intersect (f = {f})"
            );
            check_ws_safe(&outcome.history, &SequentialSpec::register()).unwrap();
        }
    }

    #[test]
    fn quorum_emulation_round_trips_under_fair_delivery() {
        let emulation = QuorumEmulation::new(3, 1);
        let mut sim = emulation.build_simulation();
        let writer = sim.register_client(Box::new(emulation.client()));
        let reader = sim.register_client(Box::new(emulation.client()));
        let mut driver = regemu_fpsm::FairDriver::new(4);
        let w = sim.invoke(writer, HighOp::Write(9)).unwrap();
        driver.run_until_complete(&mut sim, w, 1000).unwrap();
        let r = sim.invoke(reader, HighOp::Read).unwrap();
        driver.run_until_complete(&mut sim, r, 1000).unwrap();
        assert_eq!(sim.result_of(r), Some(HighResponse::ReadValue(9)));
    }

    #[test]
    #[should_panic(expected = "more servers than failures")]
    fn degenerate_configurations_are_rejected() {
        QuorumEmulation::new(1, 1);
    }
}
