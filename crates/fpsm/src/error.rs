//! Errors produced by the simulation engine.

use crate::ids::{ClientId, ObjectId, OpId, ServerId};
use crate::object::ObjectError;
use std::fmt;

/// Errors returned by [`crate::sim::Simulation`] operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The referenced client does not exist.
    UnknownClient(ClientId),
    /// The referenced server does not exist.
    UnknownServer(ServerId),
    /// The referenced base object does not exist.
    UnknownObject(ObjectId),
    /// The referenced low-level operation is not pending.
    UnknownOp(OpId),
    /// The client has crashed and cannot invoke operations.
    ClientCrashed(ClientId),
    /// The client already has a high-level operation in progress; its
    /// schedule must be well-formed (sequential per client).
    ClientBusy(ClientId),
    /// The target server has crashed, so the pending operation can never be
    /// delivered.
    ServerCrashed(ServerId),
    /// A base object rejected the operation.
    Object(ObjectError),
    /// Crashing another server would exceed the configured failure threshold
    /// `f`.
    FaultBudgetExceeded {
        /// Configured failure threshold.
        f: usize,
        /// Number of servers already crashed.
        already_crashed: usize,
    },
    /// A driver gave up after executing the given number of steps without
    /// reaching its goal (e.g. the target operation never completed because
    /// every remaining pending operation is blocked or crashed).
    Stuck {
        /// Number of steps executed before giving up.
        steps: u64,
        /// Human-readable description of what the driver was waiting for.
        waiting_for: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownClient(c) => write!(f, "unknown client {c}"),
            SimError::UnknownServer(s) => write!(f, "unknown server {s}"),
            SimError::UnknownObject(b) => write!(f, "unknown base object {b}"),
            SimError::UnknownOp(op) => write!(f, "no pending low-level operation {op}"),
            SimError::ClientCrashed(c) => write!(f, "client {c} has crashed"),
            SimError::ClientBusy(c) => {
                write!(f, "client {c} already has a high-level operation in progress")
            }
            SimError::ServerCrashed(s) => write!(f, "server {s} has crashed"),
            SimError::Object(e) => write!(f, "base object error: {e}"),
            SimError::FaultBudgetExceeded { f: thr, already_crashed } => write!(
                f,
                "crashing another server would exceed the failure threshold ({already_crashed} of {thr} already crashed)"
            ),
            SimError::Stuck { steps, waiting_for } => {
                write!(f, "driver stuck after {steps} steps while waiting for {waiting_for}")
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Object(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ObjectError> for SimError {
    fn from(e: ObjectError) -> Self {
        SimError::Object(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::ObjectKind;
    use crate::op::BaseOp;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        assert_eq!(
            SimError::UnknownClient(ClientId::new(2)).to_string(),
            "unknown client c2"
        );
        assert!(SimError::ClientBusy(ClientId::new(0))
            .to_string()
            .contains("in progress"));
        let e = SimError::FaultBudgetExceeded {
            f: 1,
            already_crashed: 1,
        };
        assert!(e.to_string().contains("failure threshold"));
    }

    #[test]
    fn object_error_converts_and_sources() {
        let oe = ObjectError::UnsupportedOp {
            kind: ObjectKind::Register,
            op: BaseOp::ReadMax,
        };
        let se: SimError = oe.into();
        assert!(matches!(se, SimError::Object(_)));
        assert!(std::error::Error::source(&se).is_some());
        assert!(std::error::Error::source(&SimError::UnknownOp(OpId::new(1))).is_none());
    }
}
