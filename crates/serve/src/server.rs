//! The live server: one paper server's base objects behind a transport.
//!
//! A server hosts the slice `δ⁻¹(s)` of the topology's base objects
//! ([`regemu_fpsm::ServerNode`]) and answers [`WireMsg::Request`]s with
//! [`WireMsg::Response`]s. Applying a request while holding the state lock
//! *is* the operation's linearization point — exactly Assumption 1 of the
//! paper, which is what makes a live run checkable against the simulator.
//!
//! Two front-ends share the same connection handler: [`serve_tcp`] accepts
//! loopback/network clients thread-per-connection (no async runtime), and
//! [`serve_channel`] hands out in-process [`ChannelTransport`] endpoints for
//! tests and doc examples.

use crate::transport::{ChannelTransport, ServeError, Transport};
use regemu_core::wire::{FaultCode, NodeStats, WireMsg};
use regemu_fpsm::{BaseOp, NodeError, ObjectError, ObjectId, ServerNode};
use regemu_obs::{Counter, Gauge};
use regemu_workloads::conform::{ConformRecord, LowOpKind, CONFORM_HEADER};
use std::io::Write;
use std::net::{SocketAddr, TcpListener};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long a connection handler sleeps in `recv_timeout` before re-checking
/// the shutdown flag.
const POLL: Duration = Duration::from_millis(50);

/// Per-server telemetry handles into the global `regemu-obs` registry.
///
/// The counters live under `serve.server<N>.*` so a multi-node process (the
/// loopback tests boot several) keeps each server's tallies apart. Handles
/// are resolved once at boot and shared by every connection handler; the
/// wire-visible [`NodeStats`] frame is a plain read of these atomics plus
/// the state lock's clock, so scraping never perturbs request handling.
struct NodeMetrics {
    requests: Arc<Counter>,
    responses: Arc<Counter>,
    faults: Arc<Counter>,
    in_flight: Arc<Gauge>,
}

impl NodeMetrics {
    fn for_server(index: usize) -> Arc<NodeMetrics> {
        let registry = regemu_obs::global();
        Arc::new(NodeMetrics {
            requests: registry.counter(&format!("serve.server{index}.requests")),
            responses: registry.counter(&format!("serve.server{index}.responses")),
            faults: registry.counter(&format!("serve.server{index}.faults")),
            in_flight: registry.gauge(&format!("serve.server{index}.in_flight")),
        })
    }

    fn stats(&self, applied: u64) -> NodeStats {
        NodeStats {
            requests: self.requests.get(),
            responses: self.responses.get(),
            faults: self.faults.get(),
            in_flight: self.in_flight.get().max(0) as u64,
            applied,
        }
    }
}

/// Mutable server state shared by all connection handlers.
struct ServerState {
    node: ServerNode,
    /// Logical clock: incremented once per applied (linearized) operation.
    clock: u64,
    /// Conformance log sink; `respond` lines are flushed as they happen so a
    /// killed process still leaves a parseable log.
    log: Option<std::fs::File>,
    /// Telemetry handles shared with every connection handler.
    metrics: Arc<NodeMetrics>,
}

impl ServerState {
    fn apply_request(&mut self, op_id: u64, object: u64, op: &BaseOp) -> WireMsg {
        let oid = ObjectId::new(object as usize);
        match self.node.apply(oid, op) {
            Ok(response) => {
                self.clock += 1;
                if let Some(file) = &mut self.log {
                    let line = ConformRecord::Respond {
                        clock: self.clock,
                        server: self.node.server().index(),
                        object: object as usize,
                        kind: LowOpKind::of(op),
                    }
                    .to_line();
                    // Log failures must not take the server down mid-run;
                    // the conformance merge detects the truncated log.
                    let _ = writeln!(file, "{line}");
                    let _ = file.flush();
                }
                WireMsg::Response {
                    op_id,
                    clock: self.clock,
                    response,
                }
            }
            Err(NodeError::NotHosted { .. }) => WireMsg::Fault {
                op_id,
                code: FaultCode::NotHosted,
            },
            Err(NodeError::Object(ObjectError::UnsupportedOp { .. })) => WireMsg::Fault {
                op_id,
                code: FaultCode::UnsupportedOp,
            },
            Err(NodeError::Object(ObjectError::Crashed(_))) => WireMsg::Fault {
                op_id,
                code: FaultCode::Crashed,
            },
        }
    }
}

/// Handle to a running server (TCP or in-process).
///
/// Dropping the handle does **not** stop the server; call
/// [`ServerHandle::shutdown`] then [`ServerHandle::join`].
pub struct ServerHandle {
    local_addr: Option<SocketAddr>,
    state: Arc<Mutex<ServerState>>,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound TCP address ([`serve_tcp`] only).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.local_addr
    }

    /// Total low-level operations applied so far.
    pub fn applied(&self) -> u64 {
        self.state.lock().expect("server state poisoned").clock
    }

    /// A point-in-time [`NodeStats`] snapshot — the same frame the server
    /// sends on the wire for a [`WireMsg::StatsQuery`].
    pub fn stats(&self) -> NodeStats {
        let state = self.state.lock().expect("server state poisoned");
        state.metrics.stats(state.clock)
    }

    /// Asks the accept loop and every connection handler to stop.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Waits for all server threads to exit, then closes the conformance log
    /// cleanly (`clock`/`end` trailer). Implies [`ServerHandle::shutdown`].
    pub fn join(mut self) -> Result<(), ServeError> {
        self.shutdown();
        if let Some(accept) = self.accept.take() {
            accept
                .join()
                .map_err(|_| ServeError::Config("server thread panicked".to_string()))?;
        }
        let mut state = self.state.lock().expect("server state poisoned");
        if let Some(mut file) = state.log.take() {
            writeln!(file, "clock {}", state.clock)?;
            writeln!(file, "end")?;
            file.flush()?;
        }
        Ok(())
    }
}

/// A point-in-time [`NodeStats`] snapshot of a running server — free-function
/// form of [`ServerHandle::stats`] for callers holding only a reference.
pub fn node_stats(handle: &ServerHandle) -> NodeStats {
    handle.stats()
}

fn open_log(path: &Path) -> Result<std::fs::File, ServeError> {
    let mut file = std::fs::File::create(path)?;
    writeln!(file, "{CONFORM_HEADER}")?;
    file.flush()?;
    Ok(file)
}

fn handle_connection<T: Transport>(
    mut transport: T,
    state: &Arc<Mutex<ServerState>>,
    shutdown: &AtomicBool,
) {
    let metrics = Arc::clone(&state.lock().expect("server state poisoned").metrics);
    while !shutdown.load(Ordering::SeqCst) {
        match transport.recv_timeout(POLL) {
            Ok(Some(WireMsg::Request { op_id, object, op })) => {
                metrics.requests.incr();
                // Raised before taking the state lock so the gauge counts
                // requests queued behind the linearization point too.
                metrics.in_flight.add(1);
                let reply = state
                    .lock()
                    .expect("server state poisoned")
                    .apply_request(op_id, object, &op);
                metrics.in_flight.add(-1);
                match &reply {
                    WireMsg::Fault { .. } => metrics.faults.incr(),
                    _ => metrics.responses.incr(),
                }
                if transport.send(&reply).is_err() {
                    return;
                }
            }
            Ok(Some(WireMsg::StatsQuery)) => {
                let stats = {
                    let state = state.lock().expect("server state poisoned");
                    state.metrics.stats(state.clock)
                };
                if transport.send(&WireMsg::StatsReply { stats }).is_err() {
                    return;
                }
            }
            // Clients only send requests; anything else is a confused peer.
            Ok(Some(_)) => return,
            Ok(None) => {}
            // Disconnect or garbage: drop the connection, keep the server.
            Err(_) => return,
        }
    }
}

fn make_state(node: ServerNode, log: Option<&Path>) -> Result<Arc<Mutex<ServerState>>, ServeError> {
    let log = match log {
        Some(path) => Some(open_log(path)?),
        None => None,
    };
    let metrics = NodeMetrics::for_server(node.server().index());
    Ok(Arc::new(Mutex::new(ServerState {
        node,
        clock: 0,
        log,
        metrics,
    })))
}

/// Boots `node` on a TCP listener bound to `listen` (use port 0 for an
/// ephemeral port; read it back from [`ServerHandle::local_addr`]).
///
/// When `log` is given, every applied operation appends a `respond` line to
/// the conformance log at that path.
pub fn serve_tcp(
    node: ServerNode,
    listen: SocketAddr,
    log: Option<&Path>,
) -> Result<ServerHandle, ServeError> {
    let listener = TcpListener::bind(listen)?;
    let local_addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let state = make_state(node, log)?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let accept = {
        let state = Arc::clone(&state);
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || {
            let mut handlers: Vec<JoinHandle<()>> = Vec::new();
            while !shutdown.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if stream.set_nonblocking(false).is_err() {
                            continue;
                        }
                        let Ok(transport) = crate::transport::TcpTransport::from_stream(stream)
                        else {
                            continue;
                        };
                        let state = Arc::clone(&state);
                        let shutdown = Arc::clone(&shutdown);
                        handlers.push(std::thread::spawn(move || {
                            handle_connection(transport, &state, &shutdown)
                        }));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            }
            for handler in handlers {
                let _ = handler.join();
            }
        })
    };
    Ok(ServerHandle {
        local_addr: Some(local_addr),
        state,
        shutdown,
        accept: Some(accept),
    })
}

/// Mints in-process connections to a [`serve_channel`] server.
#[derive(Clone)]
pub struct ChannelConnector {
    tx: mpsc::Sender<ChannelTransport>,
    name: String,
}

impl ChannelConnector {
    /// Opens a new connection, returning the client-side transport.
    pub fn connect(&self) -> Result<ChannelTransport, ServeError> {
        let (client_end, server_end) = ChannelTransport::pair("client", &self.name);
        self.tx
            .send(server_end)
            .map_err(|_| ServeError::Disconnected {
                peer: self.name.clone(),
            })?;
        Ok(client_end)
    }
}

/// Boots `node` in-process: clients connect through the returned
/// [`ChannelConnector`] instead of a socket. Same handler, same wire codec —
/// only the byte pipe differs.
pub fn serve_channel(
    node: ServerNode,
    log: Option<&Path>,
) -> Result<(ServerHandle, ChannelConnector), ServeError> {
    let name = format!("server-{}", node.server().index());
    let state = make_state(node, log)?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let (tx, rx) = mpsc::channel::<ChannelTransport>();
    let accept = {
        let state = Arc::clone(&state);
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || {
            let mut handlers: Vec<JoinHandle<()>> = Vec::new();
            while !shutdown.load(Ordering::SeqCst) {
                match rx.recv_timeout(POLL) {
                    Ok(transport) => {
                        let state = Arc::clone(&state);
                        let shutdown = Arc::clone(&shutdown);
                        handlers.push(std::thread::spawn(move || {
                            handle_connection(transport, &state, &shutdown)
                        }));
                    }
                    Err(mpsc::RecvTimeoutError::Timeout) => {}
                    Err(mpsc::RecvTimeoutError::Disconnected) => break,
                }
            }
            for handler in handlers {
                let _ = handler.join();
            }
        })
    };
    Ok((
        ServerHandle {
            local_addr: None,
            state,
            shutdown,
            accept: Some(accept),
        },
        ChannelConnector { tx, name },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use regemu_fpsm::{BaseResponse, ObjectKind, ServerId, Topology, Value};
    use std::time::Instant;

    fn one_register_node() -> (Topology, ServerNode) {
        let mut t = Topology::new(1);
        t.add_object_per_server(ObjectKind::Register);
        let node = ServerNode::new(&t, ServerId::new(0));
        (t, node)
    }

    fn request(op_id: u64, object: u64, op: BaseOp) -> WireMsg {
        WireMsg::Request { op_id, object, op }
    }

    #[test]
    fn channel_server_applies_ops_and_stamps_clock() {
        let (_t, node) = one_register_node();
        let (handle, connector) = serve_channel(node, None).unwrap();
        let mut conn = connector.connect().unwrap();
        conn.send(&request(1, 0, BaseOp::Write(Value::new(1, 7))))
            .unwrap();
        let reply = recv(&mut conn);
        assert_eq!(
            reply,
            WireMsg::Response {
                op_id: 1,
                clock: 1,
                response: BaseResponse::WriteAck,
            }
        );
        conn.send(&request(2, 0, BaseOp::Read)).unwrap();
        assert_eq!(
            recv(&mut conn),
            WireMsg::Response {
                op_id: 2,
                clock: 2,
                response: BaseResponse::ReadValue(Value::new(1, 7)),
            }
        );
        assert_eq!(handle.applied(), 2);
        handle.join().unwrap();
    }

    #[test]
    fn faults_are_reported_not_panicked() {
        let (_t, node) = one_register_node();
        let (handle, connector) = serve_channel(node, None).unwrap();
        let mut conn = connector.connect().unwrap();
        // Object 7 does not exist on this server.
        conn.send(&request(1, 7, BaseOp::Read)).unwrap();
        assert_eq!(
            recv(&mut conn),
            WireMsg::Fault {
                op_id: 1,
                code: FaultCode::NotHosted,
            }
        );
        // write-max on a plain register is outside the interface.
        conn.send(&request(2, 0, BaseOp::WriteMax(Value::new(1, 1))))
            .unwrap();
        assert_eq!(
            recv(&mut conn),
            WireMsg::Fault {
                op_id: 2,
                code: FaultCode::UnsupportedOp,
            }
        );
        assert_eq!(handle.applied(), 0);
        handle.join().unwrap();
    }

    #[test]
    fn stats_query_reports_node_counters_without_dropping_the_connection() {
        let (_t, node) = one_register_node();
        let (handle, connector) = serve_channel(node, None).unwrap();
        let mut conn = connector.connect().unwrap();
        conn.send(&request(1, 0, BaseOp::Write(Value::new(1, 3))))
            .unwrap();
        assert!(matches!(recv(&mut conn), WireMsg::Response { .. }));
        // Object 9 is not hosted: a fault, counted separately.
        conn.send(&request(2, 9, BaseOp::Read)).unwrap();
        assert!(matches!(recv(&mut conn), WireMsg::Fault { .. }));
        conn.send(&WireMsg::StatsQuery).unwrap();
        let WireMsg::StatsReply { stats } = recv(&mut conn) else {
            panic!("expected a stats reply");
        };
        // Counter names are global per server index, so parallel tests may
        // also bump them; assert lower bounds plus the per-handle clock.
        assert_eq!(stats.applied, 1);
        assert!(stats.requests >= 2);
        assert!(stats.responses >= 1);
        assert!(stats.faults >= 1);
        assert_eq!(node_stats(&handle).applied, 1);
        // The connection is still usable after a stats exchange.
        conn.send(&request(3, 0, BaseOp::Read)).unwrap();
        assert!(matches!(recv(&mut conn), WireMsg::Response { .. }));
        handle.join().unwrap();
    }

    #[test]
    fn tcp_server_round_trips_and_writes_conform_log() {
        use regemu_workloads::conform::ConformLog;
        let dir = std::env::temp_dir().join(format!("regemu-serve-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let log_path = dir.join("node0.conform");
        let (_t, node) = one_register_node();
        let handle = serve_tcp(
            node,
            "127.0.0.1:0".parse().unwrap(),
            Some(log_path.as_path()),
        )
        .unwrap();
        let addr = handle.local_addr().unwrap();
        let mut conn =
            crate::transport::TcpTransport::connect(addr, Duration::from_secs(1)).unwrap();
        conn.send(&request(5, 0, BaseOp::Write(Value::new(2, 9))))
            .unwrap();
        assert!(matches!(
            recv(&mut conn),
            WireMsg::Response { clock: 1, .. }
        ));
        handle.join().unwrap();
        let log = ConformLog::load(&log_path).unwrap();
        assert!(log.complete);
        assert_eq!(log.final_clock, 1);
        assert_eq!(
            log.records,
            vec![ConformRecord::Respond {
                clock: 1,
                server: 0,
                object: 0,
                kind: LowOpKind::Write,
            }]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn recv(t: &mut dyn Transport) -> WireMsg {
        let deadline = Instant::now() + Duration::from_secs(5);
        while Instant::now() < deadline {
            if let Some(msg) = t.recv_timeout(Duration::from_millis(100)).unwrap() {
                return msg;
            }
        }
        panic!("server did not reply in time");
    }
}
