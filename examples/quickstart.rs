//! Quickstart: emulate an f-tolerant multi-writer register from crash-prone
//! servers that only expose plain read/write registers.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! The example describes the whole experiment as one [`Scenario`] value —
//! the paper's space-optimal construction (Algorithm 2) for `k = 3` writers,
//! `f = 1` tolerated crash and `n = 5` servers, three writes and a read
//! under a seeded fair scheduler — then steps through it, crashing one
//! server along the way, and prints the space cost next to the paper's
//! bounds.

use regemu::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---------------------------------------------------------------- setup
    let params = Params::new(3, 1, 5)?;
    println!("Parameters: {params}");
    println!(
        "Paper bounds for read/write registers: lower = {}, upper = {}",
        register_lower_bound(params),
        register_upper_bound(params)
    );

    // Each writer writes once (100, 200, 300), then a reader reads.
    let mut steps: Vec<WorkloadOp> = (0..params.k)
        .map(|i| WorkloadOp {
            issuer: Issuer::Writer(i),
            op: HighOp::Write((i as u64 + 1) * 100),
            sequential: true,
        })
        .collect();
    steps.push(WorkloadOp {
        issuer: Issuer::Reader(0),
        op: HighOp::Read,
        sequential: true,
    });

    // One value fully determines the run: construction, workload, scheduler,
    // consistency check, seed.
    let scenario = Scenario::new(params)
        .emulation(EmulationKind::SpaceOptimal)
        .workload_steps(Workload::from_steps(steps))
        .scheduler(SchedulerSpec::Fair)
        .check(ConsistencyCheck::WsRegular)
        .seed(2024);

    let mut run = scenario.build();
    println!(
        "Provisioned {} base registers across {} servers:\n",
        run.emulation().base_object_count(),
        params.n
    );
    println!("{}", SpaceOptimalEmulation::new(params).layout().render());

    // --------------------------------------------------------------- write
    while run.completed_ops() < params.k {
        run.step()?;
    }
    println!("all {} writers completed their writes", params.k);

    // One server may crash (f = 1); the emulation keeps working.
    run.crash_server(ServerId::new(0))?;
    println!("server s0 crashed");

    // ---------------------------------------------------------------- read
    run.run()?;
    let value = run
        .history()
        .intervals()
        .last()
        .and_then(|read| read.returned.and_then(|(_, v)| v.payload()))
        .expect("the read completed");
    println!("reader observed {value}");
    assert_eq!(value, params.k as u64 * 100);

    // ------------------------------------------------------------- measure
    let report = run.into_report();
    println!(
        "\nResource consumption: {} base registers (upper bound {}), {} still covered by pending writes",
        report.metrics.resource_consumption(),
        register_upper_bound(params),
        report.metrics.covered_count()
    );

    // ---------------------------------------------------------- consistency
    assert!(report.is_consistent(), "{:?}", report.check_violation);
    println!("schedule verified WS-Regular ✔");
    Ok(())
}
