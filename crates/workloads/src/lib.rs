//! # regemu-workloads — workload generation and experiment running
//!
//! Glue between the emulation algorithms (`regemu-core`), the fault-prone
//! shared-memory simulator (`regemu-fpsm`), the consistency checkers
//! (`regemu-spec`) and the adversary (`regemu-adversary`):
//!
//! * [`generator::Workload`] — deterministic workload generators
//!   (write-sequential, read-heavy, random mixed, concurrent);
//! * [`runner::run_workload`] — execute a workload against an emulation
//!   under a seeded fair scheduler with optional crash plan, measure the
//!   space consumption and check a consistency condition;
//! * [`table`] — parameter sweeps and plain-text table rendering used by the
//!   experiment binaries in `regemu-bench`.
//!
//! ## Example
//!
//! ```
//! use regemu_workloads::prelude::*;
//! use regemu_core::{Emulation, SpaceOptimalEmulation};
//! use regemu_bounds::Params;
//!
//! let emulation = SpaceOptimalEmulation::new(Params::new(2, 1, 4)?);
//! let workload = Workload::write_sequential(2, 1, true);
//! let report = run_workload(&emulation, &workload, &RunConfig::with_seed(7))?;
//! assert!(report.is_consistent());
//! assert_eq!(report.metrics.resource_consumption(), emulation.base_object_count());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod generator;
pub mod runner;
pub mod table;

pub use generator::{Issuer, Workload, WorkloadOp};
pub use runner::{run_workload, ConsistencyCheck, RunConfig, RunReport};
pub use table::{small_sweep, standard_sweep, TextTable};

/// Convenient glob import of the most frequently used items.
pub mod prelude {
    pub use crate::generator::{Issuer, Workload};
    pub use crate::runner::{run_workload, ConsistencyCheck, RunConfig, RunReport};
    pub use crate::table::{small_sweep, standard_sweep, TextTable};
}
