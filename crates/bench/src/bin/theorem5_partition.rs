//! Regenerates the **Theorem 5** demonstration: with `n = 2f` servers the
//! partitioning schedule makes a read miss a preceding write (WS-Safety
//! violation); with `n = 2f + 1` the same schedule is safe.
//!
//! ```text
//! cargo run -p regemu-bench --bin theorem5_partition
//! ```

use regemu_bench::experiments::theorem5_partition;

fn main() {
    println!("{}", theorem5_partition(&[1, 2, 3, 4]));
}
