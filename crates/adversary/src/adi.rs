//! The executable adversary `Ad_i` (Definitions 2–3) and single-iteration
//! extension step of Lemma 1.
//!
//! Given a simulation that already executed the runs `r_0 … r_{i-1}`, one
//! [`AdversaryIteration`] lets a *fresh* client invoke a high-level write and
//! then schedules the environment exactly as `Ad_i` prescribes:
//!
//! * no failures are injected;
//! * a pending low-level write is **never delivered** while it belongs to
//!   `BlockedWrites_i(t)` — it was either triggered by a previously completed
//!   writer, or it targets a register on a server of `Q_i(t) ∪ G_i(t)`;
//! * every other pending operation is eventually delivered (the run is fair
//!   for unblocked operations).
//!
//! Because the emulation is `f`-tolerant and obstruction-free, the write must
//! return even though the blocked responses never arrive (Lemma 3); the
//! registers whose writes stay blocked remain *covered*, which is what makes
//! the space consumption grow.

use crate::covering::CoveringTracker;
use regemu_fpsm::{
    ClientId, HighOp, HighOpId, ObjectId, OpId, Payload, ServerId, SimError, Simulation,
};
use std::collections::BTreeSet;

/// Outcome of one adversary-driven write extension.
#[derive(Clone, Debug)]
pub struct IterationOutcome {
    /// The writer client used for this iteration.
    pub client: ClientId,
    /// The completed high-level write.
    pub high_op: HighOpId,
    /// Value written.
    pub value: Payload,
    /// Registers covered when the iteration ended (`Cov(t_i)`).
    pub covered: BTreeSet<ObjectId>,
    /// Registers newly covered by this iteration (`Cov(t_i) \ Cov(t_{i-1})`).
    pub newly_covered: BTreeSet<ObjectId>,
    /// Servers of the covered registers (`δ(Cov(t_i))`).
    pub covered_servers: BTreeSet<ServerId>,
    /// Number of delivery steps the adversary performed.
    pub steps: u64,
    /// Pending low-level writes (op, register, client) left covering at the
    /// end of the iteration; they seed the next iteration's tracker.
    pub pending_covering: Vec<(OpId, ObjectId, ClientId)>,
}

/// One `Ad_i` iteration: a fresh writer extends the run with one complete
/// high-level write under adversarial scheduling.
#[derive(Debug)]
pub struct AdversaryIteration {
    protected: BTreeSet<ServerId>,
    f: usize,
    previous_writers: BTreeSet<ClientId>,
    old_pending: Vec<(OpId, ObjectId, ClientId)>,
    max_steps: u64,
}

impl AdversaryIteration {
    /// Creates an iteration for the protected set `F` (`|F| = f + 1`).
    ///
    /// `previous_writers` is `C(t_{i-1})` and `old_pending` the covering
    /// writes inherited from earlier iterations.
    pub fn new(
        protected: BTreeSet<ServerId>,
        f: usize,
        previous_writers: BTreeSet<ClientId>,
        old_pending: Vec<(OpId, ObjectId, ClientId)>,
    ) -> Self {
        AdversaryIteration {
            protected,
            f,
            previous_writers,
            old_pending,
            max_steps: 200_000,
        }
    }

    /// Overrides the step budget after which the iteration gives up.
    pub fn with_max_steps(mut self, max_steps: u64) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Runs the iteration: `client` invokes `write(value)` and the adversary
    /// schedules deliveries until the write returns and every unblocked
    /// post-checkpoint write on a protected server has responded (so that
    /// `δ(Cov(t_i)) ∩ F = ∅` whenever the emulation leaves at most the
    /// blocked writes covering).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Stuck`] if the write does not return within the
    /// step budget — which would mean the emulation is not obstruction-free
    /// under the adversary, contradicting Lemma 3.
    pub fn run(
        &self,
        sim: &mut Simulation,
        client: ClientId,
        value: Payload,
    ) -> Result<IterationOutcome, SimError> {
        let mut tracker = CoveringTracker::new(
            self.protected.clone(),
            self.f,
            self.previous_writers.clone(),
            self.old_pending.iter().copied(),
        );
        let mut processed_events = sim.history().total_events();
        let high_op = sim.invoke(client, HighOp::Write(value))?;
        let mut steps = 0u64;

        // Phase 1: deliver unblocked operations until the write returns.
        while sim.result_of(high_op).is_none() {
            Self::feed_new_events(sim, &mut tracker, &mut processed_events);
            let Some(op) = self.pick_deliverable(sim, &tracker) else {
                return Err(SimError::Stuck {
                    steps,
                    waiting_for: format!("high-level write {high_op} under the Ad_i adversary"),
                });
            };
            sim.deliver(op)?;
            steps += 1;
            if steps > self.max_steps {
                return Err(SimError::Stuck {
                    steps,
                    waiting_for: format!("high-level write {high_op} under the Ad_i adversary"),
                });
            }
        }

        // Phase 2: drain the remaining unblocked operations (in particular the
        // writes on protected servers), so that the iteration ends with
        // coverage only on the servers the adversary chose to silence.
        loop {
            Self::feed_new_events(sim, &mut tracker, &mut processed_events);
            let Some(op) = self.pick_deliverable(sim, &tracker) else {
                break;
            };
            sim.deliver(op)?;
            steps += 1;
            if steps > self.max_steps {
                return Err(SimError::Stuck {
                    steps,
                    waiting_for: "drain of unblocked operations".to_string(),
                });
            }
        }
        Self::feed_new_events(sim, &mut tracker, &mut processed_events);

        let covered: BTreeSet<ObjectId> = sim
            .pending_ops()
            .filter(|p| p.is_covering_write())
            .map(|p| p.object)
            .collect();
        let newly_covered = tracker.newly_covered();
        let covered_servers = covered
            .iter()
            .map(|b| sim.topology().server_of(*b))
            .collect();
        let pending_covering = sim
            .pending_ops()
            .filter(|p| p.is_covering_write())
            .map(|p| (p.op_id, p.object, p.client))
            .collect();

        Ok(IterationOutcome {
            client,
            high_op,
            value,
            covered,
            newly_covered,
            covered_servers,
            steps,
            pending_covering,
        })
    }

    fn feed_new_events(sim: &Simulation, tracker: &mut CoveringTracker, processed: &mut u64) {
        let events = sim
            .history()
            .events_since(*processed)
            .expect("the Ad_i adversary requires full event recording");
        for event in events {
            tracker.observe(event, sim.topology());
            *processed += 1;
        }
    }

    /// Picks the next deliverable pending operation that is not blocked by
    /// Definition 2 (lowest op-id first, for determinism).
    fn pick_deliverable(&self, sim: &Simulation, tracker: &CoveringTracker) -> Option<OpId> {
        sim.deliverable_ops()
            .filter(|p| {
                !(p.op.is_write()
                    && tracker.is_blocked(p.op_id, p.client, p.object, sim.topology()))
            })
            .map(|p| p.op_id)
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regemu_bounds::Params;
    use regemu_core::{Emulation, SpaceOptimalEmulation};

    fn protected_set(servers: &[usize]) -> BTreeSet<ServerId> {
        servers.iter().map(|s| ServerId::new(*s)).collect()
    }

    #[test]
    fn single_iteration_leaves_f_covered_registers_outside_f() {
        let params = Params::new(2, 2, 8).unwrap();
        let emulation = SpaceOptimalEmulation::new(params);
        let mut sim = emulation.build_simulation();
        let writer = sim.register_client(emulation.writer_protocol(0));

        let protected = protected_set(&[5, 6, 7]);
        let iteration =
            AdversaryIteration::new(protected.clone(), params.f, BTreeSet::new(), Vec::new());
        let outcome = iteration.run(&mut sim, writer, 1).unwrap();

        assert!(
            sim.result_of(outcome.high_op).is_some(),
            "write must return (Lemma 3)"
        );
        assert!(
            outcome.covered.len() >= params.f,
            "at least f registers must stay covered, got {}",
            outcome.covered.len()
        );
        assert!(
            outcome.covered_servers.is_disjoint(&protected),
            "coverage must avoid the protected set F"
        );
    }

    #[test]
    fn iteration_reports_pending_covering_writes_for_the_next_round() {
        let params = Params::new(3, 1, 4).unwrap();
        let emulation = SpaceOptimalEmulation::new(params);
        let mut sim = emulation.build_simulation();
        let writer = sim.register_client(emulation.writer_protocol(0));
        let protected = protected_set(&[2, 3]);
        let iteration = AdversaryIteration::new(protected, params.f, BTreeSet::new(), Vec::new());
        let outcome = iteration.run(&mut sim, writer, 7).unwrap();
        assert_eq!(outcome.pending_covering.len(), outcome.covered.len());
        for (_, object, client) in &outcome.pending_covering {
            assert_eq!(*client, writer);
            assert!(outcome.covered.contains(object));
        }
        assert!(outcome.steps > 0);
        assert_eq!(outcome.value, 7);
    }
}
