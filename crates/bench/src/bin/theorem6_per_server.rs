//! Regenerates the **Theorem 6** audit: with `n = 2f + 1` servers every
//! server must store at least `k` registers; the layout provisions exactly
//! `k` per server and the adversary pins `k` covered registers on one server.
//!
//! ```text
//! cargo run -p regemu-bench --bin theorem6_per_server
//! ```

use regemu_bench::experiments::theorem6_per_server;

fn main() {
    for f in [1usize, 2] {
        println!("{}", theorem6_per_server(&[1, 2, 3, 4, 6], f));
        println!();
    }
}
