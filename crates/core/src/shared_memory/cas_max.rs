//! A wait-free atomic max-register from a single CAS object (Algorithm 1).

use super::SharedMaxRegister;
use std::sync::atomic::{AtomicU64, Ordering};

/// Max-register emulated from one compare-and-swap word, following
/// Algorithm 1 of the paper (Appendix B) line by line.
///
/// `write-max(v)` repeatedly probes the current value and attempts
/// `CAS(current, v)` until the stored value is at least `v`; `read-max()` is
/// a single probe. Both operations are wait-free: each failed attempt means
/// some other writer installed a *larger* value, and only finitely many
/// values lie between the probe result and `v`.
///
/// The number of CAS attempts a `write-max` needs grows with contention —
/// the time/space trade-off highlighted in the paper's discussion section —
/// and can be observed through [`CasMaxRegister::total_attempts`].
#[derive(Debug)]
pub struct CasMaxRegister {
    cell: AtomicU64,
    attempts: AtomicU64,
    worst_attempts: AtomicU64,
}

impl CasMaxRegister {
    /// Creates the max-register with the given initial value `v0`.
    pub fn new(initial: u64) -> Self {
        CasMaxRegister {
            cell: AtomicU64::new(initial),
            attempts: AtomicU64::new(0),
            worst_attempts: AtomicU64::new(0),
        }
    }

    /// Total number of CAS operations executed by all `write-max` calls so
    /// far (probes and swaps). A contention metric for the benchmarks.
    pub fn total_attempts(&self) -> u64 {
        self.attempts.load(Ordering::Relaxed)
    }

    /// The largest number of CAS operations any single `write-max` call has
    /// needed so far — the per-operation time complexity the paper's
    /// discussion section points at: it grows with write contention even
    /// though the *average* can shrink (contended writers often find a larger
    /// value already installed and return after one probe).
    pub fn worst_case_attempts(&self) -> u64 {
        self.worst_attempts.load(Ordering::Relaxed)
    }
}

impl Default for CasMaxRegister {
    fn default() -> Self {
        Self::new(0)
    }
}

impl SharedMaxRegister for CasMaxRegister {
    fn write_max(&self, value: u64) {
        // Algorithm 1, lines 2–6.
        let mut this_op = 0u64;
        loop {
            // Line 3: tmp ← b.CAS(v0, v0) — read the current value.
            let tmp = self.cell.load(Ordering::SeqCst);
            this_op += 1;
            // Lines 4–5: if tmp ≥ v, return.
            if tmp >= value {
                self.attempts.fetch_add(this_op, Ordering::Relaxed);
                self.worst_attempts.fetch_max(this_op, Ordering::Relaxed);
                return;
            }
            // Line 6: b.CAS(tmp, v).
            this_op += 1;
            let _ = self
                .cell
                .compare_exchange(tmp, value, Ordering::SeqCst, Ordering::SeqCst);
        }
    }

    fn read_max(&self) -> u64 {
        // Line 8: a single read-only CAS probe.
        self.cell.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn keeps_the_maximum_sequentially() {
        let m = CasMaxRegister::new(0);
        m.write_max(5);
        m.write_max(3);
        assert_eq!(m.read_max(), 5);
        m.write_max(9);
        assert_eq!(m.read_max(), 9);
        assert!(m.total_attempts() >= 3);
        // An uncontended effective write needs exactly 3 CAS steps.
        assert_eq!(m.worst_case_attempts(), 3);
    }

    #[test]
    fn initial_value_is_respected() {
        let m = CasMaxRegister::new(10);
        assert_eq!(m.read_max(), 10);
        m.write_max(4);
        assert_eq!(m.read_max(), 10);
        assert_eq!(CasMaxRegister::default().read_max(), 0);
    }

    #[test]
    fn monotone_under_concurrent_writers() {
        let m = Arc::new(CasMaxRegister::new(0));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let m = m.clone();
            handles.push(std::thread::spawn(move || {
                let mut last = 0;
                for i in 0..500u64 {
                    m.write_max(t * 10_000 + i);
                    let now = m.read_max();
                    // Reads are monotone from any single thread's viewpoint.
                    assert!(now >= last);
                    assert!(now >= t * 10_000 + i);
                    last = now;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.read_max(), 7 * 10_000 + 499);
    }

    #[test]
    fn attempts_grow_with_contention() {
        // Sequential ascending writes: exactly 3 CAS ops per effective write
        // (probe, swap, re-probe handled by the next call's probe) — the
        // counter must stay linear. Under heavy contention the count per
        // write grows; here we only sanity-check the sequential floor.
        let m = CasMaxRegister::new(0);
        for v in 1..=100 {
            m.write_max(v);
        }
        let per_write = m.total_attempts() as f64 / 100.0;
        assert!(per_write >= 2.0 && per_write <= 3.0, "got {per_write}");
    }
}
