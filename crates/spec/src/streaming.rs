//! Online (streaming) consistency checking.
//!
//! The offline checkers in [`crate::regularity`] and
//! [`crate::linearizability`] need the complete high-level schedule of a run.
//! [`StreamingChecker`] verifies the same conditions while *consuming the
//! event stream as it is produced*, keeping only a bounded window of
//! operations alive — which is what makes checking possible under the
//! bounded-memory recording modes of `regemu-fpsm`
//! ([`regemu_fpsm::RecordingMode::Ring`]), where the full event log is never
//! retained.
//!
//! ## How the window stays bounded
//!
//! The checker maintains the set of *open* (invoked, not yet returned)
//! operations plus a window of completed operations that are still
//! concurrent with something open. As soon as a completed operation
//! precedes every operation still alive, it is **folded** into a committed
//! prefix:
//!
//! * for WS-Regularity / WS-Safety, folding a write advances the running
//!   sequential-specification state (reads are checked the moment they
//!   return, against the committed state plus the unfolded write window,
//!   and are then discarded);
//! * for atomicity, folding advances the *set* of abstract states reachable
//!   by a consistent linearization of the committed prefix — an op `x` that
//!   precedes every live operation must linearize before all of them, so
//!   the fold is forced and sound; an empty state set is a violation.
//!
//! The retained window is therefore proportional to the run's point
//! contention (plus operations of crashed clients, which stay pending
//! forever), not to the run length.
//!
//! ## Gaps
//!
//! Feeding the checker from a ring buffer can miss events when the window
//! is smaller than one burst of the simulation. The feeder reports this
//! with [`StreamingChecker::note_gap`]; the checker then stops (its state
//! can no longer be trusted) and the final [`StreamingOutcome`] is marked
//! incomplete. A violation detected *before* the gap is kept, but — like
//! everything under truncation — it is inconclusive: atomicity violations
//! are final, while a WS violation could still have been vacated by
//! concurrent writes in the unseen suffix (the WS conditions are vacuous
//! for schedules that are not write-sequential).
//!
//! ## Example
//!
//! ```
//! use regemu_spec::{Condition, SequentialSpec, StreamingChecker};
//! use regemu_fpsm::{ClientId, Event, HighOp, HighOpId, HighResponse};
//!
//! let mut checker = StreamingChecker::new(Condition::WsRegularity, SequentialSpec::register());
//! let events = [
//!     Event::Invoke { time: 1, client: ClientId::new(0), high_op: HighOpId::new(0),
//!                     op: HighOp::Write(7) },
//!     Event::Return { time: 2, client: ClientId::new(0), high_op: HighOpId::new(0),
//!                     response: HighResponse::WriteAck },
//!     Event::Invoke { time: 3, client: ClientId::new(1), high_op: HighOpId::new(1),
//!                     op: HighOp::Read },
//!     Event::Return { time: 4, client: ClientId::new(1), high_op: HighOpId::new(1),
//!                     response: HighResponse::ReadValue(7) },
//! ];
//! for event in &events {
//!     checker.observe(event);
//! }
//! let outcome = checker.into_outcome();
//! assert!(outcome.complete && outcome.violation.is_none());
//! ```

use crate::linearizability::linearizable_from;
use crate::report::{Condition, Violation};
use crate::sequential::SequentialSpec;
use regemu_fpsm::history::HighInterval;
use regemu_fpsm::{Event, HighOpId, Payload};
use std::collections::{BTreeMap, BTreeSet};

/// The final verdict of a [`StreamingChecker`].
#[derive(Clone, Debug)]
pub struct StreamingOutcome {
    /// The first violation detected, if any.
    pub violation: Option<Violation>,
    /// `true` when the checker saw the whole stream (no gap was reported):
    /// only then is a `violation: None` outcome a real "consistent" verdict.
    pub complete: bool,
    /// High-water mark of live operations retained at once — the checker's
    /// peak memory, in operations.
    pub peak_window: usize,
    /// Number of completed operations checked and/or folded.
    pub checked_ops: u64,
}

impl StreamingOutcome {
    /// `true` when the whole stream was seen and no violation found.
    pub fn is_consistent(&self) -> bool {
        self.complete && self.violation.is_none()
    }
}

/// Per-condition incremental state.
enum Mode {
    /// WS-Safety / WS-Regularity: committed write-prefix state plus the
    /// unfolded completed writes (in return order).
    Ws {
        condition: Condition,
        folded_state: Payload,
        folded_writes: u64,
        /// Completed, unfolded writes in return-time order.
        writes: Vec<HighInterval>,
        /// Forever-pending writes of crashed clients
        /// ([`StreamingChecker::abandon`]): they stay in every read's legal
        /// window (the write may still take effect) and keep counting for
        /// write-concurrency, but no longer gate folding. Bounded by the
        /// number of crashed clients.
        abandoned_writes: Vec<HighInterval>,
        /// Set once two writes were observed concurrent: the schedule is not
        /// write-sequential and both conditions hold vacuously.
        broken: bool,
    },
    /// Atomicity: the set of abstract states reachable by a consistent
    /// linearization of the folded prefix, plus the unfolded window.
    ///
    /// Each state is paired with a bitmask over `abandoned` recording which
    /// of the forever-pending abandoned writes the linearization behind it
    /// has already consumed — an abandoned write may take effect at any
    /// point (or never), so folds explore every placement and the mask
    /// prevents a write from taking effect twice on the same branch.
    Atomic {
        states: BTreeSet<(u64, Payload)>,
        /// Unfolded live operations (open and completed), keyed by id.
        window: BTreeMap<HighOpId, HighInterval>,
        /// Forever-pending writes of crashed clients, in abandonment order
        /// (index = mask bit). Bounded by the number of crashed clients.
        abandoned: Vec<HighInterval>,
    },
}

/// An open high-level operation, with the bookkeeping WS-Safety needs.
struct OpenOp {
    interval: HighInterval,
    /// `true` when a write was open at any point of this operation's
    /// lifetime so far (only meaningful for reads).
    write_concurrent: bool,
}

/// An incremental checker consuming [`Event`]s as a run produces them.
///
/// Feed it every event in order (low-level and crash events are ignored, so
/// feeding a full mixed stream is fine); call
/// [`StreamingChecker::note_gap`] when events were lost; finish with
/// [`StreamingChecker::into_outcome`]. Verdicts agree with the offline
/// checkers ([`crate::check_ws_safe`], [`crate::check_ws_regular`],
/// [`crate::check_linearizable`]) whenever the stream was seen in full.
pub struct StreamingChecker {
    spec: SequentialSpec,
    mode: Mode,
    /// Open operations, keyed by id.
    open: BTreeMap<HighOpId, OpenOp>,
    /// Number of writes currently open (to detect write concurrency and to
    /// extend the legal-read window with pending writes).
    open_writes: usize,
    violation: Option<Violation>,
    truncated: bool,
    peak_window: usize,
    checked_ops: u64,
    /// Operation ids the verdict no longer depends on (folded writes,
    /// checked-and-discarded reads), collected only when
    /// [`StreamingChecker::set_track_retired`] enabled it.
    retired: Vec<HighOpId>,
    track_retired: bool,
}

impl StreamingChecker {
    /// Creates a checker for `condition` against `spec`.
    pub fn new(condition: Condition, spec: SequentialSpec) -> Self {
        let mode = match condition {
            Condition::WsSafety | Condition::WsRegularity => Mode::Ws {
                condition,
                folded_state: spec.initial,
                folded_writes: 0,
                writes: Vec::new(),
                abandoned_writes: Vec::new(),
                broken: false,
            },
            Condition::Atomicity => Mode::Atomic {
                states: BTreeSet::from([(0, spec.initial)]),
                window: BTreeMap::new(),
                abandoned: Vec::new(),
            },
        };
        StreamingChecker {
            spec,
            mode,
            open: BTreeMap::new(),
            open_writes: 0,
            violation: None,
            truncated: false,
            peak_window: 0,
            checked_ops: 0,
            retired: Vec::new(),
            track_retired: false,
        }
    }

    /// The condition this checker verifies.
    pub fn condition(&self) -> Condition {
        match &self.mode {
            Mode::Ws { condition, .. } => *condition,
            Mode::Atomic { .. } => Condition::Atomicity,
        }
    }

    /// Records that part of the stream was lost (e.g. evicted from a ring
    /// buffer before it could be observed). Checking stops; the outcome
    /// will be marked incomplete.
    pub fn note_gap(&mut self) {
        self.truncated = true;
        // The window can no longer be interpreted; free it.
        self.open.clear();
        self.open_writes = 0;
        if let Mode::Atomic {
            window, abandoned, ..
        } = &mut self.mode
        {
            window.clear();
            abandoned.clear();
        }
        if let Mode::Ws {
            writes,
            abandoned_writes,
            ..
        } = &mut self.mode
        {
            writes.clear();
            abandoned_writes.clear();
        }
    }

    /// Returns `true` once a gap was reported.
    pub fn saw_gap(&self) -> bool {
        self.truncated
    }

    /// The first violation detected so far, if any.
    pub fn violation(&self) -> Option<&Violation> {
        self.violation.as_ref()
    }

    /// Number of operations currently retained (open + unfolded window +
    /// abandoned writes).
    pub fn window_len(&self) -> usize {
        match &self.mode {
            // Open ops are stored inside the atomic window itself.
            Mode::Atomic {
                window, abandoned, ..
            } => window.len() + abandoned.len(),
            Mode::Ws {
                writes,
                abandoned_writes,
                ..
            } => self.open.len() + writes.len() + abandoned_writes.len(),
        }
    }

    /// Enables (or disables) collection of *retired* operation ids —
    /// operations the verdict no longer depends on. Run engines drain them
    /// with [`StreamingChecker::take_retired`] to evict the matching
    /// intervals from the recording's digest, bounding its memory the same
    /// way the checker bounds its own window. Off by default so standalone
    /// checkers do not accumulate an unread list.
    pub fn set_track_retired(&mut self, on: bool) {
        self.track_retired = on;
        if !on {
            self.retired.clear();
        }
    }

    /// Drains the operation ids retired since the last call (empty unless
    /// [`StreamingChecker::set_track_retired`] enabled tracking).
    pub fn take_retired(&mut self) -> Vec<HighOpId> {
        std::mem::take(&mut self.retired)
    }

    fn retire(&mut self, id: HighOpId) {
        if self.track_retired {
            self.retired.push(id);
        }
    }

    /// Marks an open operation as *abandoned*: its client is known to have
    /// crashed, so the operation will never return. Abandoned operations
    /// stop gating the fold (they no longer pin later-overlapping
    /// operations in the window, which would otherwise grow with the run),
    /// while the verdict still accounts for them exactly as the offline
    /// checkers treat forever-pending operations: an abandoned *write* may
    /// take effect at any later point — it stays in every read's legal
    /// window (WS conditions), keeps counting for write concurrency, and
    /// may linearize anywhere (atomicity) — and an abandoned *read*
    /// constrains nothing and is dropped.
    ///
    /// Fed automatically from [`regemu_fpsm::Event::ClientCrash`] events;
    /// callers driving the checker directly may also signal it explicitly.
    /// Unknown or already-completed operations are ignored.
    pub fn abandon(&mut self, op: HighOpId) {
        let Some(open) = self.open.remove(&op) else {
            return;
        };
        let interval = open.interval;
        if interval.op.is_write() {
            self.open_writes = self.open_writes.saturating_sub(1);
        }
        match &mut self.mode {
            Mode::Ws {
                abandoned_writes,
                broken,
                ..
            } => {
                if interval.op.is_write() && !*broken {
                    abandoned_writes.push(interval);
                    abandoned_writes.sort_by_key(|iv| iv.invoked_at);
                }
            }
            Mode::Atomic {
                window, abandoned, ..
            } => {
                window.remove(&op);
                if interval.op.is_write() {
                    if abandoned.len() >= 64 {
                        // The mask tracking abandoned-write placements is 64
                        // bits wide; past that the checker degrades honestly
                        // instead of guessing.
                        self.note_gap();
                        return;
                    }
                    abandoned.push(interval);
                }
            }
        }
        // Releasing the gate may allow pending folds to complete now.
        if matches!(self.mode, Mode::Atomic { .. }) {
            self.fold_atomic();
        } else {
            self.fold_ws();
        }
    }

    /// Consumes one event. Only high-level events (`Invoke` / `Return`)
    /// affect the verdict; the rest are ignored, so the caller can feed the
    /// raw mixed stream of a simulation run unchanged.
    pub fn observe(&mut self, event: &Event) {
        // A linearizability violation is final (the failed fold is forced in
        // every linearization of any extension), but a WS violation is not:
        // a later pair of concurrent writes makes the whole schedule
        // non-write-sequential and the conditions vacuous, so WS mode must
        // keep observing to be able to vacate its verdict (see the
        // `broken` handling below).
        let verdict_is_final = matches!(self.mode, Mode::Atomic { .. });
        if self.truncated || (self.violation.is_some() && verdict_is_final) {
            return;
        }
        match *event {
            Event::Invoke {
                time,
                client,
                high_op,
                op,
            } => {
                let interval = HighInterval {
                    id: high_op,
                    client,
                    op,
                    invoked_at: time,
                    returned: None,
                };
                // Abandoned writes are forever pending, so they stay
                // concurrent with everything that comes later — they count
                // as "a write is open" for concurrency purposes even though
                // they left the open map.
                let abandoned_write_open = match &self.mode {
                    Mode::Ws {
                        abandoned_writes, ..
                    } => !abandoned_writes.is_empty(),
                    Mode::Atomic { abandoned, .. } => !abandoned.is_empty(),
                };
                if op.is_write() {
                    if self.open_writes > 0 || abandoned_write_open {
                        // Two writes are concurrent: the schedule is not
                        // write-sequential, so the WS conditions hold
                        // vacuously — including for any read violation
                        // recorded earlier, which is hereby vacated
                        // (matching the offline checkers, which look at the
                        // final schedule).
                        let mut vacated = Vec::new();
                        if let Mode::Ws {
                            broken,
                            writes,
                            abandoned_writes,
                            ..
                        } = &mut self.mode
                        {
                            *broken = true;
                            vacated.extend(writes.drain(..).map(|w| w.id));
                            abandoned_writes.clear();
                            self.violation = None;
                        }
                        for id in vacated {
                            self.retire(id);
                        }
                    }
                    // Every open read is now concurrent with a write.
                    for o in self.open.values_mut() {
                        o.write_concurrent = true;
                    }
                    self.open_writes += 1;
                }
                let write_concurrent =
                    op.is_read() && (self.open_writes > 0 || abandoned_write_open);
                self.open.insert(
                    high_op,
                    OpenOp {
                        interval,
                        write_concurrent,
                    },
                );
                if let Mode::Atomic { window, .. } = &mut self.mode {
                    window.insert(high_op, interval);
                }
                self.bump_peak();
            }
            Event::Return {
                time,
                high_op,
                response,
                ..
            } => {
                let Some(open) = self.open.remove(&high_op) else {
                    return;
                };
                let mut interval = open.interval;
                interval.returned = Some((time, response));
                if interval.op.is_write() {
                    self.open_writes -= 1;
                }
                self.checked_ops += 1;
                match &mut self.mode {
                    Mode::Ws { .. } => {
                        self.complete_ws(interval, open.write_concurrent);
                    }
                    Mode::Atomic { window, .. } => {
                        if let Some(slot) = window.get_mut(&high_op) {
                            *slot = interval;
                        }
                        self.fold_atomic();
                    }
                }
            }
            Event::ClientCrash { client, .. } => {
                // The engine knows this client is dead: none of its open
                // operations will ever return, so stop letting them pin the
                // window (see [`StreamingChecker::abandon`]).
                let dead: Vec<HighOpId> = self
                    .open
                    .values()
                    .filter(|o| o.interval.client == client)
                    .map(|o| o.interval.id)
                    .collect();
                for op in dead {
                    self.abandon(op);
                }
            }
            Event::Trigger { .. } | Event::Respond { .. } | Event::ServerCrash { .. } => {}
        }
    }

    /// Finishes the stream and produces the verdict. For atomicity this runs
    /// one final linearization search over the remaining window (pending
    /// reads are dropped, pending writes may or may not have taken effect —
    /// exactly as [`crate::check_linearizable`] treats them).
    pub fn into_outcome(mut self) -> StreamingOutcome {
        if self.violation.is_none() && !self.truncated {
            if let Mode::Atomic {
                states,
                window,
                abandoned,
            } = &self.mode
            {
                let base: Vec<HighInterval> = window
                    .values()
                    .filter(|o| o.is_complete() || o.op.is_write())
                    .copied()
                    .collect();
                // Per branch, the abandoned writes that branch has not
                // consumed yet are still free to linearize anywhere in the
                // remaining window (or never) — hand them to the search as
                // ordinary pending writes.
                let ok = states.iter().any(|&(mask, s)| {
                    let mut ops = base.clone();
                    ops.extend(
                        abandoned
                            .iter()
                            .enumerate()
                            .filter(|(i, _)| mask & (1 << i) == 0)
                            .map(|(_, a)| *a),
                    );
                    linearizable_from(&ops, &self.spec, s)
                });
                if !ok {
                    self.violation = Some(Violation::new(
                        Condition::Atomicity,
                        None,
                        format!(
                            "no linearization of the {} windowed operations extends the \
                             committed prefix for the {:?} specification",
                            base.len() + abandoned.len(),
                            self.spec.semantics
                        ),
                    ));
                }
            }
        }
        StreamingOutcome {
            violation: self.violation,
            complete: !self.truncated,
            peak_window: self.peak_window,
            checked_ops: self.checked_ops,
        }
    }

    fn bump_peak(&mut self) {
        let len = self.window_len();
        if len > self.peak_window {
            self.peak_window = len;
        }
    }

    /// Handles a completed operation under the WS conditions: reads are
    /// checked immediately and discarded; writes join the window and the
    /// committed prefix is folded forward.
    fn complete_ws(&mut self, interval: HighInterval, write_concurrent: bool) {
        let spec = self.spec;
        let Mode::Ws {
            condition,
            folded_state,
            folded_writes,
            writes,
            abandoned_writes,
            broken,
        } = &mut self.mode
        else {
            unreachable!("complete_ws is only called in WS mode");
        };
        if *broken {
            // Not write-sequential: both conditions hold vacuously; nothing
            // about this operation is ever needed again.
            self.retire(interval.id);
            return;
        }
        if interval.op.is_write() {
            // Completions arrive in return-time order, so pushing keeps the
            // window sorted by return time — the write-sequential order.
            writes.push(interval);
        } else {
            // A read is checked the moment it returns and never retained.
            let checked = if self.violation.is_some() {
                // A violation is already recorded (first wins); the
                // bookkeeping still runs so a later concurrent write pair
                // can vacate it.
                false
            } else if *condition == Condition::WsSafety && write_concurrent {
                // WS-Safety says nothing about reads concurrent with writes.
                false
            } else {
                true
            };
            if checked {
                // The legal window: committed prefix (all folded writes
                // precede this read), then the unfolded completed writes in
                // return order, then the pending writes — the open ones
                // (at most one, or the schedule would be broken) and the
                // abandoned ones of crashed clients, which may still take
                // effect — ordered by invocation.
                let mut window: Vec<HighInterval> = writes.clone();
                let mut pending: Vec<HighInterval> = self
                    .open
                    .values()
                    .map(|o| o.interval)
                    .filter(|iv| iv.op.is_write())
                    .chain(abandoned_writes.iter().copied())
                    .collect();
                pending.sort_by_key(|iv| iv.invoked_at);
                window.extend(pending);
                // Writes preceding the read form a prefix of the window (the
                // window is in return order and precedence compares return to
                // invocation times).
                let p = window.iter().filter(|w| w.precedes(&interval)).count();
                let returned = interval
                    .returned
                    .and_then(|(_, r)| r.payload())
                    .expect("complete read carries a payload");
                let mut legal: Vec<Payload> = Vec::new();
                let mut state = *folded_state;
                if p == 0 {
                    legal.push(state);
                }
                for (j, w) in window.iter().enumerate() {
                    state =
                        spec.apply_write(state, w.op.payload().expect("write carries a payload"));
                    if j + 1 >= p {
                        legal.push(state);
                    }
                }
                legal.sort_unstable();
                legal.dedup();
                if !legal.contains(&returned) {
                    self.violation = Some(Violation::new(
                        *condition,
                        Some(interval),
                        format!(
                            "read returned {returned} but only {legal:?} are allowed by the \
                             write-sequential order (online, {folded_writes} writes folded)"
                        ),
                    ));
                    self.retire(interval.id);
                    return;
                }
            }
            self.retire(interval.id);
        }
        self.fold_ws();
    }

    /// Folds every window write that precedes all still-open operations: it
    /// precedes every future operation too, so its position in the
    /// write-sequential order is settled. Abandoned operations do not gate
    /// the fold — they never return, so without [`StreamingChecker::abandon`]
    /// they would pin every later-overlapping write in the window forever.
    fn fold_ws(&mut self) {
        let spec = self.spec;
        let Mode::Ws {
            folded_state,
            folded_writes,
            writes,
            broken,
            ..
        } = &mut self.mode
        else {
            return;
        };
        let mut retired = Vec::new();
        if !*broken {
            let mut folded = 0;
            for w in writes.iter() {
                let settled = self.open.values().all(|o| w.precedes(&o.interval));
                if !settled {
                    break;
                }
                *folded_state = spec.apply_write(
                    *folded_state,
                    w.op.payload().expect("write carries a payload"),
                );
                *folded_writes += 1;
                folded += 1;
            }
            retired.extend(writes.drain(..folded).map(|w| w.id));
        }
        for id in retired {
            self.retire(id);
        }
        self.bump_peak();
    }

    /// Folds every atomic-window operation that precedes all other live
    /// operations. The fold order is forced (only the earliest-returning
    /// completed operation can qualify), so the state set evolves
    /// deterministically; an empty set is a violation.
    ///
    /// Abandoned writes may linearize at any point after their invocation,
    /// so before a candidate is applied the state set is closed under
    /// "some not-yet-consumed abandoned writes take effect first"; the mask
    /// paired with each state records which ones a branch consumed.
    fn fold_atomic(&mut self) {
        let spec = self.spec;
        let Mode::Atomic {
            states,
            window,
            abandoned,
        } = &mut self.mode
        else {
            unreachable!("fold_atomic is only called in atomic mode");
        };
        let mut retired = Vec::new();
        loop {
            // Only the completed op with the earliest return time can
            // precede every other op in the window. Abandoned operations
            // left the window, so they no longer block the fold.
            let Some(candidate) = window
                .values()
                .filter(|o| o.is_complete())
                .min_by_key(|o| o.returned.expect("filtered to complete ops").0)
                .copied()
            else {
                break;
            };
            let settled = window
                .values()
                .all(|o| o.id == candidate.id || candidate.precedes(o));
            if !settled {
                break;
            }
            let (returned_at, actual) = candidate.returned.expect("candidate is complete");
            // Close the state set under abandoned writes that may take
            // effect before the candidate (anything invoked before the
            // candidate's return); the mask consumes a write per branch.
            let mut closed = states.clone();
            let mut frontier: Vec<(u64, Payload)> = closed.iter().copied().collect();
            while let Some((mask, s)) = frontier.pop() {
                for (i, a) in abandoned.iter().enumerate() {
                    if mask & (1 << i) != 0 || a.invoked_at >= returned_at {
                        continue;
                    }
                    let s2 = spec.apply_write(s, a.op.payload().expect("write carries a payload"));
                    let entry = (mask | (1 << i), s2);
                    if closed.insert(entry) {
                        frontier.push(entry);
                    }
                }
            }
            let next: BTreeSet<(u64, Payload)> = closed
                .iter()
                .filter_map(|&(mask, s)| {
                    let (s2, expected) = spec.step(s, candidate.op);
                    (expected == actual).then_some((mask, s2))
                })
                .collect();
            if next.is_empty() {
                self.violation = Some(Violation::new(
                    Condition::Atomicity,
                    Some(candidate),
                    format!(
                        "operation {} returned {actual} but no reachable state of the \
                         committed prefix allows it",
                        candidate.op
                    ),
                ));
                return;
            }
            *states = next;
            window.remove(&candidate.id);
            retired.push(candidate.id);
        }
        for id in retired {
            self.retire(id);
        }
        self.bump_peak();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::HighHistory;
    use crate::{check_linearizable, check_ws_regular, check_ws_safe};
    use regemu_fpsm::{ClientId, HighOp, HighResponse, Time};

    /// Renders a schedule of intervals as the equivalent time-ordered event
    /// stream and feeds it to a fresh checker.
    fn stream(condition: Condition, spec: SequentialSpec, h: &HighHistory) -> StreamingChecker {
        #[derive(Clone, Copy)]
        enum Point {
            Invoke(usize),
            Return(usize),
        }
        let mut points: Vec<(Time, u8, Point)> = Vec::new();
        for (i, iv) in h.ops().iter().enumerate() {
            // At equal times, returns sort before invokes: `precedes` is
            // strict, so a return at t and an invoke at t are concurrent,
            // and the simulator never produces ties anyway.
            points.push((iv.invoked_at, 1, Point::Invoke(i)));
            if let Some((t, _)) = iv.returned {
                points.push((t, 0, Point::Return(i)));
            }
        }
        points.sort_by_key(|&(t, kind, _)| (t, kind));
        let mut checker = StreamingChecker::new(condition, spec);
        for (_, _, p) in points {
            match p {
                Point::Invoke(i) => {
                    let iv = h.ops()[i];
                    checker.observe(&Event::Invoke {
                        time: iv.invoked_at,
                        client: iv.client,
                        high_op: HighOpId::new(i as u64),
                        op: iv.op,
                    });
                }
                Point::Return(i) => {
                    let iv = h.ops()[i];
                    let (t, response) = iv.returned.unwrap();
                    checker.observe(&Event::Return {
                        time: t,
                        client: iv.client,
                        high_op: HighOpId::new(i as u64),
                        response,
                    });
                }
            }
        }
        checker
    }

    fn agree(condition: Condition, spec: SequentialSpec, h: &HighHistory) {
        let offline = match condition {
            Condition::WsSafety => check_ws_safe(h, &spec).is_ok(),
            Condition::WsRegularity => check_ws_regular(h, &spec).is_ok(),
            Condition::Atomicity => check_linearizable(h, &spec).is_ok(),
        };
        let outcome = stream(condition, spec, h).into_outcome();
        assert!(outcome.complete);
        assert_eq!(
            outcome.violation.is_none(),
            offline,
            "{condition} disagreed online vs offline: {:?}",
            outcome.violation
        );
    }

    fn register() -> SequentialSpec {
        SequentialSpec::register()
    }

    #[test]
    fn agrees_with_offline_on_sequential_histories() {
        let mut h = HighHistory::default();
        h.push_complete(0, HighOp::Write(1), HighResponse::WriteAck, 0, 1);
        h.push_complete(1, HighOp::Read, HighResponse::ReadValue(1), 2, 3);
        h.push_complete(0, HighOp::Write(2), HighResponse::WriteAck, 4, 5);
        h.push_complete(1, HighOp::Read, HighResponse::ReadValue(2), 6, 7);
        for c in [
            Condition::WsSafety,
            Condition::WsRegularity,
            Condition::Atomicity,
        ] {
            agree(c, register(), &h);
        }

        let mut bad = HighHistory::default();
        bad.push_complete(0, HighOp::Write(1), HighResponse::WriteAck, 0, 1);
        bad.push_complete(1, HighOp::Read, HighResponse::ReadValue(0), 2, 3);
        for c in [
            Condition::WsSafety,
            Condition::WsRegularity,
            Condition::Atomicity,
        ] {
            agree(c, register(), &bad);
        }
    }

    #[test]
    fn concurrent_read_window_matches_offline() {
        // Read overlapping the write of 2 may return 1 or 2, nothing else.
        for ret in [1u64, 2, 7] {
            let mut h = HighHistory::default();
            h.push_complete(0, HighOp::Write(1), HighResponse::WriteAck, 0, 1);
            h.push_complete(0, HighOp::Write(2), HighResponse::WriteAck, 2, 10);
            h.push_complete(1, HighOp::Read, HighResponse::ReadValue(ret), 3, 4);
            agree(Condition::WsRegularity, register(), &h);
            agree(Condition::WsSafety, register(), &h);
        }
    }

    #[test]
    fn new_old_inversion_is_regular_but_not_atomic_online() {
        let mut h = HighHistory::default();
        h.push_complete(0, HighOp::Write(1), HighResponse::WriteAck, 0, 1);
        h.push_complete(0, HighOp::Write(2), HighResponse::WriteAck, 2, 20);
        h.push_complete(1, HighOp::Read, HighResponse::ReadValue(2), 3, 4);
        h.push_complete(1, HighOp::Read, HighResponse::ReadValue(1), 5, 6);
        agree(Condition::WsRegularity, register(), &h);
        agree(Condition::Atomicity, register(), &h);
        let outcome = stream(Condition::Atomicity, register(), &h).into_outcome();
        assert!(outcome.violation.is_some());
    }

    #[test]
    fn non_write_sequential_schedules_are_vacuously_ok_online() {
        let mut h = HighHistory::default();
        h.push_complete(0, HighOp::Write(1), HighResponse::WriteAck, 0, 5);
        h.push_complete(1, HighOp::Write(2), HighResponse::WriteAck, 2, 7);
        h.push_complete(2, HighOp::Read, HighResponse::ReadValue(99), 3, 4);
        agree(Condition::WsRegularity, register(), &h);
        agree(Condition::WsSafety, register(), &h);
    }

    #[test]
    fn pending_writes_extend_the_legal_window_online() {
        for (ret, ok) in [(1u64, true), (2, true), (0, false)] {
            let mut h = HighHistory::default();
            h.push_complete(0, HighOp::Write(1), HighResponse::WriteAck, 0, 1);
            h.push_pending(1, HighOp::Write(2), 2);
            h.push_complete(2, HighOp::Read, HighResponse::ReadValue(ret), 3, 4);
            agree(Condition::WsRegularity, register(), &h);
            let outcome = stream(Condition::WsRegularity, register(), &h).into_outcome();
            assert_eq!(outcome.violation.is_none(), ok, "read of {ret}");
        }
    }

    #[test]
    fn pending_writes_may_or_may_not_take_effect_atomically() {
        let mut h = HighHistory::default();
        h.push_pending(0, HighOp::Write(5), 0);
        h.push_complete(1, HighOp::Read, HighResponse::ReadValue(5), 1, 2);
        agree(Condition::Atomicity, register(), &h);
        let mut h2 = HighHistory::default();
        h2.push_pending(0, HighOp::Write(5), 0);
        h2.push_complete(1, HighOp::Read, HighResponse::ReadValue(0), 1, 2);
        agree(Condition::Atomicity, register(), &h2);
    }

    #[test]
    fn max_register_semantics_fold_correctly() {
        let spec = SequentialSpec::max_register();
        let mut h = HighHistory::default();
        h.push_complete(0, HighOp::Write(5), HighResponse::WriteAck, 0, 1);
        h.push_complete(1, HighOp::Write(3), HighResponse::WriteAck, 2, 3);
        h.push_complete(2, HighOp::Read, HighResponse::ReadValue(5), 4, 5);
        agree(Condition::WsRegularity, spec, &h);
        agree(Condition::Atomicity, spec, &h);
        let mut bad = HighHistory::default();
        bad.push_complete(0, HighOp::Write(5), HighResponse::WriteAck, 0, 1);
        bad.push_complete(1, HighOp::Write(3), HighResponse::WriteAck, 2, 3);
        bad.push_complete(2, HighOp::Read, HighResponse::ReadValue(3), 4, 5);
        agree(Condition::WsRegularity, spec, &bad);
        agree(Condition::Atomicity, spec, &bad);
    }

    #[test]
    fn folding_keeps_the_window_bounded_on_long_sequential_streams() {
        let spec = register();
        let mut checker = StreamingChecker::new(Condition::WsRegularity, spec);
        let mut atomic = StreamingChecker::new(Condition::Atomicity, spec);
        let mut t = 0u64;
        for i in 0..10_000u64 {
            let invoke = Event::Invoke {
                time: t,
                client: ClientId::new(0),
                high_op: HighOpId::new(i),
                op: HighOp::Write(i + 1),
            };
            let ret = Event::Return {
                time: t + 1,
                client: ClientId::new(0),
                high_op: HighOpId::new(i),
                response: HighResponse::WriteAck,
            };
            t += 2;
            checker.observe(&invoke);
            checker.observe(&ret);
            atomic.observe(&invoke);
            atomic.observe(&ret);
        }
        // Sequential stream: everything folds as it completes.
        assert!(checker.window_len() <= 1);
        assert!(atomic.window_len() <= 1);
        let o = checker.into_outcome();
        assert!(o.is_consistent());
        assert!(o.peak_window <= 2, "peak window was {}", o.peak_window);
        assert_eq!(o.checked_ops, 10_000);
        let o = atomic.into_outcome();
        assert!(o.is_consistent());
        assert!(o.peak_window <= 2);
    }

    #[test]
    fn later_concurrent_writes_vacate_an_earlier_ws_read_violation() {
        // The read of 9 is illegal against the write-sequential order seen
        // at its return — but the two concurrent writes afterwards make the
        // final schedule non-write-sequential, so the offline checkers are
        // vacuously satisfied and the online verdict must agree.
        let mut h = HighHistory::default();
        h.push_complete(0, HighOp::Write(1), HighResponse::WriteAck, 0, 1);
        h.push_complete(1, HighOp::Read, HighResponse::ReadValue(9), 2, 3);
        h.push_complete(0, HighOp::Write(2), HighResponse::WriteAck, 4, 10);
        h.push_complete(2, HighOp::Write(3), HighResponse::WriteAck, 5, 6);
        assert!(check_ws_regular(&h, &register()).is_ok());
        assert!(check_ws_safe(&h, &register()).is_ok());
        for c in [Condition::WsRegularity, Condition::WsSafety] {
            agree(c, register(), &h);
            let outcome = stream(c, register(), &h).into_outcome();
            assert!(outcome.is_consistent(), "{c}: {:?}", outcome.violation);
        }
        // Without the trailing writes the violation stands, and a second bad
        // read does not displace the first recorded one.
        let mut bad = HighHistory::default();
        bad.push_complete(0, HighOp::Write(1), HighResponse::WriteAck, 0, 1);
        bad.push_complete(1, HighOp::Read, HighResponse::ReadValue(9), 2, 3);
        bad.push_complete(1, HighOp::Read, HighResponse::ReadValue(8), 4, 5);
        agree(Condition::WsRegularity, register(), &bad);
        let outcome = stream(Condition::WsRegularity, register(), &bad).into_outcome();
        let violation = outcome.violation.expect("first bad read is reported");
        assert!(violation.explanation.contains("read returned 9"));
    }

    #[test]
    fn abandoned_reads_stop_pinning_the_fold_window() {
        // A crashed reader's pending read would otherwise pin every
        // later-overlapping write in the window forever.
        let spec = register();
        for condition in [Condition::WsRegularity, Condition::Atomicity] {
            let mut checker = StreamingChecker::new(condition, spec);
            checker.observe(&Event::Invoke {
                time: 1,
                client: ClientId::new(9),
                high_op: HighOpId::new(0),
                op: HighOp::Read,
            });
            let mut t = 2;
            let feed_writes = |checker: &mut StreamingChecker, t: &mut Time, base: u64| {
                for i in 0..100u64 {
                    checker.observe(&Event::Invoke {
                        time: *t,
                        client: ClientId::new(0),
                        high_op: HighOpId::new(base + i),
                        op: HighOp::Write(base + i),
                    });
                    checker.observe(&Event::Return {
                        time: *t + 1,
                        client: ClientId::new(0),
                        high_op: HighOpId::new(base + i),
                        response: HighResponse::WriteAck,
                    });
                    *t += 2;
                }
            };
            feed_writes(&mut checker, &mut t, 1);
            assert!(
                checker.window_len() > 100,
                "{condition}: the pending read pins the window"
            );
            // The engine learns the client crashed: the window drains.
            checker.observe(&Event::ClientCrash {
                time: t,
                client: ClientId::new(9),
            });
            assert!(
                checker.window_len() <= 2,
                "{condition}: window still {} after abandon",
                checker.window_len()
            );
            feed_writes(&mut checker, &mut t, 1000);
            assert!(
                checker.window_len() <= 2,
                "{condition}: abandoned read pins the window again"
            );
            let outcome = checker.into_outcome();
            assert!(
                outcome.is_consistent(),
                "{condition}: {:?}",
                outcome.violation
            );
        }
    }

    #[test]
    fn abandoned_writes_keep_extending_the_legal_window() {
        // Crashed writer with a pending write of 2: a later read may return
        // 1 (write never took effect) or 2 (it did) but nothing else —
        // exactly the offline verdict on the final schedule.
        for (ret, ok) in [(1u64, true), (2, true), (7, false)] {
            let mut h = HighHistory::default();
            h.push_complete(0, HighOp::Write(1), HighResponse::WriteAck, 0, 1);
            h.push_pending(1, HighOp::Write(2), 2);
            h.push_complete(2, HighOp::Read, HighResponse::ReadValue(ret), 4, 5);
            let offline = check_ws_regular(&h, &register()).is_ok();
            assert_eq!(offline, ok);

            let mut checker = StreamingChecker::new(Condition::WsRegularity, register());
            let events = [
                Event::Invoke {
                    time: 0,
                    client: ClientId::new(0),
                    high_op: HighOpId::new(0),
                    op: HighOp::Write(1),
                },
                Event::Return {
                    time: 1,
                    client: ClientId::new(0),
                    high_op: HighOpId::new(0),
                    response: HighResponse::WriteAck,
                },
                Event::Invoke {
                    time: 2,
                    client: ClientId::new(1),
                    high_op: HighOpId::new(1),
                    op: HighOp::Write(2),
                },
                // The writer crashes; its write is abandoned but may still
                // take effect.
                Event::ClientCrash {
                    time: 3,
                    client: ClientId::new(1),
                },
                Event::Invoke {
                    time: 4,
                    client: ClientId::new(2),
                    high_op: HighOpId::new(2),
                    op: HighOp::Read,
                },
                Event::Return {
                    time: 5,
                    client: ClientId::new(2),
                    high_op: HighOpId::new(2),
                    response: HighResponse::ReadValue(ret),
                },
            ];
            for e in &events {
                checker.observe(e);
            }
            let outcome = checker.into_outcome();
            assert!(outcome.complete);
            assert_eq!(outcome.violation.is_none(), ok, "read of {ret}");
        }
    }

    #[test]
    fn writes_after_an_abandoned_write_break_write_sequentiality() {
        // Offline, a forever-pending write is concurrent with every later
        // write, so the WS conditions hold vacuously from then on — the
        // online verdict must agree even though the abandoned write left
        // the open map.
        let mut checker = StreamingChecker::new(Condition::WsRegularity, register());
        checker.observe(&Event::Invoke {
            time: 0,
            client: ClientId::new(0),
            high_op: HighOpId::new(0),
            op: HighOp::Write(1),
        });
        checker.observe(&Event::ClientCrash {
            time: 1,
            client: ClientId::new(0),
        });
        checker.observe(&Event::Invoke {
            time: 2,
            client: ClientId::new(1),
            high_op: HighOpId::new(1),
            op: HighOp::Write(2),
        });
        checker.observe(&Event::Return {
            time: 3,
            client: ClientId::new(1),
            high_op: HighOpId::new(1),
            response: HighResponse::WriteAck,
        });
        // Any read value is fine now: not write-sequential.
        checker.observe(&Event::Invoke {
            time: 4,
            client: ClientId::new(2),
            high_op: HighOpId::new(2),
            op: HighOp::Read,
        });
        checker.observe(&Event::Return {
            time: 5,
            client: ClientId::new(2),
            high_op: HighOpId::new(2),
            response: HighResponse::ReadValue(42),
        });
        let outcome = checker.into_outcome();
        assert!(outcome.is_consistent(), "{:?}", outcome.violation);
    }

    #[test]
    fn abandoned_writes_may_linearize_anywhere_atomically() {
        let spec = register();
        // Committed prefix is 0; the crashed writer's write of 5 may take
        // effect between the two reads — read 0 then read 5 is atomic.
        let feed = |values: [u64; 2]| {
            let mut checker = StreamingChecker::new(Condition::Atomicity, spec);
            checker.observe(&Event::Invoke {
                time: 0,
                client: ClientId::new(0),
                high_op: HighOpId::new(0),
                op: HighOp::Write(5),
            });
            checker.observe(&Event::ClientCrash {
                time: 1,
                client: ClientId::new(0),
            });
            for (i, v) in values.into_iter().enumerate() {
                let id = HighOpId::new(1 + i as u64);
                checker.observe(&Event::Invoke {
                    time: 2 + 2 * i as Time,
                    client: ClientId::new(1),
                    high_op: id,
                    op: HighOp::Read,
                });
                checker.observe(&Event::Return {
                    time: 3 + 2 * i as Time,
                    client: ClientId::new(1),
                    high_op: id,
                    response: HighResponse::ReadValue(v),
                });
            }
            checker.into_outcome()
        };
        assert!(feed([0, 5]).is_consistent());
        assert!(feed([5, 5]).is_consistent());
        assert!(feed([0, 0]).is_consistent());
        // New-old inversion against the abandoned write is still caught.
        let inverted = feed([5, 0]);
        assert!(inverted.complete);
        assert!(inverted.violation.is_some());
        // A value nobody wrote is still caught.
        let wild = feed([0, 7]);
        assert!(wild.violation.is_some());
    }

    #[test]
    fn retired_ops_are_tracked_only_on_request() {
        let spec = register();
        let mut h = HighHistory::default();
        h.push_complete(0, HighOp::Write(1), HighResponse::WriteAck, 0, 1);
        h.push_complete(1, HighOp::Read, HighResponse::ReadValue(1), 2, 3);
        h.push_complete(0, HighOp::Write(2), HighResponse::WriteAck, 4, 5);
        // Untracked by default.
        let mut untracked = stream(Condition::WsRegularity, spec, &h);
        assert!(untracked.take_retired().is_empty());
        // Tracked: the first write folds once the read invoked after it
        // returns, and every checked read retires immediately.
        let mut checker = StreamingChecker::new(Condition::WsRegularity, spec);
        checker.set_track_retired(true);
        let events = [
            Event::Invoke {
                time: 0,
                client: ClientId::new(0),
                high_op: HighOpId::new(0),
                op: HighOp::Write(1),
            },
            Event::Return {
                time: 1,
                client: ClientId::new(0),
                high_op: HighOpId::new(0),
                response: HighResponse::WriteAck,
            },
            Event::Invoke {
                time: 2,
                client: ClientId::new(1),
                high_op: HighOpId::new(1),
                op: HighOp::Read,
            },
            Event::Return {
                time: 3,
                client: ClientId::new(1),
                high_op: HighOpId::new(1),
                response: HighResponse::ReadValue(1),
            },
        ];
        for e in &events {
            checker.observe(e);
        }
        let retired = checker.take_retired();
        assert!(retired.contains(&HighOpId::new(0)), "{retired:?}");
        assert!(retired.contains(&HighOpId::new(1)), "{retired:?}");
        assert!(checker.take_retired().is_empty(), "drained");
        assert!(checker.into_outcome().is_consistent());
    }

    #[test]
    fn gaps_make_the_outcome_incomplete_but_keep_prior_violations() {
        let spec = register();
        let mut checker = StreamingChecker::new(Condition::WsRegularity, spec);
        checker.note_gap();
        assert!(checker.saw_gap());
        let outcome = checker.into_outcome();
        assert!(!outcome.complete);
        assert!(!outcome.is_consistent());
        assert!(outcome.violation.is_none());

        // A violation observed before the gap survives it.
        let mut h = HighHistory::default();
        h.push_complete(0, HighOp::Write(1), HighResponse::WriteAck, 0, 1);
        h.push_complete(1, HighOp::Read, HighResponse::ReadValue(9), 2, 3);
        let mut checker = stream(Condition::WsRegularity, spec, &h);
        assert!(checker.violation().is_some());
        checker.note_gap();
        let outcome = checker.into_outcome();
        assert!(outcome.violation.is_some());
        assert!(!outcome.complete);
    }

    #[test]
    fn ws_safety_skips_reads_concurrent_with_writes_online() {
        // Offline reference case from the regularity tests: a wild read
        // concurrent with a write violates regularity but not safety.
        let mut h = HighHistory::default();
        h.push_complete(0, HighOp::Write(1), HighResponse::WriteAck, 0, 1);
        h.push_complete(0, HighOp::Write(2), HighResponse::WriteAck, 2, 10);
        h.push_complete(1, HighOp::Read, HighResponse::ReadValue(7), 3, 4);
        agree(Condition::WsRegularity, register(), &h);
        agree(Condition::WsSafety, register(), &h);
        let ws = stream(Condition::WsSafety, register(), &h).into_outcome();
        assert!(ws.violation.is_none());
        let reg = stream(Condition::WsRegularity, register(), &h).into_outcome();
        assert!(reg.violation.is_some());
    }
}
