//! A native (hardware-assisted) max-register baseline.

use super::SharedMaxRegister;
use std::sync::atomic::{AtomicU64, Ordering};

/// Max-register backed by `AtomicU64::fetch_max` — the "native max-register"
/// baseline against which the CAS and collect constructions are benchmarked.
///
/// Every `write-max` is a single RMW instruction, so its time complexity is
/// constant regardless of contention, unlike [`CasMaxRegister`]'s retry loop.
///
/// [`CasMaxRegister`]: super::CasMaxRegister
#[derive(Debug, Default)]
pub struct FetchMaxRegister {
    cell: AtomicU64,
}

impl FetchMaxRegister {
    /// Creates the max-register with the given initial value.
    pub fn new(initial: u64) -> Self {
        FetchMaxRegister {
            cell: AtomicU64::new(initial),
        }
    }
}

impl SharedMaxRegister for FetchMaxRegister {
    fn write_max(&self, value: u64) {
        self.cell.fetch_max(value, Ordering::SeqCst);
    }

    fn read_max(&self) -> u64 {
        self.cell.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn keeps_the_maximum() {
        let m = FetchMaxRegister::new(2);
        m.write_max(1);
        assert_eq!(m.read_max(), 2);
        m.write_max(8);
        assert_eq!(m.read_max(), 8);
        assert_eq!(FetchMaxRegister::default().read_max(), 0);
    }

    #[test]
    fn concurrent_writes_settle_on_the_global_maximum() {
        let m = Arc::new(FetchMaxRegister::new(0));
        let handles: Vec<_> = (0..8u64)
            .map(|t| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for i in 0..400 {
                        m.write_max(t * 1000 + i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.read_max(), 7 * 1000 + 399);
    }
}
