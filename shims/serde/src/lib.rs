//! Minimal stand-in for `serde` used by the offline build (see
//! `shims/README.md`). Provides the `Serialize`/`Deserialize` trait names and
//! re-exports the no-op derive macros so `#[derive(Serialize, Deserialize)]`
//! compiles unchanged against this shim or the real crate.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`. The derive is a no-op, so a
/// blanket impl makes every type satisfy `T: Serialize` bounds — matching
/// what the derive promises, since the traits carry no methods here.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker trait mirroring `serde::Deserialize`, blanket-implemented for the
/// same reason as [`Serialize`].
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}
