//! Write-Sequential Regularity and Write-Sequential Safety checkers.
//!
//! The paper defines (Section 2 / Appendix A.3):
//!
//! * **WS-Regularity** — for every *write-sequential* schedule `σ` and every
//!   complete read `rd`, there is a linearization of `σ|writes(σ) ∪ {rd}`.
//! * **WS-Safety** — as WS-Regularity, but only required for complete reads
//!   that are not concurrent with any write.
//!
//! Because the writes of a write-sequential schedule are totally ordered by
//! real time, checking reduces to interval arithmetic: a read may be
//! linearized after any write it does not precede and after every write that
//! precedes it, so the set of legal return values is determined by that
//! window. Schedules that are not write-sequential satisfy both conditions
//! vacuously (and the checkers report success).

use crate::history::HighHistory;
use crate::report::{CheckResult, Condition, Violation};
use crate::sequential::SequentialSpec;
use regemu_fpsm::history::HighInterval;
use regemu_fpsm::Payload;

/// Checks Write-Sequential Regularity of `history` against `spec`.
///
/// # Errors
///
/// Returns a [`Violation`] identifying the offending read when some complete
/// read cannot be explained by any placement among the (sequential) writes.
pub fn check_ws_regular(history: &HighHistory, spec: &SequentialSpec) -> CheckResult {
    check(history, spec, Condition::WsRegularity)
}

/// Checks Write-Sequential Safety of `history` against `spec`.
///
/// # Errors
///
/// Returns a [`Violation`] identifying the offending read when some complete
/// read that is not concurrent with any write returns a value other than the
/// one mandated by the last preceding write.
pub fn check_ws_safe(history: &HighHistory, spec: &SequentialSpec) -> CheckResult {
    check(history, spec, Condition::WsSafety)
}

fn check(history: &HighHistory, spec: &SequentialSpec, condition: Condition) -> CheckResult {
    if !history.is_write_sequential() {
        // Both conditions only constrain write-sequential schedules.
        return Ok(());
    }
    let writes = history.sequential_writes();
    for read in history.complete_reads() {
        if condition == Condition::WsSafety && writes.iter().any(|w| w.concurrent_with(&read)) {
            // WS-Safety says nothing about reads concurrent with writes.
            continue;
        }
        let legal = legal_read_values(&writes, &read, spec);
        let returned = read
            .returned
            .and_then(|(_, r)| r.payload())
            .expect("complete read carries a payload");
        if !legal.contains(&returned) {
            return Err(Violation::new(
                condition,
                Some(read),
                format!(
                    "read returned {returned} but only {legal:?} are allowed by the \
                     write-sequential order"
                ),
            ));
        }
    }
    Ok(())
}

/// The set of values a read may legally return given the totally ordered
/// `writes` of a write-sequential schedule.
///
/// The read may be linearized immediately after the `j`-th write for any
/// `j ∈ [p, q-1]`, where `p` is the number of writes that precede the read and
/// `q-1` is the index of the last write the read does not precede. The value
/// observed at position `j` is the sequential-specification state after the
/// first `j` writes.
pub fn legal_read_values(
    writes: &[HighInterval],
    read: &HighInterval,
    spec: &SequentialSpec,
) -> Vec<Payload> {
    let m = writes.len();
    // p: largest index (1-based) of a write that precedes the read.
    let p = writes
        .iter()
        .enumerate()
        .filter(|(_, w)| w.precedes(read))
        .map(|(i, _)| i + 1)
        .max()
        .unwrap_or(0);
    // q: smallest index (1-based) of a write the read precedes.
    let q = writes
        .iter()
        .enumerate()
        .filter(|(_, w)| read.precedes(w))
        .map(|(i, _)| i + 1)
        .min()
        .unwrap_or(m + 1);

    let mut values = Vec::new();
    let payloads: Vec<Payload> = writes
        .iter()
        .map(|w| w.op.payload().expect("write carries a payload"))
        .collect();
    for j in p..q {
        values.push(spec.state_after(payloads.iter().take(j).copied()));
    }
    values.sort_unstable();
    values.dedup();
    values
}

#[cfg(test)]
mod tests {
    use super::*;
    use regemu_fpsm::{HighOp, HighResponse};

    fn register() -> SequentialSpec {
        SequentialSpec::register()
    }

    #[test]
    fn read_after_write_must_return_it() {
        let mut h = HighHistory::default();
        h.push_complete(0, HighOp::Write(1), HighResponse::WriteAck, 0, 1);
        h.push_complete(1, HighOp::Read, HighResponse::ReadValue(1), 2, 3);
        assert!(check_ws_regular(&h, &register()).is_ok());
        assert!(check_ws_safe(&h, &register()).is_ok());

        let mut bad = HighHistory::default();
        bad.push_complete(0, HighOp::Write(1), HighResponse::WriteAck, 0, 1);
        bad.push_complete(1, HighOp::Read, HighResponse::ReadValue(0), 2, 3);
        assert!(check_ws_regular(&bad, &register()).is_err());
        assert!(check_ws_safe(&bad, &register()).is_err());
    }

    #[test]
    fn read_concurrent_with_a_write_may_return_old_or_new() {
        let mk = |ret: u64| {
            let mut h = HighHistory::default();
            h.push_complete(0, HighOp::Write(1), HighResponse::WriteAck, 0, 1);
            h.push_complete(0, HighOp::Write(2), HighResponse::WriteAck, 2, 10);
            h.push_complete(1, HighOp::Read, HighResponse::ReadValue(ret), 3, 4);
            h
        };
        assert!(check_ws_regular(&mk(1), &register()).is_ok());
        assert!(check_ws_regular(&mk(2), &register()).is_ok());
        assert!(check_ws_regular(&mk(7), &register()).is_err());
        // WS-Safety does not constrain reads concurrent with writes at all.
        assert!(check_ws_safe(&mk(7), &register()).is_ok());
    }

    #[test]
    fn regularity_forbids_reading_values_older_than_a_preceding_write() {
        let mut h = HighHistory::default();
        h.push_complete(0, HighOp::Write(1), HighResponse::WriteAck, 0, 1);
        h.push_complete(1, HighOp::Write(2), HighResponse::WriteAck, 2, 3);
        // Read invoked after both writes returned: must return 2, not 1.
        h.push_complete(2, HighOp::Read, HighResponse::ReadValue(1), 4, 5);
        assert!(check_ws_regular(&h, &register()).is_err());
    }

    #[test]
    fn unlike_atomicity_regularity_allows_new_old_inversion() {
        // Two sequential reads both concurrent with the write of 2: the first
        // returns the new value, the second the old one. Regular but not
        // atomic.
        let mut h = HighHistory::default();
        h.push_complete(0, HighOp::Write(1), HighResponse::WriteAck, 0, 1);
        h.push_complete(0, HighOp::Write(2), HighResponse::WriteAck, 2, 20);
        h.push_complete(1, HighOp::Read, HighResponse::ReadValue(2), 3, 4);
        h.push_complete(1, HighOp::Read, HighResponse::ReadValue(1), 5, 6);
        assert!(check_ws_regular(&h, &register()).is_ok());
        let lin = crate::linearizability::check_linearizable(&h, &register());
        assert!(lin.is_err());
    }

    #[test]
    fn non_write_sequential_schedules_are_vacuously_ok() {
        let mut h = HighHistory::default();
        h.push_complete(0, HighOp::Write(1), HighResponse::WriteAck, 0, 5);
        h.push_complete(1, HighOp::Write(2), HighResponse::WriteAck, 2, 7);
        h.push_complete(2, HighOp::Read, HighResponse::ReadValue(99), 3, 4);
        assert!(check_ws_regular(&h, &register()).is_ok());
        assert!(check_ws_safe(&h, &register()).is_ok());
    }

    #[test]
    fn pending_write_value_is_legal_but_not_required() {
        let mk = |ret: u64| {
            let mut h = HighHistory::default();
            h.push_complete(0, HighOp::Write(1), HighResponse::WriteAck, 0, 1);
            h.push_pending(1, HighOp::Write(2), 2);
            h.push_complete(2, HighOp::Read, HighResponse::ReadValue(ret), 3, 4);
            h
        };
        assert!(check_ws_regular(&mk(1), &register()).is_ok());
        assert!(check_ws_regular(&mk(2), &register()).is_ok());
        assert!(check_ws_regular(&mk(0), &register()).is_err());
    }

    #[test]
    fn reads_with_no_writes_must_return_initial() {
        let mut h = HighHistory::default();
        h.push_complete(0, HighOp::Read, HighResponse::ReadValue(0), 0, 1);
        assert!(check_ws_safe(&h, &register()).is_ok());
        let mut bad = HighHistory::default();
        bad.push_complete(0, HighOp::Read, HighResponse::ReadValue(4), 0, 1);
        assert!(check_ws_safe(&bad, &register()).is_err());
    }

    #[test]
    fn legal_values_window_is_computed_correctly() {
        let w1 = HighHistory::write(0, 1, 0, 1);
        let w2 = HighHistory::write(0, 2, 2, 3);
        let w3 = HighHistory::write(0, 3, 10, 11);
        // Read invoked after w2 returns, returns before w3 is invoked.
        let rd = HighHistory::read(1, 0, 4, 5);
        let legal = legal_read_values(&[w1, w2, w3], &rd, &register());
        assert_eq!(legal, vec![2]);
        // Read concurrent with w2 and w3 but after w1.
        let rd2 = HighHistory::read(1, 0, 2, 12);
        let legal2 = legal_read_values(&[w1, w2, w3], &rd2, &register());
        assert_eq!(legal2, vec![1, 2, 3]);
    }

    #[test]
    fn max_register_regularity_uses_prefix_maximum() {
        let spec = SequentialSpec::max_register();
        let mut h = HighHistory::default();
        h.push_complete(0, HighOp::Write(5), HighResponse::WriteAck, 0, 1);
        h.push_complete(1, HighOp::Write(3), HighResponse::WriteAck, 2, 3);
        h.push_complete(2, HighOp::Read, HighResponse::ReadValue(5), 4, 5);
        assert!(check_ws_regular(&h, &spec).is_ok());
        let mut bad = HighHistory::default();
        bad.push_complete(0, HighOp::Write(5), HighResponse::WriteAck, 0, 1);
        bad.push_complete(1, HighOp::Write(3), HighResponse::WriteAck, 2, 3);
        bad.push_complete(2, HighOp::Read, HighResponse::ReadValue(3), 4, 5);
        assert!(check_ws_regular(&bad, &spec).is_err());
    }
}
