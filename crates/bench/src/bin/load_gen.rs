//! `load_gen` — drive a live cluster at a configurable rate and report
//! latency percentiles.
//!
//! ```text
//! cargo run --release -p regemu-bench --bin load_gen -- \
//!     --params 8/1/3 --addr @node0.addr --addr @node1.addr --addr @node2.addr \
//!     [--emulation space-optimal] [--writers K] [--readers R] [--rounds N] \
//!     [--read-after-each] [--rate OPS_PER_SEC] [--out report.json]
//! ```
//!
//! Latency is measured per completed high-level operation into a hand-rolled
//! HDR-style histogram (exact below 16 µs, ≤ ~6.25 % relative error above),
//! and the run is summarized as JSON: completed ops, wall-clock ops/sec,
//! the p50/p99/p999/max/mean microsecond latencies, and a throughput
//! timeline (completed ops per 250 ms wall-clock bucket since the fleet
//! started). `--rate` caps each
//! client's issue rate; without it clients run closed-loop.
//!
//! Exit status: `0` on success (even with timeouts — they are reported in
//! the JSON), `1` on runtime errors, `2` on usage errors.

use regemu_bench::cli::write_output;
use regemu_bench::info;
use regemu_bench::serve_cli::{parse_params, resolve_addrs};
use regemu_bounds::Params;
use regemu_serve::{run_fleet, ClientOptions, FleetOutcome, FleetSpec};
use std::time::Duration;

fn fail(msg: &str) -> ! {
    eprintln!("load_gen: {msg}");
    eprintln!(
        "usage: load_gen --params K/F/N --addr ADDR... [--emulation NAME] \
         [--writers K] [--readers R] [--rounds N] [--read-after-each] \
         [--rate OPS_PER_SEC] [--out FILE|-]"
    );
    std::process::exit(2);
}

fn json_report(spec: &FleetSpec, outcome: &FleetOutcome) -> String {
    let h = &outcome.histogram;
    format!(
        concat!(
            "{{\n",
            "  \"emulation\": \"{}\",\n",
            "  \"params\": {{ \"k\": {}, \"f\": {}, \"n\": {} }},\n",
            "  \"writers\": {},\n",
            "  \"readers\": {},\n",
            "  \"rounds\": {},\n",
            "  \"ops\": {},\n",
            "  \"timeouts\": {},\n",
            "  \"errors\": {},\n",
            "  \"elapsed_ms\": {},\n",
            "  \"ops_per_sec\": {:.1},\n",
            "  \"timeline_bucket_ms\": {},\n",
            "  \"timeline\": [{}],\n",
            "  \"latency_us\": {{ \"p50\": {}, \"p99\": {}, \"p999\": {}, ",
            "\"max\": {}, \"mean\": {:.1} }}\n",
            "}}\n"
        ),
        spec.emulation.name(),
        spec.params.k,
        spec.params.f,
        spec.params.n,
        spec.writers,
        spec.readers,
        spec.rounds,
        outcome.ops,
        outcome.timeouts,
        outcome.errors,
        outcome.elapsed.as_millis(),
        outcome.ops_per_sec(),
        FleetOutcome::TIMELINE_BUCKET_MS,
        outcome
            .timeline
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(", "),
        h.p50(),
        h.p99(),
        h.p999(),
        h.max(),
        h.mean(),
    )
}

fn main() {
    let mut params: Option<Params> = None;
    let mut emulation = regemu_workloads::fuzz::FuzzEmulation::from_name("space-optimal").unwrap();
    let mut addr_specs: Vec<String> = Vec::new();
    let mut writers: Option<usize> = None;
    let mut readers: usize = 0;
    let mut rounds: usize = 50;
    let mut read_after_each = false;
    let mut rate: Option<f64> = None;
    let mut out = "-".to_string();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
        };
        let parse_count = |flag: &str, v: String| -> usize {
            v.parse()
                .unwrap_or_else(|_| fail(&format!("invalid {flag} value {v:?}")))
        };
        match arg.as_str() {
            "--params" => {
                params = Some(parse_params(&value("--params")).unwrap_or_else(|e| fail(&e)))
            }
            "--emulation" => {
                let v = value("--emulation");
                emulation = regemu_workloads::fuzz::FuzzEmulation::from_name(&v)
                    .unwrap_or_else(|| fail(&format!("unknown emulation {v:?}")));
            }
            "--addr" => addr_specs.push(value("--addr")),
            "--writers" => writers = Some(parse_count("--writers", value("--writers"))),
            "--readers" => readers = parse_count("--readers", value("--readers")),
            "--rounds" => rounds = parse_count("--rounds", value("--rounds")),
            "--read-after-each" => read_after_each = true,
            "--rate" => {
                let v = value("--rate");
                let parsed: f64 = v
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("invalid rate {v:?}")));
                if !(parsed > 0.0) {
                    fail(&format!("rate must be positive, got {v:?}"));
                }
                rate = Some(parsed);
            }
            "--out" => out = value("--out"),
            other => fail(&format!("unknown option {other:?}")),
        }
    }
    let params = params.unwrap_or_else(|| fail("--params is required"));
    let writers = writers.unwrap_or(params.k);
    if addr_specs.len() != params.n {
        fail(&format!(
            "{} --addr values for n = {} servers",
            addr_specs.len(),
            params.n
        ));
    }

    let addrs = resolve_addrs(&addr_specs, Duration::from_secs(10)).unwrap_or_else(|e| {
        eprintln!("load_gen: {e}");
        std::process::exit(1);
    });

    let spec = FleetSpec {
        emulation,
        params,
        writers,
        readers,
        rounds,
        read_after_each,
        rate,
    };
    let outcome = match run_fleet(spec, &addrs, &ClientOptions::default(), None) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("load_gen: {e}");
            std::process::exit(1);
        }
    };

    info!(
        "load_gen: {} ops, {:.0} ops/s, p50={}us p99={}us p999={}us max={}us",
        outcome.ops,
        outcome.ops_per_sec(),
        outcome.histogram.p50(),
        outcome.histogram.p99(),
        outcome.histogram.p999(),
        outcome.histogram.max(),
    );
    write_output(&out, &json_report(&spec, &outcome), "load report");
}
