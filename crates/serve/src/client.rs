//! The live client: one emulation client state machine over real transports.
//!
//! [`LiveClient`] drives exactly the [`regemu_fpsm::ClientNode`] the
//! simulator drives, but dispatches its triggers as wire requests instead of
//! scheduler-pending operations. The asynchronous model's freedoms map
//! directly: a lost message is a trigger whose server link died; an
//! indefinitely delayed message is a trigger to a *held* server
//! ([`ClientOptions::hold_servers`]) that is simply never sent. Holding
//! servers is how a live run reproduces the adversarial schedules the
//! simulator's schedulers explore — and how the conformance tests catch the
//! seeded weak-quorum bug on real sockets.
//!
//! [`run_fleet`] fans k writer clients (plus readers) out across threads,
//! one emulation instance per thread (protocol state machines are not
//! `Send`), and aggregates latency into a [`LatencyHistogram`].

use crate::transport::{ServeError, TcpTransport, Transport};
use regemu_bounds::Params;
use regemu_core::wire::{NodeStats, WireMsg};
use regemu_fpsm::{
    BaseOp, ClientId, ClientNode, ClientProtocol, Delivery, HighOp, HighOpId, HighResponse,
    ObjectId, OpId, Time, Topology,
};
use regemu_obs::LatencyHistogram;
use regemu_workloads::conform::ConformRecorder;
use regemu_workloads::fuzz::FuzzEmulation;
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Knobs of a [`LiveClient`].
#[derive(Clone, Debug)]
pub struct ClientOptions {
    /// How long a high-level operation may take before the client gives up.
    pub op_timeout: Duration,
    /// Per-server receive poll while waiting for responses.
    pub poll_timeout: Duration,
    /// TCP connect timeout per server.
    pub connect_timeout: Duration,
    /// Servers whose requests are delayed forever (never sent). The live
    /// analogue of the simulator's adversarial delivery delay.
    pub hold_servers: Vec<usize>,
    /// Servers whose *write-class* requests (`write`, `write-max`, `cas`)
    /// are delayed forever while reads pass through — this delays exactly
    /// the messages whose loss a write quorum must tolerate, which is how
    /// the loopback tests reproduce the weak-quorum ablation schedule on a
    /// real socket.
    pub hold_writes: Vec<usize>,
}

impl Default for ClientOptions {
    fn default() -> Self {
        ClientOptions {
            op_timeout: Duration::from_secs(5),
            poll_timeout: Duration::from_millis(1),
            connect_timeout: Duration::from_secs(2),
            hold_servers: Vec::new(),
            hold_writes: Vec::new(),
        }
    }
}

/// One emulation client running against live servers.
pub struct LiveClient {
    topology: Topology,
    node: ClientNode,
    /// Indexed by server; `None` = unreachable or failed (the crash-prone
    /// model's dead server).
    transports: Vec<Option<Box<dyn Transport>>>,
    /// Triggered-but-unanswered low-level operations, by raw op id.
    in_flight: HashMap<u64, (ObjectId, BaseOp)>,
    next_op_id: u64,
    next_high_id: u64,
    time: Time,
    recorder: Option<(Arc<ConformRecorder>, usize)>,
    options: ClientOptions,
}

impl LiveClient {
    /// Creates a client over pre-built transports (one slot per server;
    /// `None` marks a server as unreachable from the start).
    pub fn new(
        topology: Topology,
        client: ClientId,
        protocol: Box<dyn ClientProtocol>,
        transports: Vec<Option<Box<dyn Transport>>>,
        options: ClientOptions,
    ) -> Result<Self, ServeError> {
        if transports.len() != topology.server_count() {
            return Err(ServeError::Config(format!(
                "{} transports for a topology with {} servers",
                transports.len(),
                topology.server_count()
            )));
        }
        if transports.iter().all(Option::is_none) {
            return Err(ServeError::Config("no reachable servers".to_string()));
        }
        Ok(LiveClient {
            topology,
            node: ClientNode::new(client, protocol),
            transports,
            in_flight: HashMap::new(),
            next_op_id: 0,
            next_high_id: 0,
            time: 0,
            recorder: None,
            options,
        })
    }

    /// Connects to TCP servers at `addrs` (one per server, in server order).
    /// Unreachable servers are marked dead, not fatal — the emulations
    /// tolerate up to `f` of them; only *zero* reachable servers is an error.
    pub fn connect_tcp(
        topology: Topology,
        client: ClientId,
        protocol: Box<dyn ClientProtocol>,
        addrs: &[SocketAddr],
        options: ClientOptions,
    ) -> Result<Self, ServeError> {
        if addrs.len() != topology.server_count() {
            return Err(ServeError::Config(format!(
                "{} addresses for a topology with {} servers",
                addrs.len(),
                topology.server_count()
            )));
        }
        let transports = addrs
            .iter()
            .map(|&addr| {
                TcpTransport::connect(addr, options.connect_timeout)
                    .ok()
                    .map(|t| Box::new(t) as Box<dyn Transport>)
            })
            .collect();
        LiveClient::new(topology, client, protocol, transports, options)
    }

    /// Attaches a conformance recorder; this client's invoke/return records
    /// are tagged with process-local client index `client_index`.
    pub fn with_recorder(mut self, recorder: Arc<ConformRecorder>, client_index: usize) -> Self {
        self.recorder = Some((recorder, client_index));
        self
    }

    /// Number of servers still reachable.
    pub fn live_servers(&self) -> usize {
        self.transports.iter().filter(|t| t.is_some()).count()
    }

    /// Completed high-level operations, in completion order.
    pub fn completed(&self) -> &[(HighOpId, HighOp, HighResponse)] {
        self.node.completed()
    }

    /// Runs one high-level operation to completion (or times out).
    ///
    /// A timeout leaves the operation pending — recorded as an open interval
    /// in the conformance log, exactly like a crashed simulator client — and
    /// poisons the client for further operations.
    pub fn run_op(&mut self, op: HighOp) -> Result<HighResponse, ServeError> {
        if self.node.current().is_some() {
            return Err(ServeError::Config(
                "client has a timed-out operation still pending".to_string(),
            ));
        }
        let high = HighOpId::new(self.next_high_id);
        self.next_high_id += 1;
        if let Some((recorder, client)) = &self.recorder {
            recorder.record_invoke(*client, high.index(), op);
        }
        self.time += 1;
        let effects = self
            .node
            .on_invoke(high, op, self.time, &mut self.next_op_id);
        if let Some(response) = self.dispatch(effects)? {
            return Ok(response);
        }
        let started = Instant::now();
        let deadline = started + self.options.op_timeout;
        while Instant::now() < deadline {
            if self.live_servers() == 0 {
                return Err(ServeError::Disconnected {
                    peer: "all servers".to_string(),
                });
            }
            for server in 0..self.transports.len() {
                let Some(msg) = self.poll_server(server) else {
                    continue;
                };
                if let Some(effects) = self.handle_message(msg) {
                    if let Some(response) = self.dispatch(effects)? {
                        return Ok(response);
                    }
                }
            }
        }
        Err(ServeError::Timeout {
            what: format!("high-level operation {op:?}"),
            waited: started.elapsed(),
        })
    }

    /// Polls one server's transport; marks it dead on error.
    fn poll_server(&mut self, server: usize) -> Option<WireMsg> {
        let transport = self.transports[server].as_mut()?;
        match transport.recv_timeout(self.options.poll_timeout) {
            Ok(found) => found,
            Err(_) => {
                self.transports[server] = None;
                None
            }
        }
    }

    /// Turns a wire message into protocol effects, if it answers an
    /// operation we have in flight.
    fn handle_message(&mut self, msg: WireMsg) -> Option<regemu_fpsm::ClientEffects> {
        match msg {
            WireMsg::Response {
                op_id,
                clock,
                response,
            } => {
                if let Some((recorder, _)) = &self.recorder {
                    recorder.observe(clock);
                }
                let (object, op) = self.in_flight.remove(&op_id)?;
                let delivery = Delivery {
                    op_id: OpId::new(op_id),
                    object,
                    server: self.topology.server_of(object),
                    op,
                    response,
                };
                self.time += 1;
                Some(
                    self.node
                        .on_delivery(delivery, self.time, &mut self.next_op_id),
                )
            }
            // A fault is a refusal: the low-level op will never complete,
            // which the asynchronous model treats as a lost message.
            WireMsg::Fault { op_id, .. } => {
                self.in_flight.remove(&op_id);
                None
            }
            // Servers never send requests, and stats frames never answer an
            // operation; ignore both.
            WireMsg::Request { .. } | WireMsg::StatsQuery | WireMsg::StatsReply { .. } => None,
        }
    }

    /// Sends triggered low-level operations and retires a completion.
    fn dispatch(
        &mut self,
        effects: regemu_fpsm::ClientEffects,
    ) -> Result<Option<HighResponse>, ServeError> {
        for (op_id, object, op) in effects.triggers {
            let server = self.topology.server_of(object).index();
            self.in_flight.insert(op_id.index(), (object, op));
            let is_write_class = matches!(
                op,
                BaseOp::Write(_) | BaseOp::WriteMax(_) | BaseOp::Cas { .. }
            );
            if self.options.hold_servers.contains(&server)
                || (is_write_class && self.options.hold_writes.contains(&server))
            {
                // Held: the message is in transit forever.
                continue;
            }
            if let Some(transport) = &mut self.transports[server] {
                let msg = WireMsg::Request {
                    op_id: op_id.index(),
                    object: object.index() as u64,
                    op,
                };
                if transport.send(&msg).is_err() {
                    self.transports[server] = None;
                }
            }
        }
        if let Some(response) = effects.completion {
            let (high, _op) = self.node.finish(response);
            if let Some((recorder, client)) = &self.recorder {
                recorder.record_return(*client, high.index(), response);
            }
            return Ok(Some(response));
        }
        Ok(None)
    }
}

/// Scrapes one server's [`NodeStats`] over TCP: connects, sends a
/// [`WireMsg::StatsQuery`] and waits up to `timeout` for the reply.
///
/// The exchange is read-only on the server side — it takes the state lock
/// once to pair the counters with the logical clock, never touching the
/// register state — so scraping a busy node is safe.
pub fn scrape_stats(addr: SocketAddr, timeout: Duration) -> Result<NodeStats, ServeError> {
    let mut transport = TcpTransport::connect(addr, timeout)?;
    transport.send(&WireMsg::StatsQuery)?;
    let started = Instant::now();
    while started.elapsed() < timeout {
        match transport.recv_timeout(Duration::from_millis(10))? {
            Some(WireMsg::StatsReply { stats }) => return Ok(stats),
            Some(other) => {
                return Err(ServeError::Config(format!(
                    "unexpected reply to a stats query: {other:?}"
                )))
            }
            None => {}
        }
    }
    Err(ServeError::Timeout {
        what: "stats reply".to_string(),
        waited: started.elapsed(),
    })
}

/// A fleet of writer/reader clients to fan out across threads.
#[derive(Clone, Copy, Debug)]
pub struct FleetSpec {
    /// Which emulation every client runs.
    pub emulation: FuzzEmulation,
    /// The emulation's `(k, f, n)` parameters.
    pub params: Params,
    /// Writer clients (at most `params.k` for the bounded-writer
    /// constructions).
    pub writers: usize,
    /// Reader clients.
    pub readers: usize,
    /// High-level write rounds per writer (and reads per reader).
    pub rounds: usize,
    /// Whether each writer reads back after every write.
    pub read_after_each: bool,
    /// Per-client operation rate cap in ops/sec (`None` = as fast as
    /// possible).
    pub rate: Option<f64>,
}

/// What a [`run_fleet`] campaign did.
#[derive(Debug)]
pub struct FleetOutcome {
    /// Completed high-level operations across all clients.
    pub ops: u64,
    /// Operations that timed out (each poisons its client).
    pub timeouts: u64,
    /// Clients that failed for any other reason.
    pub errors: u64,
    /// Wall-clock time of the whole fleet.
    pub elapsed: Duration,
    /// Latency of completed operations, in microseconds.
    pub histogram: LatencyHistogram,
    /// Completed operations per [`FleetOutcome::TIMELINE_BUCKET_MS`]-wide
    /// wall-clock bucket since the fleet started: the throughput timeline
    /// `load_gen` puts in its JSON report. Bucket 0 covers the first
    /// interval; trailing buckets may be absent if no op landed there.
    pub timeline: Vec<u64>,
}

impl FleetOutcome {
    /// Width of one [`FleetOutcome::timeline`] bucket, in milliseconds.
    pub const TIMELINE_BUCKET_MS: u64 = 250;

    /// Completed operations per wall-clock second.
    pub fn ops_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.ops as f64 / secs
        } else {
            0.0
        }
    }
}

/// Runs `spec` against TCP servers at `addrs`, one thread per client.
///
/// Each thread builds its own emulation instance from the `Copy`able spec
/// (protocol state machines are not `Send`), connects, and runs its rounds.
/// Writer `c` writes the distinct values `c*rounds + r + 1`; conformance
/// client indices are writers first, then readers.
pub fn run_fleet(
    spec: FleetSpec,
    addrs: &[SocketAddr],
    options: &ClientOptions,
    recorder: Option<Arc<ConformRecorder>>,
) -> Result<FleetOutcome, ServeError> {
    if spec.writers > spec.params.k {
        return Err(ServeError::Config(format!(
            "{} writers but the emulation supports k = {}",
            spec.writers, spec.params.k
        )));
    }
    let started = Instant::now();
    let mut workers = Vec::new();
    for client in 0..spec.writers + spec.readers {
        let addrs = addrs.to_vec();
        let options = options.clone();
        let recorder = recorder.clone();
        workers.push(std::thread::spawn(move || {
            run_fleet_client(spec, client, &addrs, options, recorder, started)
        }));
    }
    let mut outcome = FleetOutcome {
        ops: 0,
        timeouts: 0,
        errors: 0,
        elapsed: Duration::ZERO,
        histogram: LatencyHistogram::new(),
        timeline: Vec::new(),
    };
    for worker in workers {
        let (hist, timeline, ops, timeouts, errors) = worker
            .join()
            .map_err(|_| ServeError::Config("fleet worker panicked".to_string()))?;
        outcome.histogram.merge(&hist);
        for (bucket, count) in timeline.into_iter().enumerate() {
            if outcome.timeline.len() <= bucket {
                outcome.timeline.resize(bucket + 1, 0);
            }
            outcome.timeline[bucket] += count;
        }
        outcome.ops += ops;
        outcome.timeouts += timeouts;
        outcome.errors += errors;
    }
    outcome.elapsed = started.elapsed();
    Ok(outcome)
}

/// One fleet worker: returns `(histogram, timeline, ops, timeouts, errors)`.
fn run_fleet_client(
    spec: FleetSpec,
    client: usize,
    addrs: &[SocketAddr],
    options: ClientOptions,
    recorder: Option<Arc<ConformRecorder>>,
    fleet_started: Instant,
) -> (LatencyHistogram, Vec<u64>, u64, u64, u64) {
    let mut hist = LatencyHistogram::new();
    let mut timeline: Vec<u64> = Vec::new();
    let emulation = spec.emulation.build(spec.params);
    let is_writer = client < spec.writers;
    let protocol = if is_writer {
        emulation.writer_protocol(client)
    } else {
        emulation.reader_protocol()
    };
    let mut live = match LiveClient::connect_tcp(
        emulation.topology().clone(),
        ClientId::new(client),
        protocol,
        addrs,
        options,
    ) {
        Ok(live) => live,
        Err(_) => return (hist, timeline, 0, 0, 1),
    };
    if let Some(recorder) = recorder {
        live = live.with_recorder(recorder, client);
    }
    let mut ops = Vec::new();
    for round in 0..spec.rounds {
        if is_writer {
            ops.push(HighOp::Write((client * spec.rounds + round + 1) as u64));
            if spec.read_after_each {
                ops.push(HighOp::Read);
            }
        } else {
            ops.push(HighOp::Read);
        }
    }
    let (mut done, mut timeouts, mut errors) = (0u64, 0u64, 0u64);
    let pace_start = Instant::now();
    for (index, op) in ops.into_iter().enumerate() {
        if let Some(rate) = spec.rate {
            let due = pace_start + Duration::from_secs_f64(index as f64 / rate);
            let now = Instant::now();
            if due > now {
                std::thread::sleep(due - now);
            }
        }
        let op_started = Instant::now();
        match live.run_op(op) {
            Ok(_) => {
                hist.record(op_started.elapsed().as_micros() as u64);
                let bucket = (fleet_started.elapsed().as_millis() as u64
                    / FleetOutcome::TIMELINE_BUCKET_MS) as usize;
                if timeline.len() <= bucket {
                    timeline.resize(bucket + 1, 0);
                }
                timeline[bucket] += 1;
                done += 1;
            }
            Err(ServeError::Timeout { .. }) => {
                // The client is poisoned (the op is still pending); stop it.
                timeouts += 1;
                break;
            }
            Err(_) => {
                errors += 1;
                break;
            }
        }
    }
    (hist, timeline, done, timeouts, errors)
}
