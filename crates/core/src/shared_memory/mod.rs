//! Real-threaded shared-memory max-register implementations.
//!
//! The paper's classification also says something about the *standard* shared
//! memory model (no object failures): Theorem 2 shows a `k`-writer
//! max-register cannot be built from fewer than `k` read/write registers,
//! while Appendix B shows a single CAS suffices — at a time-complexity cost
//! that grows with contention (Section 5's discussion).
//!
//! This module provides executable counterparts of those constructions as
//! ordinary concurrent Rust types, exercised by multi-threaded tests and
//! Criterion benchmarks:
//!
//! * [`CasMaxRegister`] — Algorithm 1 verbatim over a single
//!   compare-and-swap word;
//! * [`CollectMaxRegister`] — the `k`-slot collect-based construction that
//!   matches Theorem 2's lower bound;
//! * [`FetchMaxRegister`] — a `fetch_max`-based baseline representing a
//!   "native" max-register.

mod cas_max;
mod collect_max;
mod fetch_max;

pub use cas_max::CasMaxRegister;
pub use collect_max::{CollectMaxRegister, CollectWriter};
pub use fetch_max::FetchMaxRegister;

/// The common interface of the shared-memory max-register implementations.
///
/// Note that [`CollectMaxRegister`]'s implementation of this trait routes all
/// writes through slot 0 and therefore assumes a *single* writer uses the
/// trait entry point; concurrent writers must use per-writer
/// [`CollectWriter`] handles, which is how the construction is defined.
pub trait SharedMaxRegister: Send + Sync {
    /// Writes `value` into the max-register (no effect if the current
    /// maximum is already at least `value`).
    fn write_max(&self, value: u64);

    /// Returns the largest value written so far (or 0).
    fn read_max(&self) -> u64;
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn exercise(reg: Arc<dyn SharedMaxRegister>) {
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let reg = reg.clone();
                std::thread::spawn(move || {
                    for i in 0..200u64 {
                        reg.write_max(t * 1000 + i);
                        let seen = reg.read_max();
                        assert!(seen >= t * 1000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(reg.read_max(), 3 * 1000 + 199);
    }

    #[test]
    fn multi_writer_implementations_converge_to_the_global_maximum() {
        exercise(Arc::new(CasMaxRegister::new(0)));
        exercise(Arc::new(FetchMaxRegister::new(0)));
    }

    #[test]
    fn collect_max_register_converges_with_per_writer_handles() {
        let reg = Arc::new(CollectMaxRegister::new(4, 0));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let writer = reg.writer(t);
                std::thread::spawn(move || {
                    for i in 0..200u64 {
                        writer.write_max(t as u64 * 1000 + i);
                        assert!(writer.read_max() >= t as u64 * 1000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(reg.read_max(), 3 * 1000 + 199);
    }
}
