//! `sweep_grid` — run a `(k, f, n) × emulation × workload × scheduler ×
//! crash-plan × recording × seed` sweep in parallel and serialize the
//! aggregated report.
//!
//! ```text
//! cargo run --release -p regemu-bench --bin sweep_grid -- [OPTIONS]
//!
//! OPTIONS:
//!   --quick             24-case grid (CI smoke) instead of the 96-case default
//!   --threads N         worker threads (default: one per CPU core)
//!   --seeds a,b,...     override the scheduler seeds
//!   --schedulers a,b    scheduler axis (fair, round-robin, delayed,
//!                       adversary-cover, adversary-silence; or `all`)
//!   --crash-plans a,b   crash-plan axis (none, crash-f; or `all`)
//!   --crash-f           shorthand for `--crash-plans crash-f`
//!   --recording a,b     recording-mode axis (full, digest, ring:N)
//!   --shards N          split the case space into N shards and run them
//!                       through the campaign shard/merge path (in-process;
//!                       see `campaign_coordinator` for multi-process runs)
//!   --json PATH         write the report as JSON (- for stdout)
//!   --csv PATH          write the report as CSV (- for stdout)
//! ```
//!
//! The report is deterministic: identical options produce byte-identical
//! JSON/CSV for any `--threads` value — and, through the campaign layer,
//! for any `--shards` value.

use regemu_bench::cli::{write_output, ConfigFlags, CONFIG_USAGE};
use regemu_bench::info;
use regemu_workloads::campaign::{run_campaign, CampaignOptions, WorkerMode};
use regemu_workloads::run_sweep;
use std::time::Instant;

fn fail(msg: &str) -> ! {
    eprintln!("sweep_grid: {msg}");
    eprintln!("usage: sweep_grid {CONFIG_USAGE} [--shards N] [--json PATH] [--csv PATH]");
    std::process::exit(2);
}

fn main() {
    // Collect flags first, then build the config, so option meaning does not
    // depend on argument order (e.g. `--seeds 1,2 --quick` keeps the seeds).
    let mut flags = ConfigFlags::default();
    let mut shards: usize = 1;
    let mut json_out: Option<String> = None;
    let mut csv_out: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match flags.accept(&arg, &mut args) {
            Ok(true) => continue,
            Ok(false) => {}
            Err(e) => fail(&e),
        }
        match arg.as_str() {
            "--shards" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| fail("--shards needs a value"));
                shards = v
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("invalid shard count {v:?}")));
                if shards == 0 {
                    fail("--shards needs at least one shard");
                }
            }
            "--json" => json_out = Some(args.next().unwrap_or_else(|| fail("--json needs a path"))),
            "--csv" => csv_out = Some(args.next().unwrap_or_else(|| fail("--csv needs a path"))),
            other => fail(&format!("unknown option {other:?}")),
        }
    }

    let config = flags.into_config().unwrap_or_else(|e| fail(&e));

    let cases = config.case_count();
    let started = Instant::now();
    let report = if shards > 1 {
        // Convenience path through the campaign layer: a throwaway spool,
        // in-process workers, full shard/merge round trip.
        let spool = std::env::temp_dir().join(format!("regemu-sweep-grid-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&spool);
        let mut options = CampaignOptions::new(&spool);
        options.shards = shards;
        options.worker_threads = config.threads;
        options.worker = WorkerMode::InProcess;
        options.quiet = true;
        let outcome = run_campaign(&config, &options).unwrap_or_else(|e| {
            eprintln!("sweep_grid: campaign failed: {e}");
            std::process::exit(1);
        });
        let _ = std::fs::remove_dir_all(&spool);
        outcome.report.expect("in-process campaign ran every shard")
    } else {
        run_sweep(&config)
    };
    let elapsed = started.elapsed();

    let consistent = report.results().iter().filter(|r| r.consistent).count();
    info!(
        "swept {cases} cases in {elapsed:.2?} ({} grid points x {} emulations x {} workloads x {} schedulers x {} crash plans x {} recordings x {} seeds{}): {consistent}/{cases} consistent",
        config.grid.len(),
        config.emulations.len(),
        config.workloads.len(),
        config.schedulers.len(),
        config.crash_plans.len(),
        config.recordings.len(),
        config.seeds.len(),
        if shards > 1 {
            format!(", {shards} shards")
        } else {
            String::new()
        },
    );
    for failure in report.failures() {
        eprintln!(
            "  FAIL case {} {} {} {} {} {} seed {}: {}",
            failure.case.index,
            failure.case.emulation,
            failure.case.params,
            failure.case.workload,
            failure.case.scheduler,
            failure.case.crashes,
            failure.case.seed,
            failure
                .error
                .as_deref()
                .or(failure.violation.as_deref())
                .unwrap_or("inconsistent"),
        );
    }

    if let Some(path) = &json_out {
        write_output(path, &report.to_json(), "JSON");
    }
    if let Some(path) = &csv_out {
        write_output(path, &report.to_csv(), "CSV");
    }
    if json_out.is_none() && csv_out.is_none() {
        // No sink requested: summarize per emulation on stdout.
        for kind in &config.emulations {
            let rows: Vec<_> = report
                .results()
                .iter()
                .filter(|r| r.case.emulation == *kind)
                .collect();
            let max_consumption = rows
                .iter()
                .map(|r| r.resource_consumption)
                .max()
                .unwrap_or(0);
            let completed: usize = rows.iter().map(|r| r.completed_ops).sum();
            println!(
                "{:>18}: {} cases, {} ops completed, max consumption {}",
                kind.name(),
                rows.len(),
                completed,
                max_consumption,
            );
        }
    }

    if !report.all_consistent() {
        std::process::exit(1);
    }
}
