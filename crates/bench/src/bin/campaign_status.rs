//! `campaign_status` — dashboard over a campaign spool directory.
//!
//! ```text
//! cargo run --release -p regemu-bench --bin campaign_status -- \
//!     --spool DIR [--watch] [--interval-ms MS] [--stall-ms MS]
//! ```
//!
//! Works on any spool kind — sweep, frontier or fuzz campaigns are
//! auto-detected from the manifests — and renders one aligned table: per
//! shard, its judged health (`done` / `running` / `stalled` / `pending` /
//! `unknown`), progress, throughput, heartbeat age and retries, plus the
//! campaign's aggregate progress, ETA and stalled-worker count. With
//! `--watch` the dashboard reprints every `--interval-ms` (default 1000)
//! until the campaign completes.
//!
//! The reader is deliberately unshockable: a torn, truncated, stale or
//! garbage `stats-NNNN.json` heartbeat — e.g. one caught mid-rename, or a
//! worker killed mid-write — degrades that shard to `unknown` and nothing
//! more. A spool with no readable manifest prints a diagnostic instead of
//! a table. Exit status: `0` always (including torn and missing files),
//! `2` on usage errors — a monitoring command must never page the pager.

use regemu_workloads::status::{campaign_status, now_unix_ms, render_status};
use std::path::PathBuf;
use std::time::Duration;

fn fail(msg: &str) -> ! {
    eprintln!("campaign_status: {msg}");
    eprintln!("usage: campaign_status --spool DIR [--watch] [--interval-ms MS] [--stall-ms MS]");
    std::process::exit(2);
}

fn main() {
    let mut spool: Option<PathBuf> = None;
    let mut watch = false;
    let mut interval_ms: u64 = 1_000;
    let mut stall_ms: u64 = 30_000;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--spool" => spool = Some(PathBuf::from(value("--spool"))),
            "--watch" => watch = true,
            "--interval-ms" => {
                let v = value("--interval-ms");
                interval_ms = v
                    .parse()
                    .ok()
                    .filter(|ms| *ms > 0)
                    .unwrap_or_else(|| fail(&format!("invalid interval {v:?}")));
            }
            "--stall-ms" => {
                let v = value("--stall-ms");
                stall_ms = v
                    .parse()
                    .ok()
                    .filter(|ms| *ms > 0)
                    .unwrap_or_else(|| fail(&format!("invalid stall threshold {v:?}")));
            }
            other => fail(&format!("unknown option {other:?}")),
        }
    }
    let spool = spool.unwrap_or_else(|| fail("--spool is required"));

    loop {
        // The fold never panics on spool contents; an unreadable spool is
        // reported and — like every other outcome — exits 0: this tool
        // observes campaigns, it must not fail them.
        let complete = match campaign_status(&spool, now_unix_ms(), stall_ms) {
            Ok(report) => {
                print!("{}", render_status(&spool, &report));
                report.complete
            }
            Err(reason) => {
                println!("campaign_status: {reason}");
                false
            }
        };
        if !watch || complete {
            break;
        }
        println!();
        std::thread::sleep(Duration::from_millis(interval_ms));
    }
}
