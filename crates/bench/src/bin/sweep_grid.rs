//! `sweep_grid` — run a `(k, f, n) × emulation × workload × scheduler ×
//! crash-plan × recording × seed` sweep in parallel and serialize the
//! aggregated report.
//!
//! ```text
//! cargo run --release -p regemu-bench --bin sweep_grid -- [OPTIONS]
//!
//! OPTIONS:
//!   --quick             24-case grid (CI smoke) instead of the 96-case default
//!   --threads N         worker threads (default: one per CPU core)
//!   --seeds a,b,...     override the scheduler seeds
//!   --schedulers a,b    scheduler axis (fair, round-robin, adversary-cover,
//!                       adversary-silence; or `all`)
//!   --crash-plans a,b   crash-plan axis (none, crash-f; or `all`)
//!   --crash-f           shorthand for `--crash-plans crash-f`
//!   --recording a,b     recording-mode axis (full, digest, ring:N)
//!   --json PATH         write the report as JSON (- for stdout)
//!   --csv PATH          write the report as CSV (- for stdout)
//! ```
//!
//! The report is deterministic: identical options produce byte-identical
//! JSON/CSV for any `--threads` value.

use regemu_workloads::{run_sweep, CrashPlanSpec, RecordingModeSpec, SchedulerSpec, SweepConfig};
use std::time::Instant;

fn fail(msg: &str) -> ! {
    eprintln!("sweep_grid: {msg}");
    eprintln!(
        "usage: sweep_grid [--quick] [--threads N] [--seeds a,b,..] \
         [--schedulers a,b,..] [--crash-plans a,b,..] [--crash-f] \
         [--recording a,b,..] [--json PATH] [--csv PATH]"
    );
    std::process::exit(2);
}

fn main() {
    // Collect flags first, then build the config, so option meaning does not
    // depend on argument order (e.g. `--seeds 1,2 --quick` keeps the seeds).
    let mut quick = false;
    let mut crash_f = false;
    let mut threads: Option<usize> = None;
    let mut seeds: Option<Vec<u64>> = None;
    let mut schedulers: Option<Vec<SchedulerSpec>> = None;
    let mut crash_plans: Option<Vec<CrashPlanSpec>> = None;
    let mut recordings: Option<Vec<RecordingModeSpec>> = None;
    let mut json_out: Option<String> = None;
    let mut csv_out: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--threads" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| fail("--threads needs a value"));
                threads = Some(
                    v.parse()
                        .unwrap_or_else(|_| fail(&format!("invalid thread count {v:?}"))),
                );
            }
            "--seeds" => {
                let v = args.next().unwrap_or_else(|| fail("--seeds needs a value"));
                let parsed: Vec<u64> = v
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse()
                            .unwrap_or_else(|_| fail(&format!("invalid seed {s:?}")))
                    })
                    .collect();
                if parsed.is_empty() {
                    fail("--seeds needs at least one seed");
                }
                seeds = Some(parsed);
            }
            "--schedulers" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| fail("--schedulers needs a value"));
                let parsed: Vec<SchedulerSpec> = if v.trim() == "all" {
                    SchedulerSpec::ALL.to_vec()
                } else {
                    v.split(',')
                        .map(|s| {
                            SchedulerSpec::from_name(s.trim())
                                .unwrap_or_else(|| fail(&format!("unknown scheduler {s:?}")))
                        })
                        .collect()
                };
                if parsed.is_empty() {
                    fail("--schedulers needs at least one scheduler");
                }
                schedulers = Some(parsed);
            }
            "--crash-plans" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| fail("--crash-plans needs a value"));
                let parsed: Vec<CrashPlanSpec> = if v.trim() == "all" {
                    CrashPlanSpec::ALL.to_vec()
                } else {
                    v.split(',')
                        .map(|s| {
                            CrashPlanSpec::from_name(s.trim())
                                .unwrap_or_else(|| fail(&format!("unknown crash plan {s:?}")))
                        })
                        .collect()
                };
                if parsed.is_empty() {
                    fail("--crash-plans needs at least one crash plan");
                }
                crash_plans = Some(parsed);
            }
            "--crash-f" => crash_f = true,
            "--recording" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| fail("--recording needs a value"));
                let parsed: Vec<RecordingModeSpec> = v
                    .split(',')
                    .map(|s| {
                        RecordingModeSpec::from_label(s.trim()).unwrap_or_else(|| {
                            fail(&format!(
                                "unknown recording mode {s:?} (expected full, digest or ring:N)"
                            ))
                        })
                    })
                    .collect();
                if parsed.is_empty() {
                    fail("--recording needs at least one mode");
                }
                recordings = Some(parsed);
            }
            "--json" => json_out = Some(args.next().unwrap_or_else(|| fail("--json needs a path"))),
            "--csv" => csv_out = Some(args.next().unwrap_or_else(|| fail("--csv needs a path"))),
            other => fail(&format!("unknown option {other:?}")),
        }
    }

    let mut config = if quick {
        SweepConfig::quick()
    } else {
        SweepConfig::standard()
    };
    if let Some(threads) = threads {
        config.threads = threads;
    }
    if let Some(seeds) = seeds {
        config.seeds = seeds;
    }
    if let Some(schedulers) = schedulers {
        config.schedulers = schedulers;
    }
    if let Some(recordings) = recordings {
        config.recordings = recordings;
    }
    match (crash_plans, crash_f) {
        (Some(_), true) => fail("--crash-f conflicts with --crash-plans; pass one of them"),
        (Some(crash_plans), false) => config.crash_plans = crash_plans,
        (None, true) => config.crash_plans = vec![CrashPlanSpec::CrashF],
        (None, false) => {}
    }

    let cases = config.case_count();
    let started = Instant::now();
    let report = run_sweep(&config);
    let elapsed = started.elapsed();

    let consistent = report.results().iter().filter(|r| r.consistent).count();
    eprintln!(
        "swept {cases} cases in {elapsed:.2?} ({} grid points x {} emulations x {} workloads x {} schedulers x {} crash plans x {} recordings x {} seeds): {consistent}/{cases} consistent",
        config.grid.len(),
        config.emulations.len(),
        config.workloads.len(),
        config.schedulers.len(),
        config.crash_plans.len(),
        config.recordings.len(),
        config.seeds.len(),
    );
    for failure in report.failures() {
        eprintln!(
            "  FAIL case {} {} {} {} {} {} seed {}: {}",
            failure.case.index,
            failure.case.emulation,
            failure.case.params,
            failure.case.workload,
            failure.case.scheduler,
            failure.case.crashes,
            failure.case.seed,
            failure
                .error
                .as_deref()
                .or(failure.violation.as_deref())
                .unwrap_or("inconsistent"),
        );
    }

    let write = |target: &str, payload: &str, what: &str| {
        if target == "-" {
            print!("{payload}");
        } else if let Err(e) = std::fs::write(target, payload) {
            eprintln!("sweep_grid: cannot write {what} to {target}: {e}");
            std::process::exit(1);
        } else {
            eprintln!("wrote {what} to {target}");
        }
    };
    if let Some(path) = &json_out {
        write(path, &report.to_json(), "JSON");
    }
    if let Some(path) = &csv_out {
        write(path, &report.to_csv(), "CSV");
    }
    if json_out.is_none() && csv_out.is_none() {
        // No sink requested: summarize per emulation on stdout.
        for kind in &config.emulations {
            let rows: Vec<_> = report
                .results()
                .iter()
                .filter(|r| r.case.emulation == *kind)
                .collect();
            let max_consumption = rows
                .iter()
                .map(|r| r.resource_consumption)
                .max()
                .unwrap_or(0);
            let completed: usize = rows.iter().map(|r| r.completed_ops).sum();
            println!(
                "{:>18}: {} cases, {} ops completed, max consumption {}",
                kind.name(),
                rows.len(),
                completed,
                max_consumption,
            );
        }
    }

    if !report.all_consistent() {
        std::process::exit(1);
    }
}
