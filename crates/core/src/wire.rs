//! Wire codec for the live service: length-prefixed, hand-rolled frames.
//!
//! The `regemu-serve` crate ships low-level operations between client and
//! server processes. The container builds fully offline (the serde shim's
//! derive is a no-op), so the codec is hand-rolled: fixed little-endian
//! integers, one tag byte per enum, and a `u32` little-endian length prefix
//! per frame. The same codec is used in both directions and by both the
//! in-process channel transport (which skips the prefix) and the TCP
//! transport.
//!
//! Robustness contract: decoding **never panics**. Truncated, oversized and
//! garbage frames all surface as typed [`FrameError`]s, mirroring the
//! line-numbered errors of the `regemu-trace v1` text format.

use regemu_fpsm::op::{BaseOp, BaseResponse};
use regemu_fpsm::value::Value;

/// Version byte carried in every frame, after the message tag.
pub const WIRE_VERSION: u8 = 1;

/// Version byte carried by `Stats` frames ([`WireMsg::StatsQuery`] /
/// [`WireMsg::StatsReply`], tag 4), introduced after [`WIRE_VERSION`] 1
/// shipped.
///
/// Stats frames are version-gated separately: a version-1 peer checks the
/// version byte *before* dispatching on the tag, so it rejects any Stats
/// frame cleanly as [`FrameError::BadVersion`] instead of misparsing it —
/// see `old_version_peers_reject_stats_frames_cleanly` in this module's
/// tests for the executable proof.
pub const STATS_VERSION: u8 = 2;

/// Hard upper bound on a frame body, in bytes.
///
/// The largest legal message (a CAS request: tag + version + op id + object
/// id + op tag + two values) is 51 bytes — a stats reply is 43 — so anything
/// claiming more is garbage or a framing error, and rejecting it early keeps
/// a corrupt peer from making us buffer unbounded data.
pub const MAX_FRAME_LEN: usize = 64;

/// Per-node telemetry counters carried by a [`WireMsg::StatsReply`].
///
/// Plain data: the serve layer fills it from its `regemu-obs` registry; the
/// codec itself depends on nothing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Requests received since the server started.
    pub requests: u64,
    /// Successful responses sent.
    pub responses: u64,
    /// Fault messages sent.
    pub faults: u64,
    /// Requests currently being applied (in-flight gauge).
    pub in_flight: u64,
    /// Operations applied to base objects (the linearization-point count).
    pub applied: u64,
}

/// Fault codes a server can send instead of a response.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultCode {
    /// The addressed object is not hosted on this server.
    NotHosted,
    /// The hosted object does not support the requested operation.
    UnsupportedOp,
    /// The hosted object has crashed.
    Crashed,
}

impl FaultCode {
    fn tag(self) -> u8 {
        match self {
            FaultCode::NotHosted => 0,
            FaultCode::UnsupportedOp => 1,
            FaultCode::Crashed => 2,
        }
    }

    fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(FaultCode::NotHosted),
            1 => Some(FaultCode::UnsupportedOp),
            2 => Some(FaultCode::Crashed),
            _ => None,
        }
    }
}

impl std::fmt::Display for FaultCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultCode::NotHosted => write!(f, "not-hosted"),
            FaultCode::UnsupportedOp => write!(f, "unsupported-op"),
            FaultCode::Crashed => write!(f, "crashed"),
        }
    }
}

/// A message of the live-service wire protocol.
///
/// Ids travel as raw integers (`op_id` = [`regemu_fpsm::OpId`], `object` =
/// [`regemu_fpsm::ObjectId`] index) so the codec stays independent of the
/// id newtypes; the endpoints re-wrap them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireMsg {
    /// Client → server: apply `op` to the object with global id `object`.
    Request {
        /// Low-level operation id, unique per client connection.
        op_id: u64,
        /// Global object id (topology-wide index).
        object: u64,
        /// The low-level operation to apply.
        op: BaseOp,
    },
    /// Server → client: the object's response to request `op_id`.
    Response {
        /// Echo of the request's operation id.
        op_id: u64,
        /// The server's logical clock after applying the operation; clients
        /// fold it into their own clock, Lamport-style, so conformance-log
        /// stamps respect cross-process real-time order.
        clock: u64,
        /// The response the (atomic) base object produced.
        response: BaseResponse,
    },
    /// Server → client: request `op_id` could not be applied.
    Fault {
        /// Echo of the request's operation id.
        op_id: u64,
        /// Why the operation was rejected.
        code: FaultCode,
    },
    /// Client → server: ask for the node's telemetry counters.
    ///
    /// Version-gated at [`STATS_VERSION`]: version-1 peers reject it as
    /// [`FrameError::BadVersion`] without touching the tag.
    StatsQuery,
    /// Server → client: the node's telemetry counters.
    StatsReply {
        /// The counters at the moment the query was handled.
        stats: NodeStats,
    },
}

/// A typed decoding failure. Decoding never panics; every malformed input
/// maps to one of these.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The input ended before the field `field` was complete.
    Truncated {
        /// Name of the field being decoded when the input ran out.
        field: &'static str,
    },
    /// The length prefix claims more than [`MAX_FRAME_LEN`] bytes.
    Oversized {
        /// The claimed body length.
        len: usize,
    },
    /// An enum tag byte had no defined meaning.
    BadTag {
        /// Name of the enum being decoded.
        field: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// The frame carried an unsupported protocol version.
    BadVersion {
        /// The version byte found.
        version: u8,
    },
    /// The message decoded cleanly but bytes were left over.
    TrailingBytes {
        /// Number of undecoded bytes at the end of the body.
        extra: usize,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated { field } => write!(f, "frame truncated while reading {field}"),
            FrameError::Oversized { len } => {
                write!(f, "frame length {len} exceeds maximum {MAX_FRAME_LEN}")
            }
            FrameError::BadTag { field, tag } => write!(f, "unknown {field} tag {tag:#04x}"),
            FrameError::BadVersion { version } => {
                write!(
                    f,
                    "unsupported wire version {version} (expected {WIRE_VERSION}, \
                     or {STATS_VERSION} for stats frames)"
                )
            }
            FrameError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing byte(s) after a complete message")
            }
        }
    }
}

impl std::error::Error for FrameError {}

// ----- encoding --------------------------------------------------------------

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_value(buf: &mut Vec<u8>, v: Value) {
    put_u64(buf, v.ts);
    put_u64(buf, v.val);
}

fn put_base_op(buf: &mut Vec<u8>, op: &BaseOp) {
    match op {
        BaseOp::Read => buf.push(0),
        BaseOp::Write(v) => {
            buf.push(1);
            put_value(buf, *v);
        }
        BaseOp::ReadMax => buf.push(2),
        BaseOp::WriteMax(v) => {
            buf.push(3);
            put_value(buf, *v);
        }
        BaseOp::Cas { expected, new } => {
            buf.push(4);
            put_value(buf, *expected);
            put_value(buf, *new);
        }
    }
}

fn put_base_response(buf: &mut Vec<u8>, response: &BaseResponse) {
    match response {
        BaseResponse::ReadValue(v) => {
            buf.push(0);
            put_value(buf, *v);
        }
        BaseResponse::WriteAck => buf.push(1),
        BaseResponse::MaxValue(v) => {
            buf.push(2);
            put_value(buf, *v);
        }
        BaseResponse::WriteMaxAck => buf.push(3),
        BaseResponse::CasOld(v) => {
            buf.push(4);
            put_value(buf, *v);
        }
    }
}

// ----- decoding --------------------------------------------------------------

/// Checked little-endian reader over a frame body.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize, field: &'static str) -> Result<&'a [u8], FrameError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|end| *end <= self.bytes.len())
            .ok_or(FrameError::Truncated { field })?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self, field: &'static str) -> Result<u8, FrameError> {
        Ok(self.take(1, field)?[0])
    }

    fn u64(&mut self, field: &'static str) -> Result<u64, FrameError> {
        let bytes = self.take(8, field)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(bytes);
        Ok(u64::from_le_bytes(raw))
    }

    fn value(&mut self, field: &'static str) -> Result<Value, FrameError> {
        let ts = self.u64(field)?;
        let val = self.u64(field)?;
        Ok(Value::new(ts, val))
    }

    fn base_op(&mut self) -> Result<BaseOp, FrameError> {
        match self.u8("base-op tag")? {
            0 => Ok(BaseOp::Read),
            1 => Ok(BaseOp::Write(self.value("write value")?)),
            2 => Ok(BaseOp::ReadMax),
            3 => Ok(BaseOp::WriteMax(self.value("write-max value")?)),
            4 => Ok(BaseOp::Cas {
                expected: self.value("cas expected value")?,
                new: self.value("cas new value")?,
            }),
            tag => Err(FrameError::BadTag {
                field: "base-op",
                tag,
            }),
        }
    }

    fn base_response(&mut self) -> Result<BaseResponse, FrameError> {
        match self.u8("response tag")? {
            0 => Ok(BaseResponse::ReadValue(self.value("read value")?)),
            1 => Ok(BaseResponse::WriteAck),
            2 => Ok(BaseResponse::MaxValue(self.value("max value")?)),
            3 => Ok(BaseResponse::WriteMaxAck),
            4 => Ok(BaseResponse::CasOld(self.value("cas old value")?)),
            tag => Err(FrameError::BadTag {
                field: "response",
                tag,
            }),
        }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }
}

impl WireMsg {
    /// Encodes the message body (no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(32);
        match self {
            WireMsg::Request { op_id, object, op } => {
                buf.push(1);
                buf.push(WIRE_VERSION);
                put_u64(&mut buf, *op_id);
                put_u64(&mut buf, *object);
                put_base_op(&mut buf, op);
            }
            WireMsg::Response {
                op_id,
                clock,
                response,
            } => {
                buf.push(2);
                buf.push(WIRE_VERSION);
                put_u64(&mut buf, *op_id);
                put_u64(&mut buf, *clock);
                put_base_response(&mut buf, response);
            }
            WireMsg::Fault { op_id, code } => {
                buf.push(3);
                buf.push(WIRE_VERSION);
                put_u64(&mut buf, *op_id);
                buf.push(code.tag());
            }
            WireMsg::StatsQuery => {
                buf.push(4);
                buf.push(STATS_VERSION);
                buf.push(0);
            }
            WireMsg::StatsReply { stats } => {
                buf.push(4);
                buf.push(STATS_VERSION);
                buf.push(1);
                put_u64(&mut buf, stats.requests);
                put_u64(&mut buf, stats.responses);
                put_u64(&mut buf, stats.faults);
                put_u64(&mut buf, stats.in_flight);
                put_u64(&mut buf, stats.applied);
            }
        }
        debug_assert!(buf.len() <= MAX_FRAME_LEN);
        buf
    }

    /// Encodes the message as a full frame: `u32` little-endian body length
    /// followed by the body.
    pub fn encode_frame(&self) -> Vec<u8> {
        let body = self.encode();
        let mut frame = Vec::with_capacity(4 + body.len());
        frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
        frame.extend_from_slice(&body);
        frame
    }

    /// Decodes a message body (no length prefix). Never panics.
    pub fn decode(bytes: &[u8]) -> Result<Self, FrameError> {
        let mut r = Reader::new(bytes);
        let tag = r.u8("message tag")?;
        let version = r.u8("version")?;
        // Stats frames (tag 4) are a later, separately-gated extension; every
        // original message keeps requiring WIRE_VERSION, so version-1 peers
        // are byte-for-byte unaffected.
        let required = if tag == 4 {
            STATS_VERSION
        } else {
            WIRE_VERSION
        };
        if version != required {
            return Err(FrameError::BadVersion { version });
        }
        let msg = match tag {
            1 => WireMsg::Request {
                op_id: r.u64("op id")?,
                object: r.u64("object id")?,
                op: r.base_op()?,
            },
            2 => WireMsg::Response {
                op_id: r.u64("op id")?,
                clock: r.u64("clock")?,
                response: r.base_response()?,
            },
            3 => WireMsg::Fault {
                op_id: r.u64("op id")?,
                code: {
                    let tag = r.u8("fault code")?;
                    FaultCode::from_tag(tag).ok_or(FrameError::BadTag {
                        field: "fault-code",
                        tag,
                    })?
                },
            },
            4 => match r.u8("stats kind")? {
                0 => WireMsg::StatsQuery,
                1 => WireMsg::StatsReply {
                    stats: NodeStats {
                        requests: r.u64("stats requests")?,
                        responses: r.u64("stats responses")?,
                        faults: r.u64("stats faults")?,
                        in_flight: r.u64("stats in-flight")?,
                        applied: r.u64("stats applied")?,
                    },
                },
                tag => {
                    return Err(FrameError::BadTag {
                        field: "stats-kind",
                        tag,
                    })
                }
            },
            tag => {
                return Err(FrameError::BadTag {
                    field: "message",
                    tag,
                })
            }
        };
        if r.remaining() != 0 {
            return Err(FrameError::TrailingBytes {
                extra: r.remaining(),
            });
        }
        Ok(msg)
    }
}

/// Tries to decode one length-prefixed frame from the front of `buf`.
///
/// Returns `Ok(None)` when `buf` holds only a *prefix* of a frame (read more
/// bytes and try again), `Ok(Some((msg, consumed)))` when a full frame was
/// decoded (`consumed` bytes should be drained from the buffer), and a
/// [`FrameError`] when the bytes can never become a valid frame. Never
/// panics.
pub fn decode_frame(buf: &[u8]) -> Result<Option<(WireMsg, usize)>, FrameError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let mut raw = [0u8; 4];
    raw.copy_from_slice(&buf[..4]);
    let len = u32::from_le_bytes(raw) as usize;
    if len > MAX_FRAME_LEN {
        return Err(FrameError::Oversized { len });
    }
    if buf.len() < 4 + len {
        return Ok(None);
    }
    let msg = WireMsg::decode(&buf[4..4 + len])?;
    Ok(Some((msg, 4 + len)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: WireMsg) {
        let body = msg.encode();
        assert_eq!(WireMsg::decode(&body), Ok(msg));
        let frame = msg.encode_frame();
        assert_eq!(decode_frame(&frame), Ok(Some((msg, frame.len()))));
    }

    #[test]
    fn every_message_shape_roundtrips() {
        let v = Value::new(3, 77);
        let w = Value::new(4, 78);
        for msg in [
            WireMsg::Request {
                op_id: 0,
                object: 0,
                op: BaseOp::Read,
            },
            WireMsg::Request {
                op_id: u64::MAX,
                object: 17,
                op: BaseOp::Write(v),
            },
            WireMsg::Request {
                op_id: 5,
                object: 2,
                op: BaseOp::ReadMax,
            },
            WireMsg::Request {
                op_id: 6,
                object: 2,
                op: BaseOp::WriteMax(w),
            },
            WireMsg::Request {
                op_id: 7,
                object: 3,
                op: BaseOp::Cas {
                    expected: v,
                    new: w,
                },
            },
            WireMsg::Response {
                op_id: 7,
                clock: 99,
                response: BaseResponse::ReadValue(v),
            },
            WireMsg::Response {
                op_id: 8,
                clock: 100,
                response: BaseResponse::WriteAck,
            },
            WireMsg::Response {
                op_id: 9,
                clock: 101,
                response: BaseResponse::MaxValue(w),
            },
            WireMsg::Response {
                op_id: 10,
                clock: 102,
                response: BaseResponse::WriteMaxAck,
            },
            WireMsg::Response {
                op_id: 11,
                clock: 103,
                response: BaseResponse::CasOld(v),
            },
            WireMsg::Fault {
                op_id: 12,
                code: FaultCode::NotHosted,
            },
            WireMsg::Fault {
                op_id: 13,
                code: FaultCode::UnsupportedOp,
            },
            WireMsg::Fault {
                op_id: 14,
                code: FaultCode::Crashed,
            },
            WireMsg::StatsQuery,
            WireMsg::StatsReply {
                stats: NodeStats {
                    requests: 100,
                    responses: 97,
                    faults: 3,
                    in_flight: 2,
                    applied: u64::MAX,
                },
            },
        ] {
            roundtrip(msg);
        }
    }

    #[test]
    fn partial_frames_ask_for_more_bytes() {
        let frame = WireMsg::Fault {
            op_id: 1,
            code: FaultCode::Crashed,
        }
        .encode_frame();
        for cut in 0..frame.len() {
            assert_eq!(decode_frame(&frame[..cut]), Ok(None), "cut at {cut}");
        }
        // Two frames back to back: the first decodes, reporting its length.
        let mut two = frame.clone();
        two.extend_from_slice(&frame);
        let (_, consumed) = decode_frame(&two).unwrap().unwrap();
        assert_eq!(consumed, frame.len());
        assert!(decode_frame(&two[consumed..]).unwrap().is_some());
    }

    /// Mirror of the `regemu-trace v1` malformed-input table: every corrupt
    /// frame yields a typed error — and, by virtue of returning at all,
    /// never panics.
    #[test]
    fn malformed_frames_fail_with_typed_errors_and_never_panic() {
        let good = WireMsg::Request {
            op_id: 1,
            object: 2,
            op: BaseOp::Write(Value::new(1, 5)),
        };
        let body = good.encode();

        let truncated_body = {
            let mut frame = Vec::new();
            frame.extend_from_slice(&((body.len() - 3) as u32).to_le_bytes());
            frame.extend_from_slice(&body[..body.len() - 3]);
            frame
        };
        let oversized = {
            let mut frame = Vec::new();
            frame.extend_from_slice(&(1_000_000u32.to_le_bytes()));
            frame.extend_from_slice(&body);
            frame
        };
        let bad_msg_tag = {
            let mut b = body.clone();
            b[0] = 0x7f;
            frame_of(&b)
        };
        let bad_version = {
            let mut b = body.clone();
            b[1] = 9;
            frame_of(&b)
        };
        let bad_op_tag = {
            let mut b = body.clone();
            b[18] = 0xee; // base-op tag lives after msg tag, version, two u64s
            frame_of(&b)
        };
        let bad_fault_code = {
            let mut b = WireMsg::Fault {
                op_id: 3,
                code: FaultCode::Crashed,
            }
            .encode();
            *b.last_mut().unwrap() = 0x42;
            frame_of(&b)
        };
        let trailing = {
            let mut b = body.clone();
            b.extend_from_slice(&[0, 0]);
            frame_of(&b)
        };
        let empty_body = frame_of(&[]);
        let garbage = frame_of(&[0xde, 0xad, 0xbe, 0xef, 0x01]);

        let stats_reply = WireMsg::StatsReply {
            stats: NodeStats::default(),
        }
        .encode();
        let truncated_stats = {
            let mut frame = Vec::new();
            frame.extend_from_slice(&((stats_reply.len() - 5) as u32).to_le_bytes());
            frame.extend_from_slice(&stats_reply[..stats_reply.len() - 5]);
            frame
        };
        let bad_stats_kind = {
            let mut b = WireMsg::StatsQuery.encode();
            b[2] = 0x33;
            frame_of(&b)
        };
        let stats_with_legacy_version = {
            let mut b = WireMsg::StatsQuery.encode();
            b[1] = WIRE_VERSION;
            frame_of(&b)
        };
        let legacy_with_stats_version = {
            let mut b = body.clone();
            b[1] = STATS_VERSION;
            frame_of(&b)
        };
        let stats_trailing = {
            let mut b = WireMsg::StatsQuery.encode();
            b.push(0);
            frame_of(&b)
        };

        let table: Vec<(&str, Vec<u8>, FrameError)> = vec![
            (
                "truncated body",
                truncated_body,
                FrameError::Truncated {
                    field: "write value",
                },
            ),
            (
                "oversized length",
                oversized,
                FrameError::Oversized { len: 1_000_000 },
            ),
            (
                "unknown message tag",
                bad_msg_tag,
                FrameError::BadTag {
                    field: "message",
                    tag: 0x7f,
                },
            ),
            (
                "bad version",
                bad_version,
                FrameError::BadVersion { version: 9 },
            ),
            (
                "unknown base-op tag",
                bad_op_tag,
                FrameError::BadTag {
                    field: "base-op",
                    tag: 0xee,
                },
            ),
            (
                "unknown fault code",
                bad_fault_code,
                FrameError::BadTag {
                    field: "fault-code",
                    tag: 0x42,
                },
            ),
            (
                "trailing bytes",
                trailing,
                FrameError::TrailingBytes { extra: 2 },
            ),
            (
                "empty body",
                empty_body,
                FrameError::Truncated {
                    field: "message tag",
                },
            ),
            (
                "garbage body",
                garbage,
                FrameError::BadVersion { version: 0xad },
            ),
            (
                "truncated stats reply",
                truncated_stats,
                FrameError::Truncated {
                    field: "stats applied",
                },
            ),
            (
                "unknown stats kind",
                bad_stats_kind,
                FrameError::BadTag {
                    field: "stats-kind",
                    tag: 0x33,
                },
            ),
            (
                "stats frame with the legacy version",
                stats_with_legacy_version,
                FrameError::BadVersion {
                    version: WIRE_VERSION,
                },
            ),
            (
                "legacy message with the stats version",
                legacy_with_stats_version,
                FrameError::BadVersion {
                    version: STATS_VERSION,
                },
            ),
            (
                "trailing byte after a stats query",
                stats_trailing,
                FrameError::TrailingBytes { extra: 1 },
            ),
        ];
        for (what, frame, expected) in table {
            assert_eq!(decode_frame(&frame), Err(expected), "case: {what}");
        }
    }

    fn frame_of(body: &[u8]) -> Vec<u8> {
        let mut frame = Vec::new();
        frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
        frame.extend_from_slice(body);
        frame
    }

    /// Executable proof that a version-1 peer rejects Stats frames cleanly.
    ///
    /// `decode_v1` replicates, byte for byte, the decoder this module
    /// shipped before the Stats extension existed: read the tag, read the
    /// version, reject anything that is not `WIRE_VERSION` — *before*
    /// dispatching on the tag. Feeding it the new frames shows an old peer
    /// surfaces them as a typed [`FrameError::BadVersion`], never a
    /// misparse or a panic.
    #[test]
    fn old_version_peers_reject_stats_frames_cleanly() {
        fn decode_v1(bytes: &[u8]) -> Result<(), FrameError> {
            let mut r = Reader::new(bytes);
            let _tag = r.u8("message tag")?;
            let version = r.u8("version")?;
            if version != WIRE_VERSION {
                return Err(FrameError::BadVersion { version });
            }
            unreachable!("a stats frame must be rejected before tag dispatch");
        }

        for msg in [
            WireMsg::StatsQuery,
            WireMsg::StatsReply {
                stats: NodeStats {
                    requests: 7,
                    responses: 7,
                    faults: 0,
                    in_flight: 1,
                    applied: 7,
                },
            },
        ] {
            assert_eq!(
                decode_v1(&msg.encode()),
                Err(FrameError::BadVersion {
                    version: STATS_VERSION
                })
            );
        }

        // And the current decoder keeps accepting every v1 message unchanged
        // while accepting the new frames only at the stats version.
        let legacy = WireMsg::Fault {
            op_id: 9,
            code: FaultCode::NotHosted,
        };
        assert_eq!(legacy.encode()[1], WIRE_VERSION);
        assert_eq!(WireMsg::decode(&legacy.encode()), Ok(legacy));
        assert_eq!(WireMsg::StatsQuery.encode()[1], STATS_VERSION);
    }

    #[test]
    fn errors_display_usefully() {
        let shown = format!(
            "{} | {} | {} | {} | {}",
            FrameError::Truncated { field: "op id" },
            FrameError::Oversized { len: 9999 },
            FrameError::BadTag {
                field: "message",
                tag: 7
            },
            FrameError::BadVersion { version: 3 },
            FrameError::TrailingBytes { extra: 1 },
        );
        for needle in [
            "truncated",
            "op id",
            "9999",
            "tag 0x07",
            "version 3",
            "trailing",
        ] {
            assert!(shown.contains(needle), "missing {needle} in {shown}");
        }
    }
}
