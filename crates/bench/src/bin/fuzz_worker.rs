//! `fuzz_worker` — run one `(shard, generation)` unit of a sharded fuzz
//! campaign against a spool directory.
//!
//! ```text
//! cargo run --release -p regemu-bench --bin fuzz_worker -- \
//!     --spool DIR --shard I --gen G
//! ```
//!
//! The worker reads the campaign's config and manifest from the spool
//! (written by `fuzz_coordinator` or
//! [`regemu_workloads::fuzz::campaign::init_fuzz_spool`]), runs every
//! fuzzing stream of shard `I` through generation `G`, and publishes the
//! generation's corpus entries, shrunk failure files, and — last, so the
//! unit is atomic — the `fuzz-shard-IIII-GG.txt` completion report. All
//! files are written temp-file+rename with deterministic contents, so a
//! killed or repeated worker is harmless: the re-run republishes
//! byte-identical files. It never writes the manifest.
//!
//! Exit status: `0` on success, `1` on failure (the coordinator retries up
//! to its attempt budget), `2` on usage errors.

use regemu_bench::info;
use regemu_workloads::fuzz::run_fuzz_shard_gen;
use std::path::PathBuf;

fn fail(msg: &str) -> ! {
    eprintln!("fuzz_worker: {msg}");
    eprintln!("usage: fuzz_worker --spool DIR --shard I --gen G");
    std::process::exit(2);
}

fn main() {
    let mut spool: Option<PathBuf> = None;
    let mut shard: Option<usize> = None;
    let mut gen: Option<usize> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
        };
        let parse = |flag: &str, v: String| -> usize {
            v.parse()
                .unwrap_or_else(|_| fail(&format!("invalid {flag} value {v:?}")))
        };
        match arg.as_str() {
            "--spool" => spool = Some(PathBuf::from(value("--spool"))),
            "--shard" => shard = Some(parse("--shard", value("--shard"))),
            "--gen" => gen = Some(parse("--gen", value("--gen"))),
            other => fail(&format!("unknown option {other:?}")),
        }
    }
    let spool = spool.unwrap_or_else(|| fail("--spool is required"));
    let shard = shard.unwrap_or_else(|| fail("--shard is required"));
    let gen = gen.unwrap_or_else(|| fail("--gen is required"));

    // Test hook for the coordinator's retry path: when the named marker
    // file does not exist yet, create it and die once.
    if let Ok(marker) = std::env::var("REGEMU_WORKER_FAIL_ONCE") {
        let marker = PathBuf::from(marker);
        if !marker.exists() {
            let _ = std::fs::write(&marker, b"failed once\n");
            eprintln!("fuzz_worker: injected one-shot failure (REGEMU_WORKER_FAIL_ONCE)");
            std::process::exit(1);
        }
    }

    match run_fuzz_shard_gen(&spool, shard, gen) {
        Ok(()) => {
            info!("fuzz_worker: shard {shard} generation {gen} done");
        }
        Err(e) => {
            eprintln!("fuzz_worker: shard {shard} generation {gen} failed: {e}");
            std::process::exit(1);
        }
    }
}
