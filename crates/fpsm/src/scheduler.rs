//! Pluggable schedulers: the common interface every run driver implements.
//!
//! The [`crate::sim::Simulation`] engine is passive — *something* must decide
//! which enabled action happens next. That something is a [`Scheduler`]. The
//! trait captures exactly the contract the experiment layers rely on, so fair
//! drivers, deterministic round-robins and adversarial block/unblock
//! strategies are interchangeable everywhere a run is driven (scenarios,
//! sweeps, examples, benches).
//!
//! Four implementations ship with the workspace:
//!
//! * [`crate::driver::FairDriver`] — seeded pseudo-random fair scheduling
//!   (the default; realizes the paper's fair runs);
//! * [`RoundRobinScheduler`] — deterministic client-rotation scheduling, the
//!   worst case for protocols that rely on randomized luck;
//! * [`DelayedScheduler`] — deterministic seed-derived per-message delivery
//!   delays, modelling a network with a delay distribution;
//! * [`AdversarialScheduler`] — fair scheduling restricted by a pluggable
//!   [`BlockStrategy`]; the `regemu-adversary` crate provides strategies that
//!   withhold responses the way the lower-bound adversary `Ad_i` does.

use crate::driver::{CrashPlan, FairDriver};
use crate::error::SimError;
use crate::ids::{HighOpId, OpId};
use crate::sim::{PendingOp, Simulation};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A run driver: decides which deliverable pending operation happens next.
///
/// # Contract
///
/// Implementations must uphold three properties the experiment harness
/// assumes:
///
/// 1. **Determinism** — a scheduler is constructed from a seed; the same
///    seed over the same simulation must produce the same delivery sequence
///    (and therefore a byte-identical [`crate::history::History`]).
/// 2. **One delivery per step** — [`Scheduler::step`] performs at most one
///    [`Simulation::deliver`] call and returns `Ok(false)` *only* when no
///    operation it is willing to deliver remains (quiescence, or everything
///    withheld). It must not spin.
/// 3. **Error propagation** — engine errors are returned, never swallowed:
///    a `false` is "nothing to do", an `Err` is "the run is broken".
///
/// [`Scheduler::run_until_complete`] and [`Scheduler::run_until_quiescent`]
/// have default implementations in terms of `step` that every implementation
/// inherits, so the contract above is all a new scheduler must provide.
///
/// ```
/// use regemu_fpsm::prelude::*;
/// use regemu_fpsm::{Scheduler, RoundRobinScheduler};
///
/// // A protocol that writes one register and completes on the ack.
/// struct OneShot(ObjectId);
/// impl ClientProtocol for OneShot {
///     fn on_invoke(&mut self, op: HighOp, ctx: &mut Context<'_>) {
///         if let HighOp::Write(v) = op {
///             ctx.trigger(self.0, BaseOp::Write(Value::new(1, v)));
///         }
///     }
///     fn on_response(&mut self, _d: Delivery, ctx: &mut Context<'_>) {
///         ctx.complete(HighResponse::WriteAck);
///     }
/// }
///
/// let mut topology = Topology::new(1);
/// let obj = topology.add_object(ObjectKind::Register, ServerId::new(0));
/// let mut sim = Simulation::new(topology, SimConfig::unchecked());
/// let client = sim.register_client(Box::new(OneShot(obj)));
/// let op = sim.invoke(client, HighOp::Write(7))?;
///
/// // Any scheduler drives the same passive engine through the same API.
/// let mut scheduler: Box<dyn Scheduler> = Box::new(RoundRobinScheduler::new(0));
/// scheduler.run_until_complete(&mut sim, op, 1_000)?;
/// assert_eq!(sim.result_of(op), Some(HighResponse::WriteAck));
/// scheduler.run_until_quiescent(&mut sim, 1_000)?;
/// assert_eq!(sim.pending_count(), 0);
/// # Ok::<(), regemu_fpsm::SimError>(())
/// ```
pub trait Scheduler {
    /// Delivers one pending operation of the scheduler's choosing.
    ///
    /// Returns `Ok(true)` if an operation was delivered and `Ok(false)` if
    /// no operation this scheduler is willing to deliver remains.
    ///
    /// # Errors
    ///
    /// Propagates engine errors (e.g. a crash plan exceeding the fault
    /// threshold).
    fn step(&mut self, sim: &mut Simulation) -> Result<bool, SimError>;

    /// Short name used in reports and labels.
    fn name(&self) -> &'static str {
        "scheduler"
    }

    /// Delivers operations until the high-level operation `target` completes.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Stuck`] if the operation has not completed after
    /// `max_steps` deliveries or no deliverable operation remains.
    fn run_until_complete(
        &mut self,
        sim: &mut Simulation,
        target: HighOpId,
        max_steps: u64,
    ) -> Result<(), SimError> {
        let mut executed = 0;
        while sim.result_of(target).is_none() {
            if executed >= max_steps || !self.step(sim)? {
                return Err(SimError::Stuck {
                    steps: executed,
                    waiting_for: format!("high-level operation {target} to complete"),
                });
            }
            executed += 1;
        }
        Ok(())
    }

    /// Delivers operations until no operation this scheduler is willing to
    /// deliver remains.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Stuck`] if quiescence is not reached within
    /// `max_steps` deliveries.
    fn run_until_quiescent(
        &mut self,
        sim: &mut Simulation,
        max_steps: u64,
    ) -> Result<(), SimError> {
        let mut executed = 0;
        while self.step(sim)? {
            executed += 1;
            if executed >= max_steps {
                return Err(SimError::Stuck {
                    steps: executed,
                    waiting_for: "quiescence".to_string(),
                });
            }
        }
        Ok(())
    }
}

impl Scheduler for FairDriver {
    fn step(&mut self, sim: &mut Simulation) -> Result<bool, SimError> {
        FairDriver::step(self, sim)
    }

    fn name(&self) -> &'static str {
        "fair"
    }
}

/// A deterministic round-robin scheduler.
///
/// Each step delivers the oldest pending operation of the next client in a
/// fixed rotation (clients with nothing deliverable are skipped). Compared to
/// [`FairDriver`] it is fair in the strongest sense — every client is served
/// within one rotation — while being completely predictable, which makes it
/// the scheduler of choice for step-debugging a protocol. The seed only
/// offsets the rotation's starting point.
#[derive(Debug)]
pub struct RoundRobinScheduler {
    crash_plan: CrashPlan,
    next_client: u64,
    steps: u64,
}

impl RoundRobinScheduler {
    /// Creates a round-robin scheduler; `seed` offsets the rotation start.
    pub fn new(seed: u64) -> Self {
        RoundRobinScheduler {
            crash_plan: CrashPlan::none(),
            next_client: seed,
            steps: 0,
        }
    }

    /// Attaches a crash plan to the scheduler.
    pub fn with_crash_plan(mut self, plan: CrashPlan) -> Self {
        self.crash_plan = plan;
        self
    }

    /// Number of delivery steps executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }
}

impl Scheduler for RoundRobinScheduler {
    fn step(&mut self, sim: &mut Simulation) -> Result<bool, SimError> {
        for server in self.crash_plan.due(sim.time()) {
            sim.crash_server(server)?;
        }
        let clients = sim.client_count() as u64;
        if clients == 0 {
            return Ok(false);
        }
        let start = self.next_client % clients;
        // Pick the deliverable op whose client is closest after the cursor
        // (wrapping), oldest op id first within a client.
        let chosen = sim
            .deliverable_ops()
            .map(|p| {
                let distance = (p.client.index() as u64 + clients - start) % clients;
                (distance, p.op_id, p.client)
            })
            .min();
        let Some((_, op_id, client)) = chosen else {
            return Ok(false);
        };
        sim.deliver(op_id)?;
        self.next_client = client.index() as u64 + 1;
        self.steps += 1;
        Ok(true)
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// A deterministic scheduler that imposes a seed-derived *delivery delay* on
/// every message (pending low-level operation).
///
/// Each pending operation is assigned a deterministic delay of
/// `0..=max_delay` ticks, derived by mixing the scheduler seed with the
/// operation id. An operation becomes *ready* `delay` ticks after it was
/// triggered; each step delivers the ready operation with the earliest
/// ready time (ties broken by operation id, so the schedule is total). When
/// nothing is ready yet the earliest-to-become-ready operation is delivered
/// anyway — logical time only advances on deliveries, so waiting would be
/// meaningless — which also makes the scheduler starvation-free: every
/// pending operation is eventually the minimum.
///
/// The effect is a message-delay *distribution* over the network rather
/// than the uniform choice of [`FairDriver`]: responses from different
/// servers overtake each other in bursts, which exercises protocol paths
/// (stale reads, late acks) that uniform fairness rarely produces.
#[derive(Debug)]
pub struct DelayedScheduler {
    seed: u64,
    max_delay: u64,
    perturbation: Vec<u64>,
    crash_plan: CrashPlan,
    steps: u64,
}

impl DelayedScheduler {
    /// Default delay bound (ticks) used by the sweepable scheduler axis.
    pub const DEFAULT_MAX_DELAY: u64 = 7;

    /// Creates a delayed scheduler with per-message delays in
    /// `0..=max_delay` ticks derived from `seed`.
    pub fn new(seed: u64, max_delay: u64) -> Self {
        DelayedScheduler {
            seed,
            max_delay,
            perturbation: Vec::new(),
            crash_plan: CrashPlan::none(),
            steps: 0,
        }
    }

    /// Attaches a crash plan to the scheduler.
    pub fn with_crash_plan(mut self, plan: CrashPlan) -> Self {
        self.crash_plan = plan;
        self
    }

    /// Adds a deterministic *perturbation* on top of the seed-derived
    /// delays: operation `op` gains `ticks[op.index() % ticks.len()]`
    /// extra ticks of delay (no-op when `ticks` is empty). The fuzzer uses
    /// this as a mutation operator — nudging individual delay buckets
    /// shifts whole bursts of deliveries without losing determinism, since
    /// the total delay stays a pure function of `(seed, ticks, op)`.
    pub fn with_perturbation(mut self, ticks: Vec<u64>) -> Self {
        self.perturbation = ticks;
        self
    }

    /// Number of delivery steps executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The deterministic delay (in ticks) assigned to operation `op`,
    /// including any perturbation from [`DelayedScheduler::with_perturbation`].
    pub fn delay_of(&self, op: OpId) -> u64 {
        let extra = if self.perturbation.is_empty() {
            0
        } else {
            self.perturbation[op.index() as usize % self.perturbation.len()]
        };
        if self.max_delay == 0 {
            return extra;
        }
        // SplitMix64 finalizer over seed ⊕ op id: uniform enough for a delay
        // distribution, dependency-free, and stable across platforms.
        let mut x = self.seed ^ (op.index() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        x % (self.max_delay + 1) + extra
    }
}

impl Scheduler for DelayedScheduler {
    fn step(&mut self, sim: &mut Simulation) -> Result<bool, SimError> {
        for server in self.crash_plan.due(sim.time()) {
            sim.crash_server(server)?;
        }
        let chosen = sim
            .deliverable_ops()
            .map(|p| (p.triggered_at + self.delay_of(p.op_id), p.op_id))
            .min();
        let Some((_, op_id)) = chosen else {
            return Ok(false);
        };
        sim.deliver(op_id)?;
        self.steps += 1;
        Ok(true)
    }

    fn name(&self) -> &'static str {
        "delayed"
    }
}

/// A scheduling restriction: decides which pending operations are withheld.
///
/// Implementations model the paper's adversarial environments — an operation
/// for which [`BlockStrategy::blocks`] returns `true` is simply never chosen
/// by the [`AdversarialScheduler`] while the strategy keeps blocking it (the
/// strategy is consulted fresh on every step, so strategies may unblock at
/// any time). Blocking is *allowed* to starve operations forever; that is the
/// point — an `f`-tolerant emulation must make progress anyway as long as the
/// blocked operations touch at most `f` servers.
pub trait BlockStrategy: std::fmt::Debug {
    /// Returns `true` when `op` must be withheld at this step.
    fn blocks(&mut self, sim: &Simulation, op: &PendingOp) -> bool;

    /// Short name used in reports and labels.
    fn name(&self) -> &'static str {
        "block-strategy"
    }
}

/// Fair scheduling restricted by a [`BlockStrategy`].
///
/// Each step delivers a uniformly random deliverable operation among the ones
/// the strategy does not block — the same seeded stream as [`FairDriver`],
/// carved down by the strategy. With a strategy that never blocks it is
/// byte-for-byte a `FairDriver`.
#[derive(Debug)]
pub struct AdversarialScheduler {
    rng: StdRng,
    crash_plan: CrashPlan,
    strategy: Box<dyn BlockStrategy>,
    steps: u64,
    candidates: Vec<OpId>,
}

impl AdversarialScheduler {
    /// Creates an adversarial scheduler with the given seed and strategy.
    pub fn new(seed: u64, strategy: Box<dyn BlockStrategy>) -> Self {
        AdversarialScheduler {
            rng: StdRng::seed_from_u64(seed),
            crash_plan: CrashPlan::none(),
            strategy,
            steps: 0,
            candidates: Vec::new(),
        }
    }

    /// Attaches a crash plan to the scheduler.
    pub fn with_crash_plan(mut self, plan: CrashPlan) -> Self {
        self.crash_plan = plan;
        self
    }

    /// Number of delivery steps executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The strategy driving the block decisions.
    pub fn strategy(&self) -> &dyn BlockStrategy {
        self.strategy.as_ref()
    }
}

impl Scheduler for AdversarialScheduler {
    fn step(&mut self, sim: &mut Simulation) -> Result<bool, SimError> {
        for server in self.crash_plan.due(sim.time()) {
            sim.crash_server(server)?;
        }
        let strategy = &mut self.strategy;
        let candidates = &mut self.candidates;
        candidates.clear();
        candidates.extend(
            sim.deliverable_ops()
                .filter(|p| !strategy.blocks(sim, p))
                .map(|p| p.op_id),
        );
        let Some(&chosen) = candidates.choose(&mut self.rng) else {
            return Ok(false);
        };
        sim.deliver(chosen)?;
        self.steps += 1;
        Ok(true)
    }

    /// The strategy's name: an adversarial scheduler *is* its block
    /// strategy, so reports group by strategy rather than by the generic
    /// wrapper.
    fn name(&self) -> &'static str {
        self.strategy.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{ClientProtocol, Context, Delivery};
    use crate::ids::{ObjectId, ServerId};
    use crate::object::ObjectKind;
    use crate::op::{BaseOp, BaseResponse, HighOp, HighResponse};
    use crate::sim::SimConfig;
    use crate::topology::Topology;
    use crate::value::Value;

    /// Writes to all targets and completes once a majority of acks arrived.
    struct MajorityWriter {
        targets: Vec<ObjectId>,
        acks: usize,
    }

    impl ClientProtocol for MajorityWriter {
        fn on_invoke(&mut self, op: HighOp, ctx: &mut Context<'_>) {
            if let HighOp::Write(v) = op {
                self.acks = 0;
                for b in &self.targets {
                    ctx.trigger(*b, BaseOp::Write(Value::new(1, v)));
                }
            }
        }

        fn on_response(&mut self, delivery: Delivery, ctx: &mut Context<'_>) {
            if delivery.response == BaseResponse::WriteAck {
                self.acks += 1;
                if self.acks == self.targets.len() / 2 + 1 && !ctx.has_completed() {
                    ctx.complete(HighResponse::WriteAck);
                }
            }
        }
    }

    fn build(n: usize, f: usize) -> (Simulation, Vec<ObjectId>) {
        let mut t = Topology::new(n);
        let objs = t.add_object_per_server(ObjectKind::Register);
        (Simulation::new(t, SimConfig::with_fault_threshold(f)), objs)
    }

    fn spawn_write(sim: &mut Simulation, objs: Vec<ObjectId>) -> crate::ids::HighOpId {
        let c = sim.register_client(Box::new(MajorityWriter {
            targets: objs,
            acks: 0,
        }));
        sim.invoke(c, HighOp::Write(1)).unwrap()
    }

    #[test]
    fn round_robin_completes_and_is_deterministic() {
        let run = |seed: u64| {
            let (mut sim, objs) = build(5, 2);
            let w = spawn_write(&mut sim, objs);
            let mut sched = RoundRobinScheduler::new(seed);
            sched.run_until_complete(&mut sim, w, 100).unwrap();
            sched.run_until_quiescent(&mut sim, 100).unwrap();
            assert_eq!(sim.pending_count(), 0);
            sim.history().events().copied().collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
    }

    #[test]
    fn round_robin_rotates_over_clients() {
        let (mut sim, objs) = build(3, 1);
        let a = sim.register_client(Box::new(MajorityWriter {
            targets: objs.clone(),
            acks: 0,
        }));
        let b = sim.register_client(Box::new(MajorityWriter {
            targets: objs,
            acks: 0,
        }));
        sim.invoke(a, HighOp::Write(1)).unwrap();
        sim.invoke(b, HighOp::Write(2)).unwrap();
        let mut sched = RoundRobinScheduler::new(0);
        // Starting at client 0 the rotation must alternate a, b, a, b, …
        let mut order = Vec::new();
        for _ in 0..4 {
            let before: Vec<_> = sim.pending_ops().map(|p| (p.op_id, p.client)).collect();
            assert!(Scheduler::step(&mut sched, &mut sim).unwrap());
            let after: Vec<_> = sim.pending_ops().map(|p| p.op_id).collect();
            let delivered = before
                .iter()
                .find(|(id, _)| !after.contains(id))
                .expect("one op delivered");
            order.push(delivered.1.index());
        }
        assert_eq!(order, vec![0, 1, 0, 1]);
    }

    #[test]
    fn round_robin_honors_crash_plans() {
        let (mut sim, objs) = build(3, 1);
        let w = spawn_write(&mut sim, objs);
        let plan = CrashPlan::none().crash_at(0, ServerId::new(2));
        let mut sched = RoundRobinScheduler::new(0).with_crash_plan(plan);
        sched.run_until_complete(&mut sim, w, 100).unwrap();
        assert!(sim.is_server_crashed(ServerId::new(2)));
    }

    #[test]
    fn delayed_scheduler_completes_and_is_deterministic() {
        let run = |seed: u64, max_delay: u64| {
            let (mut sim, objs) = build(5, 2);
            let w = spawn_write(&mut sim, objs);
            let mut sched = DelayedScheduler::new(seed, max_delay);
            sched.run_until_complete(&mut sim, w, 100).unwrap();
            sched.run_until_quiescent(&mut sim, 100).unwrap();
            assert_eq!(sim.pending_count(), 0);
            sim.history().events().copied().collect::<Vec<_>>()
        };
        assert_eq!(run(3, 7), run(3, 7));
        // Different seeds reorder deliveries (with overwhelming probability
        // over five messages and eight delay buckets).
        assert_ne!(run(3, 7), run(4, 7));
    }

    #[test]
    fn delayed_scheduler_orders_by_ready_time() {
        let (mut sim, objs) = build(3, 1);
        spawn_write(&mut sim, objs);
        let mut sched = DelayedScheduler::new(11, 7);
        // All three writes were triggered at the same time, so the delivery
        // order must follow the per-op delays (ties by op id).
        let mut expected: Vec<(u64, OpId)> = sim
            .pending_ops()
            .map(|p| (p.triggered_at + sched.delay_of(p.op_id), p.op_id))
            .collect();
        expected.sort();
        for (_, op) in expected {
            let before: Vec<OpId> = sim.pending_ops().map(|p| p.op_id).collect();
            assert!(Scheduler::step(&mut sched, &mut sim).unwrap());
            let after: Vec<OpId> = sim.pending_ops().map(|p| p.op_id).collect();
            let delivered = before.iter().find(|id| !after.contains(id)).unwrap();
            assert_eq!(*delivered, op);
        }
        assert_eq!(sched.steps(), 3);
    }

    #[test]
    fn delayed_scheduler_perturbation_is_deterministic_and_shifts_buckets() {
        let run = |ticks: Vec<u64>| {
            let (mut sim, objs) = build(5, 2);
            let w = spawn_write(&mut sim, objs);
            let mut sched = DelayedScheduler::new(3, 7).with_perturbation(ticks);
            sched.run_until_complete(&mut sim, w, 100).unwrap();
            sched.run_until_quiescent(&mut sim, 100).unwrap();
            sim.history().events().copied().collect::<Vec<_>>()
        };
        // Empty perturbation is the unperturbed scheduler, and any fixed
        // perturbation replays byte-identically.
        assert_eq!(run(vec![]), run(vec![]));
        assert_eq!(run(vec![5, 0, 11]), run(vec![5, 0, 11]));
        // Nudging delay buckets reorders deliveries.
        assert_ne!(run(vec![]), run(vec![5, 0, 11]));
        // The extra ticks survive max_delay == 0 (base delay zero).
        let sched = DelayedScheduler::new(5, 0).with_perturbation(vec![2, 9]);
        assert_eq!(sched.delay_of(OpId::new(42)), 2);
        assert_eq!(sched.delay_of(OpId::new(43)), 9);
    }

    #[test]
    fn delayed_scheduler_with_zero_delay_is_oldest_first() {
        let (mut sim, objs) = build(3, 1);
        spawn_write(&mut sim, objs);
        let mut sched = DelayedScheduler::new(5, 0);
        assert_eq!(sched.delay_of(OpId::new(42)), 0);
        let oldest = sim.pending_ops().map(|p| p.op_id).min().unwrap();
        let before: Vec<OpId> = sim.pending_ops().map(|p| p.op_id).collect();
        assert!(Scheduler::step(&mut sched, &mut sim).unwrap());
        let after: Vec<OpId> = sim.pending_ops().map(|p| p.op_id).collect();
        let delivered = before.iter().find(|id| !after.contains(id)).unwrap();
        assert_eq!(*delivered, oldest);
    }

    #[test]
    fn delayed_scheduler_honors_crash_plans() {
        let (mut sim, objs) = build(3, 1);
        let w = spawn_write(&mut sim, objs);
        let plan = CrashPlan::none().crash_at(0, ServerId::new(2));
        let mut sched = DelayedScheduler::new(0, 3).with_crash_plan(plan);
        sched.run_until_complete(&mut sim, w, 100).unwrap();
        assert!(sim.is_server_crashed(ServerId::new(2)));
    }

    /// Blocks everything on a fixed server.
    #[derive(Debug)]
    struct Silence(ServerId);
    impl BlockStrategy for Silence {
        fn blocks(&mut self, _sim: &Simulation, op: &PendingOp) -> bool {
            op.server == self.0
        }
    }

    #[test]
    fn adversarial_scheduler_never_delivers_blocked_ops() {
        let (mut sim, objs) = build(3, 1);
        let w = spawn_write(&mut sim, objs);
        let silenced = ServerId::new(2);
        let mut sched = AdversarialScheduler::new(9, Box::new(Silence(silenced)));
        sched.run_until_complete(&mut sim, w, 100).unwrap();
        // Quiescence under the adversary: only the blocked op remains.
        sched.run_until_quiescent(&mut sim, 100).unwrap();
        assert_eq!(sim.pending_count(), 1);
        assert_eq!(sim.pending_ops().next().unwrap().server, silenced);
        assert_eq!(sched.strategy().name(), "block-strategy");
    }

    /// Never blocks anything.
    #[derive(Debug)]
    struct NoBlock;
    impl BlockStrategy for NoBlock {
        fn blocks(&mut self, _sim: &Simulation, _op: &PendingOp) -> bool {
            false
        }
    }

    #[test]
    fn adversarial_scheduler_with_noop_strategy_matches_fair_driver() {
        let run = |adversarial: bool| {
            let (mut sim, objs) = build(5, 2);
            let w = spawn_write(&mut sim, objs);
            if adversarial {
                let mut s = AdversarialScheduler::new(42, Box::new(NoBlock));
                s.run_until_complete(&mut sim, w, 100).unwrap();
                s.run_until_quiescent(&mut sim, 100).unwrap();
            } else {
                let mut s = FairDriver::new(42);
                s.run_until_complete(&mut sim, w, 100).unwrap();
                s.run_until_quiescent(&mut sim, 100).unwrap();
            }
            sim.history().events().copied().collect::<Vec<_>>()
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn fair_driver_behaves_identically_through_the_trait() {
        let run = |dynamic: bool| {
            let (mut sim, objs) = build(5, 2);
            let w = spawn_write(&mut sim, objs);
            if dynamic {
                let mut s: Box<dyn Scheduler> = Box::new(FairDriver::new(7));
                s.run_until_complete(&mut sim, w, 100).unwrap();
            } else {
                let mut s = FairDriver::new(7);
                s.run_until_complete(&mut sim, w, 100).unwrap();
            }
            sim.history().events().copied().collect::<Vec<_>>()
        };
        assert_eq!(run(true), run(false));
    }
}
