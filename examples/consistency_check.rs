//! Consistency checking: run randomized workloads against every emulation and
//! verify the guarantees the paper claims for each.
//!
//! ```text
//! cargo run --example consistency_check
//! ```
//!
//! * every emulation is WS-Regular on write-sequential workloads (the
//!   guarantee of Theorem 3 and of the ABD variants) — under the fair
//!   scheduler *and* under the adversarial block/unblock schedulers;
//! * the ABD variants with read write-back are atomic (linearizable);
//! * a deliberately broken "emulation" (quorums that are too small) is caught
//!   by the WS-Safety checker — the checkers are not vacuous.

use regemu::prelude::*;
use regemu_adversary::demonstrate_partition;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = Params::new(2, 1, 4)?;

    // 1. Write-sequential workloads: WS-Regularity for every construction,
    //    under every scheduler kind (the safety guarantee is schedule-free).
    println!("WS-Regularity on write-sequential workloads, per scheduler");
    for scheduler in SchedulerSpec::ALL {
        for kind in EmulationKind::ALL {
            let mut failures = 0;
            for seed in 0..10u64 {
                let report = Scenario::new(params)
                    .emulation(kind)
                    .workload(WorkloadSpec::WriteSequential {
                        rounds: 2,
                        read_after_each: true,
                    })
                    .scheduler(scheduler)
                    .check(ConsistencyCheck::WsRegular)
                    .seed(seed)
                    .run()?;
                if !report.is_consistent() {
                    failures += 1;
                }
            }
            println!(
                "  {:<18} under {:<17} {} / 10 seeds consistent",
                kind.name(),
                scheduler.name(),
                10 - failures
            );
            assert_eq!(failures, 0);
        }
    }

    // 2. Atomicity of the write-back ABD variant under concurrent workloads.
    println!("\nAtomicity (linearizability) of ABD with read write-back");
    for seed in 0..5u64 {
        let report = Scenario::new(params)
            .emulation(EmulationKind::AbdMaxRegisterAtomic)
            .workload(WorkloadSpec::RandomMixed {
                readers: 2,
                total: 12,
                write_percent: 50,
            })
            .check(ConsistencyCheck::Atomic)
            .seed(seed)
            .run()?;
        assert!(
            report.is_consistent(),
            "seed {seed}: {:?}",
            report.check_violation
        );
        println!("  seed {seed}: linearizable ✔");
    }

    // 3. Negative control: with n = 2f servers the partition schedule
    //    violates WS-Safety and the checker notices.
    println!("\nNegative control (Theorem 5): n = 2f admits a WS-Safety violation");
    let outcome = demonstrate_partition(2, 1)?;
    assert!(outcome.is_violation());
    let verdict = check_ws_safe(&outcome.history, &SequentialSpec::register());
    println!(
        "  read returned {} although {} was written — checker verdict: {}",
        outcome.read_value,
        outcome.written_value,
        verdict.unwrap_err()
    );

    println!("\nall checks behaved as the paper predicts ✔");
    Ok(())
}
