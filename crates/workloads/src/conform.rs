//! Conformance logs: live-run histories the simulator's checkers can replay.
//!
//! A live `regemu-serve` deployment records what the simulator records: each
//! client process appends an `invoke`/`return` record per high-level
//! operation, each server node appends a `respond` record per applied
//! low-level operation. The records carry *stamps* drawn from a process-wide
//! Lamport clock ([`ConformRecorder`]): within a process the stamps are exact
//! real-time order; across processes they are made comparable by folding
//! server clocks into the client clock and by seeding a later invocation's
//! clock from an earlier log (`--clock-from` in the `serve_client` binary).
//!
//! [`merge_logs`] orders the client records of any number of logs into one
//! [`HighHistory`], and [`check_history`] replays it through both the offline
//! checkers and the [`StreamingChecker`], asserting that the two agree — the
//! same verdict surface a simulated run gets.
//!
//! The on-disk format is a line-oriented text file (`regemu-conform v1`),
//! parsed with line-numbered errors and never a panic, exactly like the
//! `regemu-trace v1` format.

use crate::campaign::CampaignError;
use crate::runner::ConsistencyCheck;
use regemu_fpsm::event::Event;
use regemu_fpsm::{HighOp, HighResponse, Time};
use regemu_spec::{
    check_linearizable, check_ws_regular, check_ws_safe, Condition, HighHistory, SequentialSpec,
    StreamingChecker, Violation,
};
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Header line of the conformance-log text format.
pub const CONFORM_HEADER: &str = "regemu-conform v1";

/// Cursor over the whitespace-separated fields of one log line.
struct Fields<'a> {
    parts: std::str::SplitWhitespace<'a>,
    line: usize,
}

impl<'a> Fields<'a> {
    fn word(&mut self, what: &str) -> Result<&'a str, String> {
        self.parts
            .next()
            .ok_or_else(|| format!("line {}: missing {what}", self.line))
    }

    fn num(&mut self, what: &str) -> Result<u64, String> {
        self.word(what)?
            .parse::<u64>()
            .map_err(|_| format!("line {}: malformed {what}", self.line))
    }
}

/// The class of a low-level operation, as recorded by server nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LowOpKind {
    /// A register read.
    Read,
    /// A register write.
    Write,
    /// A max-register read.
    ReadMax,
    /// A max-register write.
    WriteMax,
    /// A compare-and-swap.
    Cas,
}

impl LowOpKind {
    /// Stable name used in log files.
    pub fn name(self) -> &'static str {
        match self {
            LowOpKind::Read => "read",
            LowOpKind::Write => "write",
            LowOpKind::ReadMax => "read-max",
            LowOpKind::WriteMax => "write-max",
            LowOpKind::Cas => "cas",
        }
    }

    /// The inverse of [`LowOpKind::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "read" => Some(LowOpKind::Read),
            "write" => Some(LowOpKind::Write),
            "read-max" => Some(LowOpKind::ReadMax),
            "write-max" => Some(LowOpKind::WriteMax),
            "cas" => Some(LowOpKind::Cas),
            _ => None,
        }
    }

    /// Classifies a low-level operation.
    pub fn of(op: &regemu_fpsm::BaseOp) -> Self {
        match op {
            regemu_fpsm::BaseOp::Read => LowOpKind::Read,
            regemu_fpsm::BaseOp::Write(_) => LowOpKind::Write,
            regemu_fpsm::BaseOp::ReadMax => LowOpKind::ReadMax,
            regemu_fpsm::BaseOp::WriteMax(_) => LowOpKind::WriteMax,
            regemu_fpsm::BaseOp::Cas { .. } => LowOpKind::Cas,
        }
    }
}

/// One record of a conformance log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConformRecord {
    /// A client invoked high-level operation `high` at Lamport stamp `stamp`.
    Invoke {
        /// Lamport stamp of the invocation.
        stamp: u64,
        /// Process-local client index.
        client: usize,
        /// Process-local high-level operation id.
        high: u64,
        /// The operation.
        op: HighOp,
    },
    /// A client's high-level operation `high` returned at stamp `stamp`.
    Return {
        /// Lamport stamp of the return.
        stamp: u64,
        /// Process-local client index.
        client: usize,
        /// Process-local high-level operation id.
        high: u64,
        /// The response.
        response: HighResponse,
    },
    /// A server applied (linearized) a low-level operation.
    Respond {
        /// The server's logical clock after applying it.
        clock: u64,
        /// The server's index.
        server: usize,
        /// Global id of the base object.
        object: usize,
        /// The class of the applied operation.
        kind: LowOpKind,
    },
}

impl ConformRecord {
    /// Renders the record as one log line (no trailing newline).
    ///
    /// Live servers append records to their log file one line at a time so a
    /// killed process still leaves a parseable (incomplete) log.
    pub fn to_line(self) -> String {
        match self {
            ConformRecord::Invoke {
                stamp,
                client,
                high,
                op,
            } => match op {
                HighOp::Write(v) => format!("invoke {stamp} {client} {high} write {v}"),
                HighOp::Read => format!("invoke {stamp} {client} {high} read"),
            },
            ConformRecord::Return {
                stamp,
                client,
                high,
                response,
            } => match response {
                HighResponse::WriteAck => format!("return {stamp} {client} {high} ack"),
                HighResponse::ReadValue(v) => format!("return {stamp} {client} {high} value {v}"),
            },
            ConformRecord::Respond {
                clock,
                server,
                object,
                kind,
            } => format!("respond {clock} {server} {object} {}", kind.name()),
        }
    }
}

/// A parsed conformance log: the records of one process, in append order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ConformLog {
    /// The records, in file order.
    pub records: Vec<ConformRecord>,
    /// The recording process's final Lamport clock (`clock` line), when the
    /// log was closed cleanly.
    pub final_clock: u64,
    /// `true` when the terminating `end` line was present. A killed process
    /// leaves a truncated-but-parseable log with `complete == false`.
    pub complete: bool,
}

impl ConformLog {
    /// Parses the text format. Errors are line-numbered; parsing never
    /// panics. A log without a trailing `end` parses with
    /// [`ConformLog::complete`]` == false`.
    pub fn from_text(text: &str) -> Result<ConformLog, String> {
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, header)) if header.trim() == CONFORM_HEADER => {}
            Some((_, other)) => {
                return Err(format!(
                    "line 1: expected `{CONFORM_HEADER}`, got `{other}`"
                ))
            }
            None => return Err("line 1: empty log".to_string()),
        }
        let mut log = ConformLog::default();
        let mut ended = false;
        for (idx, line) in lines {
            let n = idx + 1;
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if ended {
                return Err(format!("line {n}: content after `end`"));
            }
            let mut fields = Fields {
                parts: line.split_whitespace(),
                line: n,
            };
            let word = fields.parts.next().unwrap_or("");
            match word {
                "end" => {
                    ended = true;
                }
                "clock" => {
                    log.final_clock = fields.num("clock value")?;
                }
                "invoke" => {
                    let stamp = fields.num("stamp")?;
                    let client = fields.num("client")? as usize;
                    let high = fields.num("high-op id")?;
                    let op = match fields.word("operation")? {
                        "write" => HighOp::Write(fields.num("write payload")?),
                        "read" => HighOp::Read,
                        other => return Err(format!("line {n}: unknown operation `{other}`")),
                    };
                    log.records.push(ConformRecord::Invoke {
                        stamp,
                        client,
                        high,
                        op,
                    });
                }
                "return" => {
                    let stamp = fields.num("stamp")?;
                    let client = fields.num("client")? as usize;
                    let high = fields.num("high-op id")?;
                    let response = match fields.word("response")? {
                        "ack" => HighResponse::WriteAck,
                        "value" => HighResponse::ReadValue(fields.num("read payload")?),
                        other => return Err(format!("line {n}: unknown response `{other}`")),
                    };
                    log.records.push(ConformRecord::Return {
                        stamp,
                        client,
                        high,
                        response,
                    });
                }
                "respond" => {
                    let clock = fields.num("clock")?;
                    let server = fields.num("server")? as usize;
                    let object = fields.num("object")? as usize;
                    let name = fields.word("op kind")?;
                    let kind = LowOpKind::from_name(name)
                        .ok_or_else(|| format!("line {n}: unknown op kind `{name}`"))?;
                    log.records.push(ConformRecord::Respond {
                        clock,
                        server,
                        object,
                        kind,
                    });
                }
                other => return Err(format!("line {n}: unknown record `{other}`")),
            }
            if fields.parts.next().is_some() {
                return Err(format!("line {n}: trailing fields"));
            }
        }
        log.complete = ended;
        // A log without an explicit clock line still has a usable clock: the
        // largest stamp it contains.
        let max_stamp = log
            .records
            .iter()
            .map(|r| match r {
                ConformRecord::Invoke { stamp, .. } | ConformRecord::Return { stamp, .. } => *stamp,
                ConformRecord::Respond { clock, .. } => *clock,
            })
            .max()
            .unwrap_or(0);
        log.final_clock = log.final_clock.max(max_stamp);
        Ok(log)
    }

    /// Reads and parses a log file.
    pub fn load(path: &Path) -> Result<ConformLog, CampaignError> {
        let text = std::fs::read_to_string(path)?;
        ConformLog::from_text(&text).map_err(|reason| crate::campaign::malformed(path, reason))
    }

    /// Renders the log in the text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(CONFORM_HEADER);
        out.push('\n');
        out.push_str(&format!("clock {}\n", self.final_clock));
        for record in &self.records {
            out.push_str(&record.to_line());
            out.push('\n');
        }
        if self.complete {
            out.push_str("end\n");
        }
        out
    }
}

/// Thread-safe Lamport clock plus record sink shared by every client thread
/// of one live process.
///
/// Stamps are unique and monotone within the process; [`ConformRecorder::observe`]
/// folds clocks received from servers in, so a stamp taken after a response
/// is greater than the server's clock at the respond step.
#[derive(Debug, Default)]
pub struct ConformRecorder {
    clock: AtomicU64,
    records: Mutex<Vec<ConformRecord>>,
}

impl ConformRecorder {
    /// A recorder whose clock starts at 0.
    pub fn new() -> Self {
        ConformRecorder::default()
    }

    /// A recorder whose clock starts above `clock` — typically the
    /// `final_clock` of an earlier invocation's log, so this process's stamps
    /// order after that log's.
    pub fn starting_at(clock: u64) -> Self {
        ConformRecorder {
            clock: AtomicU64::new(clock),
            records: Mutex::new(Vec::new()),
        }
    }

    /// Draws the next stamp (strictly increasing).
    pub fn stamp(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Folds a clock value observed from another process into this clock.
    pub fn observe(&self, clock: u64) {
        self.clock.fetch_max(clock, Ordering::SeqCst);
    }

    /// The current clock value.
    pub fn clock(&self) -> u64 {
        self.clock.load(Ordering::SeqCst)
    }

    /// Records an invocation and returns its stamp.
    pub fn record_invoke(&self, client: usize, high: u64, op: HighOp) -> u64 {
        let stamp = self.stamp();
        self.records
            .lock()
            .expect("conform recorder poisoned")
            .push(ConformRecord::Invoke {
                stamp,
                client,
                high,
                op,
            });
        stamp
    }

    /// Records a return and returns its stamp.
    pub fn record_return(&self, client: usize, high: u64, response: HighResponse) -> u64 {
        let stamp = self.stamp();
        self.records
            .lock()
            .expect("conform recorder poisoned")
            .push(ConformRecord::Return {
                stamp,
                client,
                high,
                response,
            });
        stamp
    }

    /// Snapshots the recorder into a complete [`ConformLog`].
    pub fn to_log(&self) -> ConformLog {
        ConformLog {
            records: self
                .records
                .lock()
                .expect("conform recorder poisoned")
                .clone(),
            final_clock: self.clock(),
            complete: true,
        }
    }

    /// Writes the log file.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_log().to_text())
    }
}

/// Merges the client records of `logs` into one [`HighHistory`].
///
/// Records are ordered by stamp (ties broken by log order, then file order),
/// client indices are re-mapped to be globally unique across logs, and
/// invocations that never returned become pending intervals — exactly what
/// the checkers expect of a crashed or timed-out client.
pub fn merge_logs(logs: &[ConformLog]) -> HighHistory {
    // (stamp, log index, position) keyed records, clients remapped densely.
    let mut timeline: Vec<(u64, usize, usize, ConformRecord)> = Vec::new();
    for (log_idx, log) in logs.iter().enumerate() {
        for (pos, record) in log.records.iter().enumerate() {
            match record {
                ConformRecord::Invoke { stamp, .. } | ConformRecord::Return { stamp, .. } => {
                    timeline.push((*stamp, log_idx, pos, *record));
                }
                ConformRecord::Respond { .. } => {}
            }
        }
    }
    timeline.sort_by_key(|(stamp, log_idx, pos, _)| (*stamp, *log_idx, *pos));

    let mut global_clients: HashMap<(usize, usize), usize> = HashMap::new();
    let mut returns: HashMap<(usize, usize, u64), (u64, HighResponse)> = HashMap::new();
    for (stamp, log_idx, _, record) in &timeline {
        if let ConformRecord::Return {
            client,
            high,
            response,
            ..
        } = record
        {
            returns.insert((*log_idx, *client, *high), (*stamp, *response));
        }
    }

    let mut history = HighHistory::default();
    for (stamp, log_idx, _, record) in &timeline {
        if let ConformRecord::Invoke {
            client, high, op, ..
        } = record
        {
            let next_id = global_clients.len();
            let global = *global_clients.entry((*log_idx, *client)).or_insert(next_id);
            match returns.get(&(*log_idx, *client, *high)) {
                Some((returned_at, response)) => {
                    history.push_complete(global, *op, *response, *stamp, *returned_at);
                }
                None => history.push_pending(global, *op, *stamp),
            }
        }
    }
    history
}

/// The verdict of replaying a live history through the simulator's checkers.
#[derive(Clone, Debug)]
pub struct ConformVerdict {
    /// The condition that was checked.
    pub check: ConsistencyCheck,
    /// Total high-level operations in the merged history.
    pub ops: usize,
    /// How many of them completed.
    pub complete_ops: usize,
    /// The offline checker's violation, if any.
    pub offline: Option<Violation>,
    /// The streaming checker's violation, if any.
    pub streaming: Option<Violation>,
    /// Peak window size the streaming checker retained.
    pub peak_window: usize,
}

impl ConformVerdict {
    /// `true` when neither checker found a violation.
    pub fn is_consistent(&self) -> bool {
        self.offline.is_none() && self.streaming.is_none()
    }

    /// `true` when the offline and streaming verdict *classes* agree
    /// (both consistent, or both violated).
    pub fn agrees(&self) -> bool {
        self.offline.is_some() == self.streaming.is_some()
    }
}

impl std::fmt::Display for ConformVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "check={} ops={} complete={} offline={} streaming={} window={}",
            self.check,
            self.ops,
            self.complete_ops,
            self.offline
                .as_ref()
                .map(|v| v.to_string())
                .unwrap_or_else(|| "ok".into()),
            self.streaming
                .as_ref()
                .map(|v| v.to_string())
                .unwrap_or_else(|| "ok".into()),
            self.peak_window,
        )
    }
}

fn condition_of(check: ConsistencyCheck) -> Option<Condition> {
    match check {
        ConsistencyCheck::None => None,
        ConsistencyCheck::WsSafe => Some(Condition::WsSafety),
        ConsistencyCheck::WsRegular => Some(Condition::WsRegularity),
        ConsistencyCheck::Atomic => Some(Condition::Atomicity),
    }
}

/// Replays `history` through the offline checker *and* the
/// [`StreamingChecker`] for `check`, returning both verdicts.
///
/// The streaming checker is fed the same synthesized event stream a
/// simulated run would produce: invokes and returns ordered by stamp, with
/// returns first at equal stamps.
pub fn check_history(history: &HighHistory, check: ConsistencyCheck) -> ConformVerdict {
    let spec = SequentialSpec::register();
    let complete_ops = history.ops().iter().filter(|o| o.is_complete()).count();
    let Some(condition) = condition_of(check) else {
        return ConformVerdict {
            check,
            ops: history.len(),
            complete_ops,
            offline: None,
            streaming: None,
            peak_window: 0,
        };
    };

    let offline = match check {
        ConsistencyCheck::WsSafe => check_ws_safe(history, &spec).err(),
        ConsistencyCheck::WsRegular => check_ws_regular(history, &spec).err(),
        ConsistencyCheck::Atomic => check_linearizable(history, &spec).err(),
        ConsistencyCheck::None => None,
    };

    let mut checker = StreamingChecker::new(condition, spec);
    for event in event_stream(history) {
        checker.observe(&event);
    }
    let outcome = checker.into_outcome();
    ConformVerdict {
        check,
        ops: history.len(),
        complete_ops,
        offline,
        streaming: outcome.violation,
        peak_window: outcome.peak_window,
    }
}

/// Renders a history as the event stream the streaming checker consumes:
/// sorted by time, returns before invokes at equal times.
fn event_stream(history: &HighHistory) -> Vec<Event> {
    let mut events: Vec<(Time, u8, Event)> = Vec::new();
    for interval in history.ops() {
        events.push((
            interval.invoked_at,
            1,
            Event::Invoke {
                time: interval.invoked_at,
                client: interval.client,
                high_op: interval.id,
                op: interval.op,
            },
        ));
        if let Some((returned_at, response)) = interval.returned {
            events.push((
                returned_at,
                0,
                Event::Return {
                    time: returned_at,
                    client: interval.client,
                    high_op: interval.id,
                    response,
                },
            ));
        }
    }
    events.sort_by_key(|(time, kind, _)| (*time, *kind));
    events.into_iter().map(|(_, _, e)| e).collect()
}

/// Loads `paths`, merges them and checks the merged history: the complete
/// `serve_conform` pipeline as one call.
pub fn conform_verdict(
    paths: &[std::path::PathBuf],
    check: ConsistencyCheck,
) -> Result<ConformVerdict, CampaignError> {
    let logs = paths
        .iter()
        .map(|p| ConformLog::load(p))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(check_history(&merge_logs(&logs), check))
}

#[cfg(test)]
mod tests {
    use super::*;
    use regemu_fpsm::ClientId;

    fn sample_log() -> ConformLog {
        let rec = ConformRecorder::new();
        let s1 = rec.record_invoke(0, 0, HighOp::Write(7));
        assert_eq!(s1, 1);
        rec.record_return(0, 0, HighResponse::WriteAck);
        rec.record_invoke(1, 0, HighOp::Read);
        rec.record_return(1, 0, HighResponse::ReadValue(7));
        rec.to_log()
    }

    #[test]
    fn logs_roundtrip_through_text() {
        let log = sample_log();
        let text = log.to_text();
        let parsed = ConformLog::from_text(&text).unwrap();
        assert_eq!(parsed, log);
        assert!(parsed.complete);
        assert_eq!(parsed.final_clock, 4);
    }

    #[test]
    fn respond_records_roundtrip() {
        let log = ConformLog {
            records: vec![ConformRecord::Respond {
                clock: 9,
                server: 1,
                object: 4,
                kind: LowOpKind::WriteMax,
            }],
            final_clock: 9,
            complete: true,
        };
        assert_eq!(ConformLog::from_text(&log.to_text()).unwrap(), log);
    }

    #[test]
    fn truncated_log_parses_as_incomplete() {
        let mut text = sample_log().to_text();
        // Drop the `end` line, as a killed process would.
        text.truncate(text.rfind("end").unwrap());
        let parsed = ConformLog::from_text(&text).unwrap();
        assert!(!parsed.complete);
        assert_eq!(parsed.records.len(), 4);
    }

    #[test]
    fn malformed_logs_fail_with_line_numbered_errors_and_never_panic() {
        for (text, needle) in [
            ("", "line 1: empty log"),
            ("regemu-trace v1\n", "line 1: expected"),
            ("regemu-conform v1\nbogus 1 2 3\n", "line 2: unknown record"),
        ] {
            let err = ConformLog::from_text(text).unwrap_err();
            assert!(err.contains(needle), "`{err}` should contain `{needle}`");
        }
        let table = vec![
            ("regemu-conform v1\ninvoke 1 0\n", "missing high-op id"),
            ("regemu-conform v1\ninvoke 1 0 0\n", "missing operation"),
            (
                "regemu-conform v1\ninvoke 1 0 0 jump\n",
                "unknown operation",
            ),
            ("regemu-conform v1\ninvoke x 0 0 read\n", "malformed stamp"),
            (
                "regemu-conform v1\nreturn 1 0 0 maybe\n",
                "unknown response",
            ),
            (
                "regemu-conform v1\nreturn 1 0 0 value\n",
                "missing read payload",
            ),
            (
                "regemu-conform v1\nrespond 1 0 0 swizzle\n",
                "unknown op kind",
            ),
            ("regemu-conform v1\nrespond 1 0 0\n", "missing op kind"),
            (
                "regemu-conform v1\ninvoke 1 0 0 read extra\n",
                "trailing fields",
            ),
            ("regemu-conform v1\nclock\n", "missing clock value"),
            (
                "regemu-conform v1\nend\ninvoke 1 0 0 read\n",
                "content after `end`",
            ),
        ];
        for (text, needle) in table {
            let err = ConformLog::from_text(text).unwrap_err();
            assert!(err.contains(needle), "`{err}` should contain `{needle}`");
            assert!(err.starts_with("line "), "`{err}` should be line-numbered");
        }
    }

    #[test]
    fn merge_orders_by_stamp_and_remaps_clients() {
        // Writer process: client 0 writes 7 at stamps 1..2.
        let writer = ConformLog::from_text(
            "regemu-conform v1\nclock 2\ninvoke 1 0 0 write 7\nreturn 2 0 0 ack\nend\n",
        )
        .unwrap();
        // Reader process (clock seeded from the writer's log): its local
        // client 0 must become a distinct global client.
        let reader = ConformLog::from_text(
            "regemu-conform v1\nclock 4\ninvoke 3 0 0 read\nreturn 4 0 0 value 7\nend\n",
        )
        .unwrap();
        let history = merge_logs(&[writer, reader]);
        assert_eq!(history.len(), 2);
        let ops = history.ops();
        assert_eq!(ops[0].client, ClientId::new(0));
        assert_eq!(ops[1].client, ClientId::new(1));
        assert!(ops[0].invoked_at < ops[1].invoked_at);
        assert!(history.is_write_sequential());

        let verdict = check_history(&history, ConsistencyCheck::WsSafe);
        assert!(verdict.is_consistent());
        assert!(verdict.agrees());
        assert_eq!(verdict.ops, 2);
        assert_eq!(verdict.complete_ops, 2);
    }

    #[test]
    fn never_returned_invokes_become_pending_ops() {
        let log = ConformLog::from_text(
            "regemu-conform v1\ninvoke 1 0 0 write 9\ninvoke 2 1 0 read\nreturn 3 1 0 value 0\n",
        )
        .unwrap();
        let history = merge_logs(&[log]);
        assert_eq!(history.len(), 2);
        assert!(!history.ops()[0].is_complete());
        // A pending write permits the read of 0 under WS-Safety.
        let verdict = check_history(&history, ConsistencyCheck::WsSafe);
        assert!(verdict.is_consistent(), "{verdict}");
    }

    #[test]
    fn stale_read_is_caught_by_both_checkers() {
        // Write(9) completes at stamp 2; a later read returns 0.
        let log = ConformLog::from_text(
            "regemu-conform v1\n\
             invoke 1 0 0 write 9\nreturn 2 0 0 ack\n\
             invoke 3 1 0 read\nreturn 4 1 0 value 0\n",
        )
        .unwrap();
        let verdict = check_history(&merge_logs(&[log]), ConsistencyCheck::WsSafe);
        assert!(!verdict.is_consistent());
        assert!(
            verdict.agrees(),
            "offline and streaming must agree: {verdict}"
        );
    }

    #[test]
    fn recorder_clock_folds_observed_clocks() {
        let rec = ConformRecorder::starting_at(10);
        assert_eq!(rec.stamp(), 11);
        rec.observe(100);
        assert_eq!(rec.stamp(), 101);
        rec.observe(5); // never goes backwards
        assert_eq!(rec.clock(), 101);
    }

    #[test]
    fn check_none_is_vacuously_consistent() {
        let verdict = check_history(&merge_logs(&[sample_log()]), ConsistencyCheck::None);
        assert!(verdict.is_consistent());
        assert!(verdict.agrees());
    }
}
