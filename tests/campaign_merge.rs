//! Merge determinism of sharded campaigns.
//!
//! The campaign contract: for *any* partition of the case space into
//! contiguous shards, run in *any* completion order, merging the per-shard
//! reports yields JSON and CSV **byte-identical** to a single-process
//! `run_sweep` of the same config — and resuming an interrupted campaign
//! reuses completed shard files instead of re-running them.

use regemu::campaign::{
    config_fingerprint, init_spool, merge_shards, run_campaign, run_shard, shard_report_path,
    CampaignOptions, ShardManifest, WorkerMode,
};
use regemu::prelude::*;
use std::fs;
use std::path::PathBuf;

fn spool_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "regemu-campaign-merge-{tag}-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn small_config() -> SweepConfig {
    let mut config = SweepConfig::quick();
    config.grid.truncate(2);
    config.schedulers = vec![SchedulerSpec::Fair, SchedulerSpec::Delayed];
    config.threads = 1;
    config
}

/// Deterministic "shuffles" of the shard execution order: identity,
/// reversed, and an interleave — enough to prove completion order cannot
/// leak into the merge.
fn orders(n: usize) -> Vec<Vec<usize>> {
    let identity: Vec<usize> = (0..n).collect();
    let reversed: Vec<usize> = (0..n).rev().collect();
    let interleaved: Vec<usize> = (0..n)
        .filter(|i| i % 2 == 1)
        .chain((0..n).filter(|i| i % 2 == 0))
        .collect();
    vec![identity, reversed, interleaved]
}

#[test]
fn any_partition_in_any_order_merges_byte_identically() {
    let config = small_config();
    let single = run_sweep(&config);
    let case_count = config.case_count();
    assert_eq!(case_count, 32);

    for shards in [1, 2, 7, case_count] {
        for (variant, order) in orders(shards.min(case_count)).into_iter().enumerate() {
            let dir = spool_dir(&format!("partition-{shards}-{variant}"));
            let manifest = init_spool(&dir, &config, shards).unwrap();
            assert_eq!(manifest.shards.len(), shards.min(case_count));
            assert_eq!(manifest.fingerprint, config_fingerprint(&config));
            for shard in order {
                run_shard(&dir, shard, 1).unwrap();
            }
            let merged = merge_shards(&dir).unwrap();
            assert_eq!(
                merged.to_json(),
                single.to_json(),
                "JSON differs at {shards} shards (order variant {variant})"
            );
            assert_eq!(
                merged.to_csv(),
                single.to_csv(),
                "CSV differs at {shards} shards (order variant {variant})"
            );
            let _ = fs::remove_dir_all(&dir);
        }
    }
}

#[test]
fn shard_workers_can_run_concurrently() {
    // Four worker "processes" (threads here; the bench suite covers real
    // processes) racing on the same spool still merge byte-identically:
    // each shard only touches its own files.
    let config = small_config();
    let single = run_sweep(&config);
    let dir = spool_dir("concurrent");
    let manifest = init_spool(&dir, &config, 4).unwrap();
    assert_eq!(manifest.shards.len(), 4);
    std::thread::scope(|scope| {
        for shard in 0..4 {
            let dir = dir.clone();
            scope.spawn(move || run_shard(&dir, shard, 1).unwrap());
        }
    });
    let merged = merge_shards(&dir).unwrap();
    assert_eq!(merged.to_json(), single.to_json());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn resume_after_kill_reuses_completed_shard_files() {
    let config = small_config();
    let single = run_sweep(&config);
    let dir = spool_dir("resume");
    let mut options = CampaignOptions::new(&dir);
    options.shards = 4;
    options.worker_threads = 1;
    options.worker = WorkerMode::InProcess;
    options.quiet = true;

    // "Kill" the campaign after two shards.
    options.exit_after = Some(2);
    let first = run_campaign(&config, &options).unwrap();
    assert!(first.report.is_none());
    assert_eq!(first.shards_run, 2);
    let manifest = ShardManifest::load(&dir).unwrap().unwrap();
    assert_eq!(manifest.incomplete().count(), 2);
    let mtime = |shard: usize| {
        fs::metadata(shard_report_path(&dir, shard))
            .unwrap()
            .modified()
            .unwrap()
    };
    let before = (mtime(0), mtime(1));

    // Resume: only the two incomplete shards run; the completed files are
    // reused untouched.
    options.exit_after = None;
    let second = run_campaign(&config, &options).unwrap();
    assert_eq!(second.shards_reused, 2);
    assert_eq!(second.shards_run, 2);
    assert_eq!(
        (mtime(0), mtime(1)),
        before,
        "completed shards were rewritten"
    );
    let merged = second.report.expect("campaign completed");
    assert_eq!(merged.to_json(), single.to_json());
    assert_eq!(merged.to_csv(), single.to_csv());
    let _ = fs::remove_dir_all(&dir);
}
