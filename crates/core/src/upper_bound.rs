//! The space-optimal construction (Algorithm 2, Section 3.3 / Appendix D).
//!
//! An `f`-tolerant, wait-free, WS-Regular emulation of a `k`-writer register
//! from `kf + ⌈k/z⌉·(f+1)` plain read/write registers (`z = ⌊(n-(f+1))/f⌋`),
//! matching the upper bound of Theorem 3.
//!
//! The construction's two key ideas, both forced by the lower-bound adversary
//! (Section 3.1):
//!
//! 1. **Disjoint register sets.** The `k` writers are partitioned over the
//!    register sets of a [`RegisterLayout`]; writer `c_i` only writes to its
//!    set `R_j`, whose size is large enough that the at most `f` registers
//!    left covered by each of the set's `z` writers — plus the up to `f`
//!    registers lost to crashed servers — can never hide the latest value
//!    from a read quorum.
//! 2. **Never double-cover a register.** A writer never triggers a new
//!    low-level write on a register that still has one of its *own* writes
//!    pending (the `coverSet`), so a writer covers at most `f` registers at
//!    any time (Observation 3). When the old write finally responds, the
//!    writer immediately re-writes the register with its *current* value
//!    (lines 29–32).
//!
//! Reads collect every register of the layout from `n - f` servers and return
//! the value with the highest timestamp; readers never write.

use crate::layout::RegisterLayout;
use crate::quorum::ScanTracker;
use crate::timestamp;
use regemu_bounds::Params;
use regemu_fpsm::{
    BaseOp, BaseResponse, ClientProtocol, Context, Delivery, HighOp, HighResponse, ObjectId, OpId,
    ServerId, Value,
};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Immutable description of the layout shared by all clients of one
/// emulation instance: the register sets plus the per-server grouping used by
/// `collect()`.
#[derive(Clone, Debug)]
pub struct SharedLayout {
    params: Params,
    layout: RegisterLayout,
    /// All registers grouped by hosting server (including servers that host
    /// none), in server order — the read-quorum structure.
    scan_groups: Vec<(ServerId, Vec<ObjectId>)>,
}

impl SharedLayout {
    /// Builds the shared view from a layout and the topology it was installed
    /// in.
    pub fn new(layout: RegisterLayout, topology: &regemu_fpsm::Topology) -> Arc<Self> {
        let params = layout.params();
        let mut by_server: BTreeMap<ServerId, Vec<ObjectId>> = BTreeMap::new();
        for s in topology.servers() {
            by_server.insert(s, Vec::new());
        }
        for b in layout.all_registers() {
            by_server.entry(topology.server_of(b)).or_default().push(b);
        }
        let scan_groups = by_server.into_iter().collect();
        Arc::new(SharedLayout {
            params,
            layout,
            scan_groups,
        })
    }

    /// The layout parameters.
    pub fn params(&self) -> Params {
        self.params
    }

    /// The underlying register layout.
    pub fn layout(&self) -> &RegisterLayout {
        &self.layout
    }

    /// The per-server register groups scanned by `collect()`.
    pub fn scan_groups(&self) -> &[(ServerId, Vec<ObjectId>)] {
        &self.scan_groups
    }
}

/// What the client is currently doing.
#[derive(Debug)]
enum Phase {
    Idle,
    /// Running `collect()` on behalf of `op`.
    Collecting {
        op: HighOp,
        scan: ScanTracker,
    },
    /// A write has triggered its low-level writes and waits for
    /// `|R_j| - f` acknowledgements.
    Writing,
}

/// A client of the space-optimal construction (Algorithm 2).
///
/// The same type implements writers (constructed with a writer index) and
/// readers (constructed without one). Local state persists across high-level
/// operations, exactly as in the paper's pseudo-code: `tsVal`, `wrSet` and
/// `coverSet` live for the whole run.
pub struct SpaceOptimalClient {
    shared: Arc<SharedLayout>,
    writer_index: Option<usize>,
    /// `R_j` — the register set this writer writes to (empty for readers).
    my_set: Vec<ObjectId>,

    /// `tsVal` — the timestamped value of this writer's latest write.
    ts_val: Value,
    /// `wrSet` — registers of `R_j` whose most recent low-level write by this
    /// client has been acknowledged. Initially all of `R_j` (nothing pending).
    wr_set: BTreeSet<ObjectId>,
    /// `coverSet` — registers of `R_j` still covered by one of this client's
    /// earlier low-level writes; the client must not write to them again
    /// until that write responds.
    cover_set: BTreeSet<ObjectId>,

    /// Low-level reads belonging to the current `collect()`.
    read_ops: BTreeMap<OpId, ObjectId>,
    /// Low-level writes (across high-level operations) awaiting a response.
    write_ops: BTreeMap<OpId, ObjectId>,

    /// **Ablation knob** — extra acknowledgements the writer is allowed to
    /// skip: the write returns after `|R_j| - f - slack` acks instead of
    /// `|R_j| - f`. The paper's algorithm uses 0; any positive slack breaks
    /// WS-Safety under the right crash/delay schedule (demonstrated by the
    /// `ablation` module of `regemu-adversary`), which is exactly why the
    /// quorum size is what it is.
    write_quorum_slack: usize,

    phase: Phase,
}

impl SpaceOptimalClient {
    /// Creates the protocol for writer `writer_index` (0-based, `< k`).
    pub fn writer(shared: Arc<SharedLayout>, writer_index: usize) -> Self {
        let my_set = shared.layout().registers_for_writer(writer_index).to_vec();
        let wr_set = my_set.iter().copied().collect();
        SpaceOptimalClient {
            shared,
            writer_index: Some(writer_index),
            my_set,
            ts_val: Value::INITIAL,
            wr_set,
            cover_set: BTreeSet::new(),
            read_ops: BTreeMap::new(),
            write_ops: BTreeMap::new(),
            write_quorum_slack: 0,
            phase: Phase::Idle,
        }
    }

    /// **For ablation studies only.** Returns a writer that waits for `slack`
    /// fewer acknowledgements than Algorithm 2 prescribes. With `slack = 0`
    /// this is the paper's algorithm; with any larger value the construction
    /// is no longer `f`-tolerant WS-Safe (demonstrated by the `ablation`
    /// module of `regemu-adversary`).
    pub fn writer_with_quorum_slack(
        shared: Arc<SharedLayout>,
        writer_index: usize,
        slack: usize,
    ) -> Self {
        let mut client = Self::writer(shared, writer_index);
        client.write_quorum_slack = slack;
        client
    }

    /// Creates the protocol for a read-only client.
    pub fn reader(shared: Arc<SharedLayout>) -> Self {
        SpaceOptimalClient {
            shared,
            writer_index: None,
            my_set: Vec::new(),
            ts_val: Value::INITIAL,
            wr_set: BTreeSet::new(),
            cover_set: BTreeSet::new(),
            read_ops: BTreeMap::new(),
            write_ops: BTreeMap::new(),
            write_quorum_slack: 0,
            phase: Phase::Idle,
        }
    }

    /// The registers currently covered by this client's own pending writes —
    /// at most `f` of them once a write completes (Observation 3).
    pub fn covered_registers(&self) -> &BTreeSet<ObjectId> {
        &self.cover_set
    }

    fn read_quorum_size(&self) -> usize {
        self.shared.params().n - self.shared.params().f
    }

    fn write_quorum_size(&self) -> usize {
        (self.my_set.len() - self.shared.params().f).saturating_sub(self.write_quorum_slack)
    }

    /// Lines 20–24: trigger a read on every register of the layout and wait
    /// for `n - f` complete per-server scans.
    fn start_collect(&mut self, op: HighOp, ctx: &mut Context<'_>) {
        let scan = ScanTracker::new(
            self.read_quorum_size(),
            self.shared.scan_groups().iter().cloned(),
        );
        self.read_ops.clear();
        for (_, registers) in self.shared.scan_groups() {
            for b in registers {
                let op_id = ctx.trigger(*b, BaseOp::Read);
                self.read_ops.insert(op_id, *b);
            }
        }
        self.phase = Phase::Collecting { op, scan };
        // Degenerate layouts (or a threshold of zero) may already be
        // satisfied; handle the transition immediately.
        self.maybe_finish_collect(ctx);
    }

    fn maybe_finish_collect(&mut self, ctx: &mut Context<'_>) {
        let Phase::Collecting { op, scan } = &self.phase else {
            return;
        };
        if !scan.satisfied() {
            return;
        }
        let op = *op;
        let best = scan.best();
        match op {
            HighOp::Read => {
                self.phase = Phase::Idle;
                ctx.complete(HighResponse::ReadValue(best.val));
            }
            HighOp::Write(payload) => {
                let writer = self
                    .writer_index
                    .expect("a read-only client cannot execute a high-level write");
                // Lines 3–4: pick a timestamp larger than everything observed.
                self.ts_val = Value::new(timestamp::next(best.ts, writer), payload);
                // Lines 6–7: registers that never acknowledged the previous
                // write remain covered; start the new round with an empty
                // acknowledgement set.
                self.cover_set = self
                    .my_set
                    .iter()
                    .copied()
                    .filter(|b| !self.wr_set.contains(b))
                    .collect();
                self.wr_set.clear();
                // Lines 8–10: write to every register of R_j that is not
                // covered by one of our own pending writes.
                for b in self.my_set.clone() {
                    if !self.cover_set.contains(&b) {
                        let op_id = ctx.trigger(b, BaseOp::Write(self.ts_val));
                        self.write_ops.insert(op_id, b);
                    }
                }
                self.phase = Phase::Writing;
                self.maybe_finish_write(ctx);
            }
        }
    }

    /// Line 11: the write returns once `|R_j| - f` registers acknowledged.
    fn maybe_finish_write(&mut self, ctx: &mut Context<'_>) {
        if !matches!(self.phase, Phase::Writing) {
            return;
        }
        if self.wr_set.len() >= self.write_quorum_size() {
            self.phase = Phase::Idle;
            ctx.complete(HighResponse::WriteAck);
        }
    }

    /// Lines 29–34: handle a low-level write acknowledgement. Active in every
    /// phase — acknowledgements of writes from *previous* high-level
    /// operations can arrive at any time.
    fn on_write_ack(&mut self, register: ObjectId, ctx: &mut Context<'_>) {
        if self.cover_set.remove(&register) {
            // The old covering write finally landed; immediately refresh the
            // register with our current value (it stays covered by the new
            // write until that one responds).
            let op_id = ctx.trigger(register, BaseOp::Write(self.ts_val));
            self.write_ops.insert(op_id, register);
        } else {
            self.wr_set.insert(register);
            self.maybe_finish_write(ctx);
        }
    }
}

impl ClientProtocol for SpaceOptimalClient {
    fn on_invoke(&mut self, op: HighOp, ctx: &mut Context<'_>) {
        debug_assert!(
            !(op.is_write() && self.writer_index.is_none()),
            "a read-only client received a high-level write"
        );
        // Both reads and writes begin with collect() (lines 2 and 18).
        self.start_collect(op, ctx);
    }

    fn on_response(&mut self, delivery: Delivery, ctx: &mut Context<'_>) {
        match delivery.response {
            BaseResponse::ReadValue(value) => {
                if self.read_ops.remove(&delivery.op_id).is_some() {
                    if let Phase::Collecting { scan, .. } = &mut self.phase {
                        scan.record(delivery.server, delivery.object, value);
                        self.maybe_finish_collect(ctx);
                    }
                    // Stale responses from an earlier collect are ignored.
                }
            }
            BaseResponse::WriteAck => {
                if let Some(register) = self.write_ops.remove(&delivery.op_id) {
                    self.on_write_ack(register, ctx);
                }
            }
            _ => {}
        }
    }

    fn name(&self) -> &'static str {
        "space-optimal"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regemu_fpsm::prelude::*;
    use regemu_fpsm::RunMetrics;

    fn build(k: usize, f: usize, n: usize) -> (Simulation, Arc<SharedLayout>) {
        let params = Params::new(k, f, n).unwrap();
        let (topology, layout) = RegisterLayout::build(params);
        let shared = SharedLayout::new(layout, &topology);
        let sim = Simulation::new(topology, SimConfig::with_fault_threshold(f));
        (sim, shared)
    }

    fn register_clients(
        sim: &mut Simulation,
        shared: &Arc<SharedLayout>,
        k: usize,
        readers: usize,
    ) -> (Vec<ClientId>, Vec<ClientId>) {
        let writers = (0..k)
            .map(|i| sim.register_client(Box::new(SpaceOptimalClient::writer(shared.clone(), i))))
            .collect();
        let readers = (0..readers)
            .map(|_| sim.register_client(Box::new(SpaceOptimalClient::reader(shared.clone()))))
            .collect();
        (writers, readers)
    }

    #[test]
    fn write_then_read_round_trip() {
        let (mut sim, shared) = build(2, 1, 4);
        let (writers, readers) = register_clients(&mut sim, &shared, 2, 1);
        let mut driver = FairDriver::new(5);

        let w = sim.invoke(writers[0], HighOp::Write(77)).unwrap();
        driver.run_until_complete(&mut sim, w, 5000).unwrap();
        let r = sim.invoke(readers[0], HighOp::Read).unwrap();
        driver.run_until_complete(&mut sim, r, 5000).unwrap();
        assert_eq!(sim.result_of(r), Some(HighResponse::ReadValue(77)));
    }

    #[test]
    fn sequential_writers_from_different_sets_are_observed_in_order() {
        let (mut sim, shared) = build(4, 1, 6);
        let (writers, readers) = register_clients(&mut sim, &shared, 4, 1);
        let mut driver = FairDriver::new(11);

        for (i, w) in writers.iter().enumerate() {
            let op = sim.invoke(*w, HighOp::Write(1000 + i as u64)).unwrap();
            driver.run_until_complete(&mut sim, op, 8000).unwrap();
            let r = sim.invoke(readers[0], HighOp::Read).unwrap();
            driver.run_until_complete(&mut sim, r, 8000).unwrap();
            assert_eq!(
                sim.result_of(r),
                Some(HighResponse::ReadValue(1000 + i as u64))
            );
        }
    }

    #[test]
    fn read_returns_latest_value_despite_f_crashes() {
        let (mut sim, shared) = build(2, 1, 4);
        let (writers, readers) = register_clients(&mut sim, &shared, 2, 1);
        let mut driver = FairDriver::new(3);

        let w = sim.invoke(writers[1], HighOp::Write(5)).unwrap();
        driver.run_until_complete(&mut sim, w, 5000).unwrap();
        // Crash one server (f = 1) after the write completed.
        sim.crash_server(ServerId::new(0)).unwrap();
        let r = sim.invoke(readers[0], HighOp::Read).unwrap();
        driver.run_until_complete(&mut sim, r, 5000).unwrap();
        assert_eq!(sim.result_of(r), Some(HighResponse::ReadValue(5)));
    }

    #[test]
    fn writer_covers_at_most_f_registers_after_completion() {
        // Block the acknowledgements of up to f low-level writes; the write
        // must still complete (wait-freedom) and leave at most f covered
        // registers (Observation 3).
        let (mut sim, shared) = build(2, 2, 8);
        let writer_protocol = SpaceOptimalClient::writer(shared.clone(), 0);
        let my_set = writer_protocol.my_set.clone();
        let c = sim.register_client(Box::new(writer_protocol));
        let mut driver = FairDriver::new(7);

        let w = sim.invoke(c, HighOp::Write(9)).unwrap();
        // Let the collect finish and the low-level writes be triggered, then
        // block the first f write ops.
        for _ in 0..10_000 {
            if sim.pending_ops().any(|p| p.op.is_write()) {
                break;
            }
            driver.step(&mut sim).unwrap();
        }
        let writes: Vec<OpId> = sim
            .pending_ops()
            .filter(|p| p.op.is_write())
            .map(|p| p.op_id)
            .collect();
        assert_eq!(writes.len(), my_set.len(), "one write per register of R_j");
        for op in writes.iter().take(2) {
            driver.block(*op);
        }
        driver.run_until_complete(&mut sim, w, 10_000).unwrap();
        // After completion, exactly the blocked writes are still covering.
        let metrics = RunMetrics::capture(&sim);
        assert_eq!(metrics.covered_count(), 2);
        assert!(metrics.covered_count() <= 2);
    }

    #[test]
    fn resource_consumption_matches_theorem_3() {
        for (k, f, n) in [(1, 1, 3), (2, 1, 4), (3, 1, 5), (2, 2, 6), (5, 2, 6)] {
            let (mut sim, shared) = build(k, f, n);
            let (writers, readers) = register_clients(&mut sim, &shared, k, 1);
            let mut driver = FairDriver::new(k as u64 * 31 + f as u64);
            for (i, w) in writers.iter().enumerate() {
                let op = sim.invoke(*w, HighOp::Write(i as u64 + 1)).unwrap();
                driver.run_until_complete(&mut sim, op, 20_000).unwrap();
            }
            let r = sim.invoke(readers[0], HighOp::Read).unwrap();
            driver.run_until_complete(&mut sim, r, 20_000).unwrap();
            assert_eq!(sim.result_of(r), Some(HighResponse::ReadValue(k as u64)));

            let params = Params::new(k, f, n).unwrap();
            let metrics = RunMetrics::capture(&sim);
            // Reads touch every register of the layout, so the consumption is
            // exactly the layout size, which is Theorem 3's formula.
            assert_eq!(
                metrics.resource_consumption(),
                regemu_bounds::register_upper_bound(params)
            );
            assert!(metrics.resource_consumption() >= regemu_bounds::register_lower_bound(params));
        }
    }

    #[test]
    fn reader_never_triggers_writes() {
        let (mut sim, shared) = build(2, 1, 4);
        let (_writers, readers) = register_clients(&mut sim, &shared, 2, 1);
        let mut driver = FairDriver::new(2);
        let r = sim.invoke(readers[0], HighOp::Read).unwrap();
        driver.run_until_complete(&mut sim, r, 5000).unwrap();
        assert_eq!(sim.result_of(r), Some(HighResponse::ReadValue(0)));
        let metrics = RunMetrics::capture(&sim);
        assert!(metrics.written.is_empty(), "readers must not write");
    }

    #[test]
    fn two_writers_of_the_same_set_do_not_lose_updates() {
        // k = 2, z = 2: both writers share one register set.
        let (mut sim, shared) = build(2, 1, 6);
        assert_eq!(shared.layout().set_count(), 1);
        let (writers, readers) = register_clients(&mut sim, &shared, 2, 1);
        let mut driver = FairDriver::new(13);
        for round in 0..3u64 {
            for (i, w) in writers.iter().enumerate() {
                let value = round * 10 + i as u64 + 1;
                let op = sim.invoke(*w, HighOp::Write(value)).unwrap();
                driver.run_until_complete(&mut sim, op, 8000).unwrap();
                let r = sim.invoke(readers[0], HighOp::Read).unwrap();
                driver.run_until_complete(&mut sim, r, 8000).unwrap();
                assert_eq!(sim.result_of(r), Some(HighResponse::ReadValue(value)));
            }
        }
    }
}
