//! Coverage-guided scenario fuzzing with automatic failure shrinking.
//!
//! The paper's bounds are adversarial: the interesting bugs live in
//! schedules the hand-enumerated sweep grid never visits. This module
//! explores that space and triages what it finds:
//!
//! 1. **Record & replay** — every run can record its per-delivery scheduler
//!    decisions ([`regemu_fpsm::DecisionRecord`]); a recorded stream replays
//!    byte-identically through [`regemu_adversary::ReplayStrategy`] inside
//!    the ordinary [`regemu_fpsm::AdversarialScheduler`]. The
//!    [`RecordedSchedule`] text format ([`trace`]) makes traces portable, so
//!    external model checkers can feed schedules in and repros out.
//! 2. **Coverage-guided exploration** — [`Fuzzer`] maintains a corpus of
//!    schedules. Each iteration derives a mutant via
//!    [`MutatingStrategy::mutate`] (flip delivery decisions, splice
//!    prefixes, shift crash points, truncate the workload, reseed the fair
//!    tail), executes it, and admits it to the corpus only when its
//!    interleaving-coverage signature (an FNV-1a digest of the per-step
//!    delivery-order decisions) is new. Everything flows from one seed: the
//!    same corpus + seed produces a byte-identical [`FuzzReport`].
//! 3. **Automatic shrinking** — when a run fails its
//!    [`ConsistencyCheck`] (or wedges), [`shrink::shrink_failure`]
//!    delta-debugs the case — schedule prefix, crash plan, workload length,
//!    tail seed — to a minimal still-failing repro and emits a
//!    [`FailureReport`] with the replay command line and the trace file.
//!
//! The machinery is validated by a seeded-bug oracle suite
//! (`tests/fuzz_detects_bugs.rs`): for every [`regemu_core::FaultyKind`]
//! the fuzzer must find a failing schedule within a fixed budget, while the
//! clean constructions survive the same budget with zero failures.
//!
//! ```
//! use regemu_workloads::fuzz::{FuzzConfig, FuzzEmulation, Fuzzer};
//! use regemu_bounds::Params;
//!
//! // A clean construction survives a small budget with zero failures.
//! let config = FuzzConfig::new(Params::new(1, 1, 3)?).budget(25);
//! let report = Fuzzer::new(config).run();
//! assert!(!report.found());
//! assert_eq!(report.iterations, 25);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod campaign;
pub mod mutate;
pub mod shrink;
pub mod trace;

pub use campaign::{
    init_fuzz_spool, merge_fuzz_campaign, run_fuzz_campaign, run_fuzz_shard_gen,
    FuzzCampaignConfig, FuzzCampaignOptions, FuzzCampaignOutcome, FuzzCampaignReport, FuzzManifest,
    MergedFailure,
};
pub use mutate::{MutatingStrategy, MutationStream};
pub use shrink::{shrink_case, shrink_failure, FailureReport};
pub use trace::RecordedSchedule;

use crate::generator::{Issuer, Workload};
use crate::runner::ConsistencyCheck;
use crate::scenario::Engine;
use crate::sweep::WorkloadSpec;
use regemu_adversary::ReplayStrategy;
use regemu_bounds::Params;
use regemu_core::{EmulationKind, FaultyKind};
use regemu_fpsm::{
    AdversarialScheduler, CrashPlan, DelayedScheduler, HighOp, Scheduler, ServerId, Time,
};
use regemu_spec::Condition;
use std::collections::BTreeSet;
use std::fmt;

/// The emulation under fuzz: a clean construction or a seeded bug.
///
/// Wrapping [`FaultyKind`] here keeps faulty names round-trippable through
/// [`RecordedSchedule`] text, so a repro against a seeded bug replays from
/// its trace file exactly like one against a clean construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FuzzEmulation {
    /// One of the paper's constructions ([`EmulationKind`]).
    Kind(EmulationKind),
    /// An intentionally broken variant ([`FaultyKind`]).
    Faulty(FaultyKind),
}

impl FuzzEmulation {
    /// Stable short name (the wrapped kind's name).
    pub fn name(self) -> &'static str {
        match self {
            FuzzEmulation::Kind(kind) => kind.name(),
            FuzzEmulation::Faulty(kind) => kind.name(),
        }
    }

    /// Resolves a name against the clean catalogue first, then the seeded
    /// bugs.
    pub fn from_name(name: &str) -> Option<Self> {
        EmulationKind::from_name(name)
            .map(FuzzEmulation::Kind)
            .or_else(|| FaultyKind::from_name(name).map(FuzzEmulation::Faulty))
    }

    /// Builds the emulation instance.
    pub fn build(self, params: Params) -> Box<dyn regemu_core::Emulation> {
        match self {
            FuzzEmulation::Kind(kind) => kind.build(params),
            FuzzEmulation::Faulty(kind) => kind.build(params),
        }
    }
}

impl fmt::Display for FuzzEmulation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One fuzzed scenario: everything a mutant varies, nothing more.
///
/// The invariant dimensions (parameters, emulation, workload shape, check)
/// live in [`FuzzConfig`]; a case is the variable part — the schedule
/// decisions (ranks among deliverable operations, consumed by
/// [`ReplayStrategy`]), the server crash plan, how much of the workload to
/// issue, and the seed driving the fair tail after the decisions run out.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FuzzCase {
    /// Delivery-order decisions replayed before the fair tail takes over.
    pub decisions: Vec<u32>,
    /// Server crashes as `(time, server index)` pairs, at most `f` distinct
    /// servers (the mutator keeps this within the fault budget).
    pub crashes: Vec<(Time, usize)>,
    /// Number of workload operations to issue (a prefix of the full
    /// workload; at least 1).
    pub workload_len: usize,
    /// Workload-op value rewrites as `(op index, value)` pairs: the write at
    /// that index (if any, and if inside the issued prefix) writes `value`
    /// instead of the generated one. Sorted by index, indices distinct.
    pub rewrites: Vec<(usize, u64)>,
    /// Workload-op kind flips: writer-issued *writes* at these indices are
    /// demoted to reads (reader ops are never promoted — read-only clients
    /// reject writes by construction). Sorted, indices distinct.
    pub flips: Vec<usize>,
    /// Delay-tick perturbation: when non-empty the case runs under the
    /// [`regemu_fpsm::DelayedScheduler`] (seeded by [`FuzzCase::seed`]) with
    /// these extra per-op delay ticks instead of the replay scheduler, and
    /// `decisions` is ignored. The executed interleaving still folds back
    /// into a pure decision stream for corpus admission.
    pub delays: Vec<u32>,
    /// Seed of the scheduler's fair tail (or of the delayed scheduler when
    /// [`FuzzCase::delays`] is non-empty).
    pub seed: u64,
}

impl FuzzCase {
    /// The un-mutated seed case: issue `workload_len` operations under the
    /// plain seeded fair schedule, no decisions, crashes or perturbations.
    pub fn seed_case(workload_len: usize, seed: u64) -> Self {
        FuzzCase {
            decisions: Vec::new(),
            crashes: Vec::new(),
            workload_len,
            rewrites: Vec::new(),
            flips: Vec::new(),
            delays: Vec::new(),
            seed,
        }
    }
}

/// What to fuzz and how hard.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// The `(k, f, n)` parameter point.
    pub params: Params,
    /// The emulation under test.
    pub emulation: FuzzEmulation,
    /// The workload shape (instantiated with `params.k` and
    /// [`FuzzConfig::seed`]; cases issue prefixes of it).
    pub workload: WorkloadSpec,
    /// The consistency condition every run is checked against.
    pub check: ConsistencyCheck,
    /// Master seed: workload instantiation, the mutation stream and the
    /// seed case all derive from it.
    pub seed: u64,
    /// Number of mutants to execute.
    pub budget: usize,
    /// Per-operation delivery budget before a run is declared stuck.
    pub max_steps_per_op: u64,
    /// Stop at the first failure instead of spending the whole budget.
    pub stop_on_failure: bool,
}

impl FuzzConfig {
    /// A config over `params` with every dimension at its default: the
    /// space-optimal construction, one write-sequential round with reads,
    /// the WS-Regularity check, a 500-mutant budget.
    pub fn new(params: Params) -> Self {
        FuzzConfig {
            params,
            emulation: FuzzEmulation::Kind(EmulationKind::SpaceOptimal),
            workload: WorkloadSpec::WriteSequential {
                rounds: 1,
                read_after_each: true,
            },
            check: ConsistencyCheck::WsRegular,
            seed: 0xF055,
            budget: 500,
            max_steps_per_op: 50_000,
            stop_on_failure: false,
        }
    }

    /// Selects the emulation under test.
    pub fn emulation(mut self, emulation: FuzzEmulation) -> Self {
        self.emulation = emulation;
        self
    }

    /// Selects the workload shape.
    pub fn workload(mut self, workload: WorkloadSpec) -> Self {
        self.workload = workload;
        self
    }

    /// Selects the consistency condition.
    pub fn check(mut self, check: ConsistencyCheck) -> Self {
        self.check = check;
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the mutation budget.
    pub fn budget(mut self, budget: usize) -> Self {
        self.budget = budget;
        self
    }

    /// Stops at the first failure.
    pub fn stop_on_failure(mut self) -> Self {
        self.stop_on_failure = true;
        self
    }

    /// The fully instantiated workload cases take prefixes of.
    pub(crate) fn full_workload(&self) -> Workload {
        self.workload.instantiate(self.params.k, self.seed)
    }
}

/// Why a run failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// The run could not complete (stuck or a simulation error).
    Stuck,
    /// The consistency check found a violation of this condition.
    Violation(Condition),
}

impl FailureKind {
    /// Stable single-token label used in traces and reports.
    pub fn label(&self) -> String {
        match self {
            FailureKind::Stuck => "stuck".to_string(),
            FailureKind::Violation(c) => format!("violation:{c}"),
        }
    }

    /// `true` for liveness failures (the execution wedged instead of
    /// violating a consistency condition).
    pub fn is_liveness_bug(&self) -> bool {
        matches!(self, FailureKind::Stuck)
    }
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// A failing case as the explorer found it (before shrinking).
#[derive(Clone, Debug)]
pub struct FuzzFailure {
    /// The failing case.
    pub case: FuzzCase,
    /// Why it failed.
    pub kind: FailureKind,
    /// Human-readable verdict of the failing run.
    pub verdict: String,
    /// Iteration at which it was found (0 = the un-mutated seed case).
    pub iteration: usize,
}

/// The executed outcome of one case.
pub(crate) struct ExecOutcome {
    pub(crate) kind: Option<FailureKind>,
    pub(crate) verdict: String,
    /// The `(choice, candidates)` pairs the run actually executed — the
    /// closed form of the schedule, replayable without the fair tail.
    pub(crate) executed: Vec<(u32, u32)>,
    /// Interleaving-coverage signature over `executed`.
    pub(crate) signature: u64,
}

/// FNV-1a over the little-endian bytes of the decision pairs.
pub(crate) fn signature_of(executed: &[(u32, u32)]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &(choice, candidates) in executed {
        for byte in choice
            .to_le_bytes()
            .into_iter()
            .chain(candidates.to_le_bytes())
        {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

/// Executes one case: replay the decisions, let the seeded fair tail finish,
/// record the executed interleaving, check the configured condition.
pub(crate) fn execute(config: &FuzzConfig, case: &FuzzCase) -> ExecOutcome {
    let emulation = config.emulation.build(config.params);
    let full = config.full_workload();
    let len = case
        .workload_len
        .clamp(1, full.len().max(1))
        .min(full.len());
    let mut steps = full.ops()[..len].to_vec();
    // Workload-op mutation: rewrite written values, demote writer writes to
    // reads. Out-of-prefix indices are silently inert, so the mutator does
    // not have to track the prefix cut.
    for &(idx, value) in &case.rewrites {
        if let Some(step) = steps.get_mut(idx) {
            if step.op.is_write() {
                step.op = HighOp::Write(value);
            }
        }
    }
    for &idx in &case.flips {
        if let Some(step) = steps.get_mut(idx) {
            if step.op.is_write() && matches!(step.issuer, Issuer::Writer(_)) {
                step.op = HighOp::Read;
            }
        }
    }
    let workload = Workload::from_steps(steps);
    let mut plan = CrashPlan::none();
    for &(time, server) in &case.crashes {
        plan = plan.crash_at(time, ServerId::new(server));
    }
    // Delay perturbation switches the whole run to the delayed scheduler;
    // otherwise the recorded decisions replay through the adversary.
    let mut scheduler: Box<dyn Scheduler> = if case.delays.is_empty() {
        Box::new(
            AdversarialScheduler::new(
                case.seed,
                Box::new(ReplayStrategy::new(case.decisions.clone())),
            )
            .with_crash_plan(plan),
        )
    } else {
        Box::new(
            DelayedScheduler::new(case.seed, DelayedScheduler::DEFAULT_MAX_DELAY)
                .with_perturbation(case.delays.iter().map(|&d| u64::from(d)).collect())
                .with_crash_plan(plan),
        )
    };

    let mut engine = Engine::new(emulation.as_ref());
    engine.sim_mut().enable_decision_trace();
    let mut error = None;
    loop {
        match engine.step(
            emulation.as_ref(),
            &workload,
            scheduler.as_mut(),
            config.max_steps_per_op,
            false,
        ) {
            Ok(true) => {}
            Ok(false) => break,
            Err(e) => {
                error = Some(e);
                break;
            }
        }
    }
    let executed: Vec<(u32, u32)> = engine
        .sim()
        .decision_trace()
        .iter()
        .map(|d| (d.choice, d.candidates))
        .collect();
    let signature = signature_of(&executed);
    let (kind, verdict) = match error {
        Some(e) => (Some(FailureKind::Stuck), format!("stuck: {e}")),
        None => {
            let report = engine.report(emulation.as_ref(), "fuzz", config.check);
            match report.check_violation {
                Some(v) => (
                    Some(FailureKind::Violation(v.condition)),
                    format!("violation: {v}"),
                ),
                None => (None, "pass".to_string()),
            }
        }
    };
    ExecOutcome {
        kind,
        verdict,
        executed,
        signature,
    }
}

/// The coverage-guided explorer.
///
/// Fully deterministic: corpus evolution, failures and the final report are
/// a pure function of the [`FuzzConfig`].
pub struct Fuzzer {
    config: FuzzConfig,
    corpus: Vec<FuzzCase>,
    seen: BTreeSet<u64>,
    failures: Vec<FuzzFailure>,
    bounds: mutate::MutationBounds,
    stream: MutationStream,
    seed_case: FuzzCase,
    seeded: bool,
    iterations: usize,
}

impl Fuzzer {
    /// Creates the explorer.
    pub fn new(config: FuzzConfig) -> Self {
        let full_len = config.full_workload().len().max(1);
        let bounds = mutate::MutationBounds {
            n: config.params.n,
            f: config.params.f,
            full_workload_len: full_len,
        };
        let stream = MutationStream::new(config.seed);
        let seed_case = FuzzCase::seed_case(full_len, config.seed);
        Fuzzer {
            config,
            corpus: Vec::new(),
            seen: BTreeSet::new(),
            failures: Vec::new(),
            bounds,
            stream,
            seed_case,
            seeded: false,
            iterations: 0,
        }
    }

    /// The config under fuzz.
    pub fn config(&self) -> &FuzzConfig {
        &self.config
    }

    /// The corpus admitted so far (closed-form cases, admission order).
    pub fn corpus(&self) -> &[FuzzCase] {
        &self.corpus
    }

    /// Every failure found so far, in discovery order.
    pub fn failures(&self) -> &[FuzzFailure] {
        &self.failures
    }

    /// Mutants executed so far (excludes the seed case and ingests).
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Executes a foreign closed-form case (a peer's published corpus
    /// entry, in a sharded campaign) and admits it when its interleaving
    /// signature is new. Does not consume budget. A case that fails here is
    /// recorded as a failure like any other — though peers only publish
    /// passing cases, so under an identical config that never fires.
    pub fn ingest(&mut self, case: FuzzCase) {
        self.observe(case, self.iterations);
    }

    /// Runs the whole campaign: the un-mutated seed case first, then
    /// `budget` mutants, admitting new-coverage survivors to the corpus.
    pub fn run(&mut self) -> FuzzReport {
        let budget = self.config.budget;
        self.run_iterations(budget);
        self.report()
    }

    /// Runs up to `count` further mutants, continuing from the current
    /// corpus and mutation-stream state (the incremental form [`Fuzzer::run`]
    /// is built on; sharded campaigns call this once per generation). The
    /// first call also executes the un-mutated seed case (iteration 0).
    pub fn run_iterations(&mut self, count: usize) {
        if !self.seeded {
            self.seeded = true;
            self.observe(self.seed_case.clone(), 0);
        }
        let mut done = 0;
        while done < count {
            if self.config.stop_on_failure && !self.failures.is_empty() {
                break;
            }
            done += 1;
            self.iterations += 1;
            // When even the seed case fails the corpus can be empty; keep
            // mutating the seed case so exploration never stalls.
            let bi = (self.stream.next_u64() as usize) % self.corpus.len().max(1);
            let di = (self.stream.next_u64() as usize) % self.corpus.len().max(1);
            let base = self.corpus.get(bi).unwrap_or(&self.seed_case).clone();
            let donor = self.corpus.get(di).unwrap_or(&self.seed_case).clone();
            let (mutant, _strategy) =
                MutatingStrategy::mutate(&base, Some(&donor), &self.bounds, &mut self.stream);
            let iteration = self.iterations;
            self.observe(mutant, iteration);
        }
    }

    /// The report over everything run so far.
    pub fn report(&self) -> FuzzReport {
        FuzzReport {
            config: self.config.clone(),
            iterations: self.iterations,
            corpus_size: self.corpus.len(),
            failures: self.failures.clone(),
        }
    }

    /// Executes one case and folds the outcome into corpus/failures.
    fn observe(&mut self, case: FuzzCase, iteration: usize) {
        let outcome = execute(&self.config, &case);
        match outcome.kind {
            Some(kind) => self.failures.push(FuzzFailure {
                case,
                kind,
                verdict: outcome.verdict,
                iteration,
            }),
            None => {
                if self.seen.insert(outcome.signature) {
                    // Admit the *closed form*: the executed ranks, which
                    // replay this exact run without relying on the tail
                    // seed or the delay perturbation (the decision trace is
                    // scheduler-agnostic, so a delayed run folds back into
                    // pure decisions). Mutants splice and extend from these.
                    self.corpus.push(FuzzCase {
                        decisions: outcome.executed.iter().map(|&(c, _)| c).collect(),
                        delays: Vec::new(),
                        ..case
                    });
                }
            }
        }
    }
}

/// The outcome of a fuzz campaign.
#[derive(Clone, Debug)]
pub struct FuzzReport {
    /// The config that was fuzzed.
    pub config: FuzzConfig,
    /// Mutants executed (excludes the seed case).
    pub iterations: usize,
    /// Distinct interleaving signatures admitted to the corpus.
    pub corpus_size: usize,
    /// Every failing case, in discovery order.
    pub failures: Vec<FuzzFailure>,
}

impl FuzzReport {
    /// Whether any failure was found.
    pub fn found(&self) -> bool {
        !self.failures.is_empty()
    }

    /// Deterministic text rendering: two campaigns over the same config are
    /// byte-identical if and only if they explored identically.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("regemu-fuzz-report v1\n");
        out.push_str(&format!(
            "params {} {} {}\n",
            self.config.params.k, self.config.params.f, self.config.params.n
        ));
        out.push_str(&format!("emulation {}\n", self.config.emulation));
        out.push_str(&format!("workload {}\n", self.config.workload.label()));
        out.push_str(&format!("check {}\n", self.config.check));
        out.push_str(&format!("seed {}\n", self.config.seed));
        out.push_str(&format!("iterations {}\n", self.iterations));
        out.push_str(&format!("corpus {}\n", self.corpus_size));
        out.push_str(&format!("failures {}\n", self.failures.len()));
        for failure in &self.failures {
            out.push_str(&format!(
                "failure iter={} kind={} decisions={} crashes={} workload-len={} rewrites={} flips={} delays={} tail-seed={} verdict={}\n",
                failure.iteration,
                failure.kind.label(),
                failure.case.decisions.len(),
                failure.case.crashes.len(),
                failure.case.workload_len,
                failure.case.rewrites.len(),
                failure.case.flips.len(),
                failure.case.delays.len(),
                failure.case.seed,
                failure.verdict,
            ));
        }
        out
    }
}

/// The outcome of replaying a [`RecordedSchedule`].
#[derive(Clone, Debug)]
pub struct ReplayOutcome {
    /// Why the replay failed, if it did.
    pub kind: Option<FailureKind>,
    /// Human-readable verdict, byte-identical to the verdict of the run the
    /// trace was emitted from.
    pub verdict: String,
}

/// Replays a trace and re-derives its verdict.
///
/// # Errors
///
/// Returns a message when the trace references an unknown emulation,
/// workload or check, or describes an invalid parameter point.
pub fn replay(schedule: &RecordedSchedule) -> Result<ReplayOutcome, String> {
    let config = schedule.config()?;
    let outcome = execute(&config, &schedule.case());
    Ok(ReplayOutcome {
        kind: outcome.kind,
        verdict: outcome.verdict,
    })
}

/// Runs a whole campaign and shrinks the first failure (if any): the
/// one-call form used by the `fuzz_campaign` binary and CI.
pub fn fuzz_and_shrink(config: FuzzConfig) -> (FuzzReport, Option<FailureReport>) {
    let report = Fuzzer::new(config.clone()).run();
    let shrunk = report
        .failures
        .first()
        .map(|failure| shrink_failure(&config, failure));
    (report, shrunk)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> FuzzConfig {
        FuzzConfig::new(Params::new(1, 1, 3).unwrap()).budget(40)
    }

    #[test]
    fn emulation_names_round_trip_across_both_catalogues() {
        for kind in EmulationKind::ALL {
            let e = FuzzEmulation::Kind(kind);
            assert_eq!(FuzzEmulation::from_name(e.name()), Some(e));
        }
        for kind in FaultyKind::ALL {
            let e = FuzzEmulation::Faulty(kind);
            assert_eq!(FuzzEmulation::from_name(e.name()), Some(e));
        }
        assert_eq!(FuzzEmulation::from_name("nope"), None);
    }

    #[test]
    fn the_seed_case_executes_and_passes_on_a_clean_emulation() {
        let config = config();
        let case = FuzzCase::seed_case(config.full_workload().len(), config.seed);
        let outcome = execute(&config, &case);
        assert!(outcome.kind.is_none(), "{}", outcome.verdict);
        assert!(!outcome.executed.is_empty());
        // Replaying the closed form reproduces the identical interleaving.
        let closed = FuzzCase {
            decisions: outcome.executed.iter().map(|&(c, _)| c).collect(),
            seed: 999, // the tail seed must not matter any more
            ..case
        };
        let replayed = execute(&config, &closed);
        assert_eq!(replayed.executed, outcome.executed);
        assert_eq!(replayed.signature, outcome.signature);
    }

    #[test]
    fn workload_mutation_and_delay_perturbation_are_deterministic() {
        let config = config();
        let full_len = config.full_workload().len();

        let mut case = FuzzCase::seed_case(full_len, config.seed);
        case.rewrites = vec![(0, (1u64 << 32) | 42)];
        case.flips = vec![0];
        let a = execute(&config, &case);
        let b = execute(&config, &case);
        assert_eq!(a.executed, b.executed);
        assert!(a.kind.is_none(), "{}", a.verdict);

        let mut delayed = FuzzCase::seed_case(full_len, config.seed);
        delayed.delays = vec![3, 0, 11];
        let d1 = execute(&config, &delayed);
        let d2 = execute(&config, &delayed);
        assert_eq!(d1.executed, d2.executed);
        assert!(d1.kind.is_none(), "{}", d1.verdict);
        // The delayed run folds back into a pure decision stream: replaying
        // the executed ranks without the perturbation reproduces the
        // identical interleaving.
        let closed = FuzzCase {
            decisions: d1.executed.iter().map(|&(c, _)| c).collect(),
            delays: Vec::new(),
            ..delayed
        };
        let replayed = execute(&config, &closed);
        assert_eq!(replayed.executed, d1.executed);
    }

    #[test]
    fn fuzz_reports_are_byte_identical_for_the_same_seed() {
        let a = Fuzzer::new(config()).run();
        let b = Fuzzer::new(config()).run();
        assert_eq!(a.to_text(), b.to_text());
        let c = Fuzzer::new(config().seed(1234)).run();
        assert_ne!(a.to_text(), c.to_text());
    }

    #[test]
    fn coverage_gating_grows_the_corpus_beyond_the_seed_case() {
        let report = Fuzzer::new(config()).run();
        assert!(!report.found(), "clean emulation must not fail");
        assert!(
            report.corpus_size > 1,
            "mutation must discover new interleavings (corpus {})",
            report.corpus_size
        );
        assert!(report.corpus_size <= 1 + report.iterations);
    }
}
