//! Values stored in base objects.
//!
//! Every base object in the system stores a [`Value`]: a pair of a timestamp
//! and a payload, ordered lexicographically. This single representation is
//! rich enough for all three base-object types studied in the paper:
//!
//! * a **read/write register** simply stores and returns the last written
//!   [`Value`];
//! * a **max-register** needs a totally ordered domain — the lexicographic
//!   `(ts, val)` order provides one;
//! * a **CAS** object needs equality — derived structurally.
//!
//! Emulation algorithms use the timestamp component for version ordering
//! (e.g. Algorithm 2 stores `TSVal = N × V`), while plain payloads can be
//! stored with [`Value::from_payload`].

use serde::{Deserialize, Serialize};
use std::fmt;

/// The payload type written by clients of the emulated register.
pub type Payload = u64;

/// A timestamped value, the universal content of every base object.
///
/// Ordered lexicographically by `(ts, val)` which makes it usable as the
/// ordered domain of a max-register.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct Value {
    /// Version/timestamp component (most significant in the ordering).
    pub ts: u64,
    /// Payload component.
    pub val: Payload,
}

impl Value {
    /// The initial value `v0` every base object starts with.
    pub const INITIAL: Value = Value { ts: 0, val: 0 };

    /// Creates a value with an explicit timestamp and payload.
    pub const fn new(ts: u64, val: Payload) -> Self {
        Value { ts, val }
    }

    /// Creates an un-versioned value carrying just a payload (timestamp 0).
    pub const fn from_payload(val: Payload) -> Self {
        Value { ts: 0, val }
    }

    /// Returns `true` if this is the initial value `v0`.
    pub fn is_initial(&self) -> bool {
        *self == Self::INITIAL
    }

    /// Returns the maximum of `self` and `other` under the lexicographic order.
    pub fn max(self, other: Value) -> Value {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns a copy of this value with the timestamp incremented by one.
    ///
    /// Useful for ABD-style "read the maximum timestamp, then write a larger
    /// one" protocols.
    pub fn bump(self) -> Value {
        Value {
            ts: self.ts + 1,
            val: self.val,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨ts={},v={}⟩", self.ts, self.val)
    }
}

impl From<(u64, Payload)> for Value {
    fn from((ts, val): (u64, Payload)) -> Self {
        Value { ts, val }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_lexicographic_on_ts_then_val() {
        assert!(Value::new(1, 0) > Value::new(0, 999));
        assert!(Value::new(2, 3) > Value::new(2, 2));
        assert!(Value::new(2, 2) == Value::new(2, 2));
    }

    #[test]
    fn initial_value_is_smallest_of_zero_ts() {
        assert!(Value::INITIAL.is_initial());
        assert!(Value::INITIAL <= Value::new(0, 1));
        assert!(!Value::new(0, 1).is_initial());
    }

    #[test]
    fn max_and_bump() {
        let a = Value::new(3, 7);
        let b = Value::new(4, 0);
        assert_eq!(a.max(b), b);
        assert_eq!(b.max(a), b);
        assert_eq!(a.bump(), Value::new(4, 7));
    }

    #[test]
    fn from_tuple_and_payload() {
        assert_eq!(Value::from((5, 6)), Value::new(5, 6));
        assert_eq!(Value::from_payload(9), Value::new(0, 9));
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(Value::new(1, 2).to_string(), "⟨ts=1,v=2⟩");
    }
}
