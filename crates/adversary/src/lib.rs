//! # regemu-adversary — executable lower-bound machinery
//!
//! The lower bounds of Chockler & Spiegelman (PODC 2017) are proved with an
//! adversarial environment `Ad_i` that withholds the responses of selected
//! low-level writes, forcing every completed high-level write to leave at
//! least `f` freshly covered registers behind. This crate turns that proof
//! device into executable code that can be run against *any*
//! [`regemu_core::Emulation`]:
//!
//! * [`covering::CoveringTracker`] — the Definition 1 bookkeeping
//!   (`Cov`, `Tr_i`, `Rr_i`, `Q_i`, `F_i`, `M_i`, `G_i`), validated against
//!   the claims of Lemma 2;
//! * [`adi::AdversaryIteration`] — one adversary-driven high-level write
//!   (Definitions 2–3, Lemma 3);
//! * [`campaign::LowerBoundCampaign`] — the full Lemma 1 construction of `k`
//!   sequential writes, producing a [`campaign::CampaignReport`] with the
//!   coverage growth, per-server occupancy (Theorem 6), and point-contention
//!   evidence (Theorem 8);
//! * [`partition::demonstrate_partition`] — the executable partitioning
//!   argument behind Theorem 5 (`n ≥ 2f + 1`);
//! * [`strategy`] — the adversary's block/unblock moves packaged as
//!   [`regemu_fpsm::BlockStrategy`] implementations, pluggable into any
//!   [`regemu_fpsm::AdversarialScheduler`]-driven run or sweep.
//!
//! ## Example
//!
//! ```
//! use regemu_adversary::LowerBoundCampaign;
//! use regemu_core::{Emulation, SpaceOptimalEmulation};
//! use regemu_bounds::Params;
//!
//! let params = Params::new(3, 1, 4)?;
//! let emulation = SpaceOptimalEmulation::new(params);
//! let report = LowerBoundCampaign::new(&emulation).run(&emulation)?;
//! assert!(report.satisfies_coverage_growth());      // |Cov(t_i)| ≥ i·f
//! assert!(report.coverage_always_avoids_protected());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ablation;
pub mod adi;
pub mod campaign;
pub mod covering;
pub mod partition;
pub mod strategy;

pub use ablation::{demonstrate_quorum_ablation, AblationOutcome};
pub use adi::{AdversaryIteration, IterationOutcome};
pub use campaign::{CampaignReport, IterationReport, LowerBoundCampaign};
pub use covering::CoveringTracker;
pub use partition::{demonstrate_partition, PartitionOutcome, QuorumEmulation};
pub use strategy::{CoverWrites, ReplayStrategy, SilenceServers};

/// Convenient glob import of the most frequently used items.
pub mod prelude {
    pub use crate::adi::AdversaryIteration;
    pub use crate::campaign::{CampaignReport, LowerBoundCampaign};
    pub use crate::covering::CoveringTracker;
    pub use crate::partition::demonstrate_partition;
    pub use crate::strategy::{CoverWrites, ReplayStrategy, SilenceServers};
}
