//! Point-in-time metric snapshots and their renderers.

use crate::histogram::LatencyHistogram;

/// Summary statistics of one histogram at snapshot time.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSummary {
    /// Number of recorded samples.
    pub count: u64,
    /// Median.
    pub p50: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Largest recorded sample (exact).
    pub max: u64,
    /// Mean (exact).
    pub mean: f64,
}

impl HistogramSummary {
    /// Summarizes a histogram.
    pub fn of(h: &LatencyHistogram) -> Self {
        HistogramSummary {
            count: h.count(),
            p50: h.p50(),
            p99: h.p99(),
            p999: h.p999(),
            max: h.max(),
            mean: h.mean(),
        }
    }
}

/// A point-in-time view of a [`Registry`](crate::Registry): every metric
/// name with its value, sorted by name within each kind.
///
/// Renderable three ways: [`Snapshot::to_text`] for terminals,
/// [`Snapshot::to_json`] for files and pipes, [`Snapshot::to_prometheus`]
/// for scrape endpoints.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// `(name, value)` per counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` per gauge, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// `(name, summary)` per histogram, sorted by name.
    pub histograms: Vec<(String, HistogramSummary)>,
}

impl Snapshot {
    /// `true` when no metric has been registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// The value of counter `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// The value of gauge `name`, if registered.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Renders as aligned `name value` text, one metric per line, counters
    /// then gauges then histograms.
    pub fn to_text(&self) -> String {
        let width = self
            .counters
            .iter()
            .map(|(n, _)| n.len())
            .chain(self.gauges.iter().map(|(n, _)| n.len()))
            .chain(self.histograms.iter().map(|(n, _)| n.len()))
            .max()
            .unwrap_or(0);
        let mut out = String::new();
        for (name, value) in &self.counters {
            out.push_str(&format!("{name:<width$}  {value}\n"));
        }
        for (name, value) in &self.gauges {
            out.push_str(&format!("{name:<width$}  {value}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!(
                "{name:<width$}  count={} p50={} p99={} p999={} max={} mean={:.1}\n",
                h.count, h.p50, h.p99, h.p999, h.max, h.mean
            ));
        }
        out
    }

    /// Renders as a stable JSON object:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {...}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            out.push_str(&format!("{sep}\n    \"{}\": {value}", escape(name)));
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"gauges\": {");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            out.push_str(&format!("{sep}\n    \"{}\": {value}", escape(name)));
        }
        if !self.gauges.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            out.push_str(&format!(
                "{sep}\n    \"{}\": {{ \"count\": {}, \"p50\": {}, \"p99\": {}, \
                 \"p999\": {}, \"max\": {}, \"mean\": {:.1} }}",
                escape(name),
                h.count,
                h.p50,
                h.p99,
                h.p999,
                h.max,
                h.mean
            ));
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }

    /// Renders as Prometheus-style exposition text. Metric names are
    /// normalized (`.` and `-` become `_`); histograms expose
    /// `<name>_count` and quantile gauges.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let name = prom_name(name);
            out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
        }
        for (name, value) in &self.gauges {
            let name = prom_name(name);
            out.push_str(&format!("# TYPE {name} gauge\n{name} {value}\n"));
        }
        for (name, h) in &self.histograms {
            let name = prom_name(name);
            out.push_str(&format!("# TYPE {name} summary\n"));
            out.push_str(&format!("{name}_count {}\n", h.count));
            for (q, v) in [("0.5", h.p50), ("0.99", h.p99), ("0.999", h.p999)] {
                out.push_str(&format!("{name}{{quantile=\"{q}\"}} {v}\n"));
            }
            out.push_str(&format!("{name}_max {}\n", h.max));
        }
        out
    }
}

/// Normalizes a dotted metric name into the Prometheus charset.
fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| match c {
            'a'..='z' | 'A'..='Z' | '0'..='9' | '_' => c,
            _ => '_',
        })
        .collect()
}

/// Escapes a metric name for embedding in a JSON string literal.
fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn sample() -> Snapshot {
        let r = Registry::new();
        r.counter("sim.steps").add(1234);
        r.counter("sim.drops").add(2);
        r.gauge("sim.pending").set(17);
        r.histogram("serve.latency_us").record(100);
        r.histogram("serve.latency_us").record(200);
        r.snapshot()
    }

    #[test]
    fn text_rendering_is_aligned() {
        let text = sample().to_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        // Every value column starts right after the longest name + 2 spaces.
        let width = "serve.latency_us".len();
        for line in &lines {
            assert_eq!(&line[width..width + 2], "  ", "misaligned: {line:?}");
            assert_ne!(line.as_bytes()[width + 2], b' ', "misaligned: {line:?}");
        }
        assert!(text.contains("sim.steps"));
        assert!(text.contains("count=2"));
    }

    #[test]
    fn json_rendering_has_all_sections() {
        let json = sample().to_json();
        assert!(json.contains("\"counters\""));
        assert!(json.contains("\"sim.steps\": 1234"));
        assert!(json.contains("\"gauges\""));
        assert!(json.contains("\"sim.pending\": 17"));
        assert!(json.contains("\"histograms\""));
        assert!(json.contains("\"count\": 2"));
    }

    #[test]
    fn empty_snapshot_renders_valid_json() {
        let json = Snapshot::default().to_json();
        assert!(json.contains("\"counters\": {}"));
        assert!(json.contains("\"histograms\": {}\n}"));
    }

    #[test]
    fn prometheus_rendering_normalizes_names() {
        let prom = sample().to_prometheus();
        assert!(prom.contains("# TYPE sim_steps counter\nsim_steps 1234\n"));
        assert!(prom.contains("# TYPE sim_pending gauge\nsim_pending 17\n"));
        assert!(prom.contains("serve_latency_us_count 2"));
        assert!(prom.contains("serve_latency_us{quantile=\"0.5\"}"));
    }

    #[test]
    fn lookup_helpers_find_values() {
        let snap = sample();
        assert_eq!(snap.counter("sim.steps"), Some(1234));
        assert_eq!(snap.counter("absent"), None);
        assert_eq!(snap.gauge("sim.pending"), Some(17));
        assert!(!snap.is_empty());
    }
}
