//! Regenerates **Table 1** of the paper: lower/upper bounds on the number of
//! base objects per base-object type, next to the measured resource
//! consumption of the implemented emulations.
//!
//! ```text
//! cargo run -p regemu-bench --bin table1            # small sweep
//! cargo run -p regemu-bench --bin table1 -- --full  # full sweep
//! ```

use regemu_bench::experiments::table1;
use regemu_workloads::{small_sweep, standard_sweep};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let sweep = if full {
        standard_sweep()
    } else {
        small_sweep()
    };
    println!("{}", table1(&sweep));
    println!(
        "Closed-form bounds (Table 1):\n  max-register: 2f+1   CAS: 2f+1\n  \
         read/write register: lower kf + ceil(kf/(n-(f+1)))*(f+1), \
         upper kf + ceil(k/floor((n-(f+1))/f))*(f+1)"
    );
}
