//! Minimal stand-in for `rand_chacha` 0.3 (offline build shim, see
//! `shims/README.md`). `ChaCha8Rng` here is *not* the ChaCha stream cipher —
//! it is a deterministic counter-based generator exposing the same trait
//! surface (`RngCore` + `SeedableRng`), which is all the workspace needs from
//! a seedable, reproducible RNG.

use rand::{RngCore, SeedableRng};

/// Deterministic seedable generator standing in for `rand_chacha::ChaCha8Rng`.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    state: u64,
    counter: u64,
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        self.counter = self.counter.wrapping_add(1);
        let mut z = self.state ^ self.counter.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        ChaCha8Rng { state: seed, counter: 0 }
    }
}
