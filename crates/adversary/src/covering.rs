//! Covering-write bookkeeping (Definition 1 of the paper).
//!
//! The lower-bound adversary `Ad_i` tracks, for the extension following the
//! checkpoint `t_{i-1}`, the sets
//!
//! * `Tr_i(t)` — registers with a low-level write *triggered* after the
//!   checkpoint,
//! * `Rr_i(t)` — registers whose post-checkpoint write already *responded*,
//! * `Cov_i(t)` — registers newly covered after the checkpoint,
//! * `Q_i(t)` — up to `f` covered servers outside the protected set `F`
//!   whose responses the adversary withholds,
//! * `F_i(t)` — servers of `F` that already responded to a post-checkpoint
//!   write,
//! * `M_i(t)` — servers of `F` covered by a post-checkpoint write but with no
//!   response yet,
//! * `G_i(t)` — equal to `M_i(t)` while `|Q_i| < |F_i|`, empty otherwise.
//!
//! [`CoveringTracker`] maintains all of them by replaying the run's events
//! *one at a time* (each trigger/respond is one step, exactly as in the
//! paper's fine-grained runs), so the freezing rule of `Q_i` behaves as in
//! the proof.

use regemu_fpsm::{ClientId, Event, ObjectId, OpId, ServerId, Topology};
use std::collections::{BTreeMap, BTreeSet};

/// Incremental tracker of the Definition 1 sets for one adversary iteration.
#[derive(Clone, Debug)]
pub struct CoveringTracker {
    /// The protected server set `F` (|F| = f + 1).
    protected: BTreeSet<ServerId>,
    /// Failure threshold `f`.
    f: usize,
    /// Clients that had completed a high-level write before the checkpoint
    /// (`C(t_{i-1})`): their covering writes are blocked unconditionally.
    previous_writers: BTreeSet<ClientId>,
    /// Registers covered at the checkpoint (`Cov(t_{i-1})`).
    covered_at_checkpoint: BTreeSet<ObjectId>,

    /// Pending post-checkpoint covering writes per register.
    pending_new_writes: BTreeMap<ObjectId, usize>,
    /// Pending pre-checkpoint covering writes per register (they only
    /// disappear if the environment ever lets them respond).
    pending_old_writes: BTreeMap<ObjectId, usize>,
    /// Low-level writes triggered after the checkpoint, with their register.
    new_write_ops: BTreeMap<OpId, ObjectId>,
    /// Low-level writes triggered before the checkpoint (still pending then).
    old_write_ops: BTreeMap<OpId, ObjectId>,
    /// Clients of every tracked pending write.
    write_clients: BTreeMap<OpId, ClientId>,

    /// `Tr_i` — registers with a post-checkpoint write trigger.
    triggered: BTreeSet<ObjectId>,
    /// `Rr_i` — registers whose post-checkpoint write responded.
    responded: BTreeSet<ObjectId>,
    /// `Q_i` — the frozen-at-`f` covered servers outside `F`.
    q: BTreeSet<ServerId>,
    /// `F_i` — servers of `F` that responded to a post-checkpoint write.
    f_responded: BTreeSet<ServerId>,
}

impl CoveringTracker {
    /// Starts a tracker for a new iteration.
    ///
    /// `previous_writers` is `C(t_{i-1})`; `covered_at_checkpoint` together
    /// with `pending_old_writes` describes the covering writes inherited from
    /// the previous iterations (all of which the adversary keeps blocking).
    pub fn new(
        protected: BTreeSet<ServerId>,
        f: usize,
        previous_writers: BTreeSet<ClientId>,
        old_pending: impl IntoIterator<Item = (OpId, ObjectId, ClientId)>,
    ) -> Self {
        assert_eq!(
            protected.len(),
            f + 1,
            "the protected set F must have exactly f + 1 servers"
        );
        let mut covered_at_checkpoint = BTreeSet::new();
        let mut pending_old_writes: BTreeMap<ObjectId, usize> = BTreeMap::new();
        let mut old_write_ops = BTreeMap::new();
        let mut write_clients = BTreeMap::new();
        for (op, object, client) in old_pending {
            covered_at_checkpoint.insert(object);
            *pending_old_writes.entry(object).or_default() += 1;
            old_write_ops.insert(op, object);
            write_clients.insert(op, client);
        }
        CoveringTracker {
            protected,
            f,
            previous_writers,
            covered_at_checkpoint,
            pending_new_writes: BTreeMap::new(),
            pending_old_writes,
            new_write_ops: BTreeMap::new(),
            old_write_ops,
            write_clients,
            triggered: BTreeSet::new(),
            responded: BTreeSet::new(),
            q: BTreeSet::new(),
            f_responded: BTreeSet::new(),
        }
    }

    /// The protected set `F`.
    pub fn protected(&self) -> &BTreeSet<ServerId> {
        &self.protected
    }

    /// Feeds one run event to the tracker. Only trigger/respond events of
    /// write-class operations matter; everything else is ignored.
    pub fn observe(&mut self, event: &Event, topology: &Topology) {
        match event {
            Event::Trigger {
                client,
                op_id,
                object,
                op,
                ..
            } if op.is_write() => {
                self.new_write_ops.insert(*op_id, *object);
                self.write_clients.insert(*op_id, *client);
                *self.pending_new_writes.entry(*object).or_default() += 1;
                self.triggered.insert(*object);
                self.refresh_q(topology);
            }
            Event::Respond { op_id, object, .. } => {
                if self.new_write_ops.remove(op_id).is_some() {
                    if let Some(count) = self.pending_new_writes.get_mut(object) {
                        *count = count.saturating_sub(1);
                        if *count == 0 {
                            self.pending_new_writes.remove(object);
                        }
                    }
                    self.responded.insert(*object);
                    let server = topology.server_of(*object);
                    if self.protected.contains(&server) {
                        self.f_responded.insert(server);
                    }
                    self.refresh_q(topology);
                } else if self.old_write_ops.remove(op_id).is_some() {
                    if let Some(count) = self.pending_old_writes.get_mut(object) {
                        *count = count.saturating_sub(1);
                        if *count == 0 {
                            self.pending_old_writes.remove(object);
                        }
                    }
                }
                self.write_clients.remove(op_id);
            }
            _ => {}
        }
    }

    /// Definition 1.4: `Q_i` follows `δ(Cov_i) \ F` while that set has at most
    /// `f` servers and freezes afterwards.
    fn refresh_q(&mut self, topology: &Topology) {
        let candidate: BTreeSet<ServerId> = self
            .newly_covered()
            .into_iter()
            .map(|b| topology.server_of(b))
            .filter(|s| !self.protected.contains(s))
            .collect();
        if candidate.len() <= self.f {
            self.q = candidate;
        }
    }

    /// `Cov_i(t)` — registers newly covered since the checkpoint.
    pub fn newly_covered(&self) -> BTreeSet<ObjectId> {
        self.pending_new_writes
            .keys()
            .filter(|b| !self.covered_at_checkpoint.contains(b))
            .copied()
            .collect()
    }

    /// `Cov(t)` — every currently covered register (old and new).
    pub fn covered(&self) -> BTreeSet<ObjectId> {
        self.pending_new_writes
            .keys()
            .chain(self.pending_old_writes.keys())
            .copied()
            .collect()
    }

    /// `Tr_i(t)` — registers with a post-checkpoint write trigger.
    pub fn triggered(&self) -> &BTreeSet<ObjectId> {
        &self.triggered
    }

    /// `Rr_i(t)` — registers whose post-checkpoint write responded.
    pub fn responded(&self) -> &BTreeSet<ObjectId> {
        &self.responded
    }

    /// `Q_i(t)`.
    pub fn q(&self) -> &BTreeSet<ServerId> {
        &self.q
    }

    /// `F_i(t)`.
    pub fn f_responded(&self) -> &BTreeSet<ServerId> {
        &self.f_responded
    }

    /// `M_i(t)` — covered servers of `F` that have not responded yet.
    pub fn m(&self, topology: &Topology) -> BTreeSet<ServerId> {
        self.newly_covered()
            .into_iter()
            .map(|b| topology.server_of(b))
            .filter(|s| self.protected.contains(s) && !self.f_responded.contains(s))
            .collect()
    }

    /// `G_i(t)` — `M_i(t)` while `|Q_i| < |F_i|`, empty otherwise
    /// (Definition 1.7).
    pub fn g(&self, topology: &Topology) -> BTreeSet<ServerId> {
        if self.q.len() < self.f_responded.len() {
            self.m(topology)
        } else {
            BTreeSet::new()
        }
    }

    /// Definition 2: is the pending write `op_id` (by `client`, on `object`)
    /// currently blocked by the adversary?
    pub fn is_blocked(
        &self,
        op_id: OpId,
        client: ClientId,
        object: ObjectId,
        topology: &Topology,
    ) -> bool {
        let _ = op_id;
        // Condition 1: triggered by a client that completed a write before
        // the checkpoint.
        if self.previous_writers.contains(&client) {
            return true;
        }
        // Condition 2: triggered on a register of δ⁻¹(Q_i ∪ G_i).
        let server = topology.server_of(object);
        if self.q.contains(&server) {
            return true;
        }
        if self.g(topology).contains(&server) {
            return true;
        }
        false
    }

    /// Sanity checks corresponding to Lemma 2 claims 5, 6, 8 and 11; used by
    /// the test-suite to validate the bookkeeping on real runs.
    pub fn check_lemma2_invariants(&self, topology: &Topology) -> Result<(), String> {
        if self.q.len() > self.f {
            return Err(format!("|Q_i| = {} exceeds f = {}", self.q.len(), self.f));
        }
        if self.f_responded.len() > self.f + 1 {
            return Err(format!("|F_i| = {} exceeds f + 1", self.f_responded.len()));
        }
        if self.m(topology).len() > self.f + 1 {
            return Err("|M_i| exceeds f + 1".to_string());
        }
        // Lemma 2.1: Q_i ⊆ δ(Cov_i) \ F.
        let cov_servers: BTreeSet<ServerId> = self
            .newly_covered()
            .into_iter()
            .map(|b| topology.server_of(b))
            .collect();
        for s in &self.q {
            if self.protected.contains(s) || !cov_servers.contains(s) {
                return Err(format!(
                    "Q_i contains {s} which is not a covered non-F server"
                ));
            }
        }
        // Lemma 2.11: (Q_i ∪ M_i) ∩ δ(Rr_i) = ∅.
        let responded_servers: BTreeSet<ServerId> = self
            .responded
            .iter()
            .map(|b| topology.server_of(*b))
            .collect();
        for s in self.q.iter().chain(self.m(topology).iter()) {
            if responded_servers.contains(s) {
                return Err(format!(
                    "server {s} is in Q_i ∪ M_i but already responded to a new write"
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regemu_fpsm::{BaseOp, BaseResponse, HighOpId, ObjectKind, Value};

    fn topology(n: usize) -> Topology {
        let mut t = Topology::new(n);
        t.add_object_per_server(ObjectKind::Register);
        t
    }

    fn protected(servers: &[usize]) -> BTreeSet<ServerId> {
        servers.iter().map(|s| ServerId::new(*s)).collect()
    }

    fn trigger(op: u64, client: usize, object: usize) -> Event {
        Event::Trigger {
            time: op,
            client: ClientId::new(client),
            high_op: Some(HighOpId::new(0)),
            op_id: OpId::new(op),
            object: ObjectId::new(object),
            op: BaseOp::Write(Value::new(1, 1)),
        }
    }

    fn respond(op: u64, client: usize, object: usize) -> Event {
        Event::Respond {
            time: op + 100,
            client: ClientId::new(client),
            op_id: OpId::new(op),
            object: ObjectId::new(object),
            response: BaseResponse::WriteAck,
        }
    }

    #[test]
    fn q_grows_to_f_and_freezes() {
        // n = 5, f = 2, F = {3, 4}... F needs f + 1 = 3 servers.
        let t = topology(6);
        let f_set = protected(&[3, 4, 5]);
        let mut tracker = CoveringTracker::new(f_set, 2, BTreeSet::new(), Vec::new());
        // Writes triggered one at a time on servers 0, 1, 2 (outside F).
        for (op, srv) in [(0u64, 0usize), (1, 1), (2, 2)] {
            tracker.observe(&trigger(op, 9, srv), &t);
        }
        // Q grew to {0, 1} and froze before server 2 could join.
        assert_eq!(tracker.q().len(), 2);
        assert!(tracker.q().contains(&ServerId::new(0)));
        assert!(tracker.q().contains(&ServerId::new(1)));
        assert!(!tracker.q().contains(&ServerId::new(2)));
        tracker.check_lemma2_invariants(&t).unwrap();
    }

    #[test]
    fn writes_on_protected_servers_track_f_i_and_m_i() {
        let t = topology(6);
        let f_set = protected(&[3, 4, 5]);
        let mut tracker = CoveringTracker::new(f_set, 2, BTreeSet::new(), Vec::new());
        tracker.observe(&trigger(0, 7, 3), &t);
        tracker.observe(&trigger(1, 7, 4), &t);
        // Both protected servers are covered, none responded: M_i = {3, 4}.
        assert_eq!(tracker.m(&t).len(), 2);
        assert!(tracker.f_responded().is_empty());
        // One responds: it moves from M_i to F_i.
        tracker.observe(&respond(0, 7, 3), &t);
        assert_eq!(tracker.m(&t).len(), 1);
        assert_eq!(tracker.f_responded().len(), 1);
        assert!(tracker.f_responded().contains(&ServerId::new(3)));
        // G_i = M_i because |Q_i| = 0 < |F_i| = 1.
        assert_eq!(tracker.g(&t), tracker.m(&t));
        tracker.check_lemma2_invariants(&t).unwrap();
    }

    #[test]
    fn blocking_rules_cover_old_clients_and_q_servers() {
        let t = topology(6);
        let f_set = protected(&[3, 4, 5]);
        let old_client = ClientId::new(1);
        let mut previous = BTreeSet::new();
        previous.insert(old_client);
        // One old covering write on register 2 by the previous writer.
        let mut tracker = CoveringTracker::new(
            f_set,
            2,
            previous,
            vec![(OpId::new(100), ObjectId::new(2), old_client)],
        );
        // A new client covers servers 0 and 1 → Q = {0, 1}.
        tracker.observe(&trigger(0, 9, 0), &t);
        tracker.observe(&trigger(1, 9, 1), &t);
        // Old client's write is blocked by rule 1 wherever it is.
        assert!(tracker.is_blocked(OpId::new(100), old_client, ObjectId::new(2), &t));
        // The new client's writes on Q servers are blocked by rule 2.
        assert!(tracker.is_blocked(OpId::new(0), ClientId::new(9), ObjectId::new(0), &t));
        // A write on a protected server by the new client is not blocked
        // (G_i is empty because |Q_i| ≥ |F_i|).
        assert!(!tracker.is_blocked(OpId::new(5), ClientId::new(9), ObjectId::new(3), &t));
        // Coverage counts both old and new covering writes.
        assert_eq!(tracker.covered().len(), 3);
        assert_eq!(tracker.newly_covered().len(), 2);
    }

    #[test]
    fn responses_uncover_new_registers_but_checkpoint_registers_stay() {
        let t = topology(6);
        let f_set = protected(&[3, 4, 5]);
        let old_client = ClientId::new(0);
        let mut tracker = CoveringTracker::new(
            f_set,
            2,
            BTreeSet::new(),
            vec![(OpId::new(50), ObjectId::new(1), old_client)],
        );
        tracker.observe(&trigger(0, 3, 0), &t);
        assert_eq!(tracker.covered().len(), 2);
        tracker.observe(&respond(0, 3, 0), &t);
        assert_eq!(tracker.newly_covered().len(), 0);
        assert_eq!(tracker.covered().len(), 1);
        assert!(tracker.responded().contains(&ObjectId::new(0)));
        // The old write responds too (if the environment ever allows it).
        tracker.observe(&respond(50, 0, 1), &t);
        assert!(tracker.covered().is_empty());
    }

    #[test]
    #[should_panic(expected = "exactly f + 1")]
    fn wrong_sized_protected_set_is_rejected() {
        CoveringTracker::new(protected(&[0]), 2, BTreeSet::new(), Vec::new());
    }
}
