//! Deployable client and server nodes extracted from the simulation loop.
//!
//! [`crate::sim::Simulation`] interleaves *all* clients and servers inside a
//! single event loop; a live deployment needs the same state machines split
//! into per-process pieces that talk over a transport. This module factors
//! the two halves out:
//!
//! * [`ClientNode`] — one client's protocol state machine plus its
//!   bookkeeping (current high-level operation, completion log, crash flag).
//!   The simulation engine drives a `Vec<ClientNode>`; a live client process
//!   (see the `regemu-serve` crate) drives a single one against remote
//!   servers. Both call the same two entry points, [`ClientNode::on_invoke`]
//!   and [`ClientNode::on_delivery`], and receive the protocol's effects as a
//!   [`ClientEffects`] value to dispatch however they like.
//! * [`ServerNode`] — the base objects the placement `δ` maps to one server,
//!   with global-to-local object-id translation and an [`ServerNode::apply`]
//!   step that realizes Assumption 1 (a low-level operation linearizes when
//!   the server applies it).
//!
//! The extraction is behaviour-preserving: the simulation's event/time/op-id
//! orders are byte-identical to the pre-extraction engine (the golden-trace
//! suites in `regemu-core` pin this down).

use crate::client::{ClientProtocol, Context, Delivery};
use crate::ids::{ClientId, HighOpId, ObjectId, OpId, ServerId, Time};
use crate::object::{BaseObject, ObjectError};
use crate::op::{BaseOp, BaseResponse, HighOp, HighResponse};
use crate::topology::Topology;

/// Effects a [`ClientNode`] callback produced: low-level operations to
/// dispatch and, possibly, the completed high-level response.
///
/// The simulation turns triggers into pending operations; a live client turns
/// them into wire requests. Either way the trigger order must be preserved —
/// it is the order the protocol chose.
#[derive(Debug)]
pub struct ClientEffects {
    /// Low-level operations to dispatch, in trigger order.
    pub triggers: Vec<(OpId, ObjectId, BaseOp)>,
    /// Response of the client's current high-level operation, if this
    /// callback completed it.
    pub completion: Option<HighResponse>,
}

impl ClientEffects {
    /// `true` when the callback neither triggered nor completed anything.
    pub fn is_empty(&self) -> bool {
        self.triggers.is_empty() && self.completion.is_none()
    }
}

/// One client's protocol state machine plus its run bookkeeping.
///
/// This is exactly the per-client state the simulation engine keeps; it is a
/// public type so that a live client process can host the same state machine
/// over a real transport. The host owns the clock (`time`) and the op-id
/// counter (`next_op_id`) — the node never invents either, which is what
/// keeps simulated and live runs comparable.
pub struct ClientNode {
    client: ClientId,
    protocol: Box<dyn ClientProtocol>,
    crashed: bool,
    /// High-level operation currently in progress, if any.
    current: Option<(HighOpId, HighOp)>,
    /// Completed high-level operations, in completion order.
    completed: Vec<(HighOpId, HighOp, HighResponse)>,
}

impl ClientNode {
    /// Creates a node for `client` running `protocol`.
    pub fn new(client: ClientId, protocol: Box<dyn ClientProtocol>) -> Self {
        ClientNode {
            client,
            protocol,
            crashed: false,
            current: None,
            completed: Vec::new(),
        }
    }

    /// The client this node belongs to.
    pub fn client(&self) -> ClientId {
        self.client
    }

    /// The protocol's human-readable name (for logs and assertions).
    pub fn protocol_name(&self) -> &'static str {
        self.protocol.name()
    }

    /// `true` once [`ClientNode::crash`] has been called.
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// Marks the client as crashed. Idempotent; a crashed node must not be
    /// handed further invocations or deliveries.
    pub fn crash(&mut self) {
        self.crashed = true;
    }

    /// `true` if the client has not crashed and has no high-level operation
    /// in progress.
    pub fn is_idle(&self) -> bool {
        !self.crashed && self.current.is_none()
    }

    /// The high-level operation currently in progress, if any.
    pub fn current(&self) -> Option<(HighOpId, HighOp)> {
        self.current
    }

    /// All completed high-level operations, in completion order.
    pub fn completed(&self) -> &[(HighOpId, HighOp, HighResponse)] {
        self.completed.as_slice()
    }

    /// Starts high-level operation `high_op` and runs the protocol's
    /// `on_invoke` callback at logical time `time`.
    ///
    /// The caller must have checked that the node is idle (the simulation
    /// returns a typed error first; a live client serializes its own ops).
    pub fn on_invoke(
        &mut self,
        high_op: HighOpId,
        op: HighOp,
        time: Time,
        next_op_id: &mut u64,
    ) -> ClientEffects {
        debug_assert!(!self.crashed, "invoke on crashed client {}", self.client);
        debug_assert!(
            self.current.is_none(),
            "client {} already has a high-level operation in progress",
            self.client
        );
        self.current = Some((high_op, op));
        let mut ctx = Context::new(self.client, time, next_op_id);
        self.protocol.on_invoke(op, &mut ctx);
        let (triggers, completion) = ctx.into_effects();
        ClientEffects {
            triggers,
            completion,
        }
    }

    /// Hands a low-level response to the protocol's `on_response` callback at
    /// logical time `time`.
    pub fn on_delivery(
        &mut self,
        delivery: Delivery,
        time: Time,
        next_op_id: &mut u64,
    ) -> ClientEffects {
        debug_assert!(!self.crashed, "delivery to crashed client {}", self.client);
        let mut ctx = Context::new(self.client, time, next_op_id);
        self.protocol.on_response(delivery, &mut ctx);
        let (triggers, completion) = ctx.into_effects();
        ClientEffects {
            triggers,
            completion,
        }
    }

    /// Retires the current high-level operation with `response`, recording it
    /// in the completion log, and returns it.
    ///
    /// # Panics
    ///
    /// Panics if no high-level operation is in progress (the protocol
    /// completed an operation it never started).
    pub fn finish(&mut self, response: HighResponse) -> (HighOpId, HighOp) {
        let (high_id, op) = self
            .current
            .take()
            .expect("protocol completed a high-level operation but none was in progress");
        self.completed.push((high_id, op, response));
        (high_id, op)
    }
}

impl std::fmt::Debug for ClientNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClientNode")
            .field("client", &self.client)
            .field("protocol", &self.protocol.name())
            .field("crashed", &self.crashed)
            .field("current", &self.current)
            .field("completed", &self.completed.len())
            .finish()
    }
}

/// Error applying a low-level operation at a [`ServerNode`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeError {
    /// The placement `δ` does not map the object to this server.
    NotHosted {
        /// The object that was addressed.
        object: ObjectId,
        /// The server it was addressed at.
        server: ServerId,
    },
    /// The object rejected the operation (wrong kind, or crashed).
    Object(ObjectError),
}

impl std::fmt::Display for NodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NodeError::NotHosted { object, server } => {
                write!(f, "object {object} is not hosted on server {server}")
            }
            NodeError::Object(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for NodeError {}

impl From<ObjectError> for NodeError {
    fn from(e: ObjectError) -> Self {
        NodeError::Object(e)
    }
}

/// The base objects one server hosts, addressable by their *global* ids.
///
/// The simulation keeps all objects in one dense vector; a live server
/// process hosts only the slice `δ⁻¹(s)`. `ServerNode` carries that slice
/// plus the global-to-local translation so wire messages can keep using the
/// topology-wide [`ObjectId`]s.
#[derive(Debug)]
pub struct ServerNode {
    server: ServerId,
    /// Global object id → index into `objects`, dense over the topology.
    local: Vec<Option<usize>>,
    objects: Vec<BaseObject>,
}

impl ServerNode {
    /// Creates the node hosting every object `topology` places on `server`.
    ///
    /// # Panics
    ///
    /// Panics if `server` is not a server of the topology.
    pub fn new(topology: &Topology, server: ServerId) -> Self {
        assert!(
            server.index() < topology.server_count(),
            "server {} is not in a topology with {} servers",
            server,
            topology.server_count()
        );
        let mut local = vec![None; topology.object_count()];
        let mut objects = Vec::new();
        for id in topology.objects_on(server) {
            local[id.index()] = Some(objects.len());
            objects.push(BaseObject::new(id, server, topology.kind_of(id)));
        }
        ServerNode {
            server,
            local,
            objects,
        }
    }

    /// The server this node realizes.
    pub fn server(&self) -> ServerId {
        self.server
    }

    /// Number of base objects hosted here.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// `true` if the placement maps `object` to this server.
    pub fn hosts(&self, object: ObjectId) -> bool {
        self.local
            .get(object.index())
            .map(|slot| slot.is_some())
            .unwrap_or(false)
    }

    /// The hosted base object with global id `object`, if any.
    pub fn object(&self, object: ObjectId) -> Option<&BaseObject> {
        let idx = (*self.local.get(object.index())?)?;
        self.objects.get(idx)
    }

    /// Iterates over the hosted base objects in global-id order.
    pub fn objects(&self) -> impl Iterator<Item = &BaseObject> {
        self.objects.iter()
    }

    /// Total low-level operations applied across the hosted objects.
    pub fn applied_ops(&self) -> u64 {
        self.objects
            .iter()
            .map(|o| o.applied_writes() + o.applied_reads())
            .sum()
    }

    /// Applies `op` to the hosted object with global id `object`.
    ///
    /// This is the operation's linearization point, exactly like
    /// [`crate::sim::Simulation::deliver`] (Assumption 1, Write
    /// Linearization).
    pub fn apply(&mut self, object: ObjectId, op: &BaseOp) -> Result<BaseResponse, NodeError> {
        let idx =
            self.local
                .get(object.index())
                .copied()
                .flatten()
                .ok_or(NodeError::NotHosted {
                    object,
                    server: self.server,
                })?;
        Ok(self.objects[idx].apply(op)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::NoopProtocol;
    use crate::object::ObjectKind;
    use crate::value::Value;

    #[test]
    fn client_node_runs_the_protocol_and_logs_completions() {
        let mut node = ClientNode::new(ClientId::new(2), Box::new(NoopProtocol));
        assert!(node.is_idle());
        assert_eq!(node.protocol_name(), "noop");
        let mut next_op_id = 0;
        let effects = node.on_invoke(HighOpId::new(0), HighOp::Write(7), 1, &mut next_op_id);
        assert!(effects.triggers.is_empty());
        assert_eq!(effects.completion, Some(HighResponse::WriteAck));
        assert!(!effects.is_empty());
        assert_eq!(node.current(), Some((HighOpId::new(0), HighOp::Write(7))));
        let (high, op) = node.finish(HighResponse::WriteAck);
        assert_eq!((high, op), (HighOpId::new(0), HighOp::Write(7)));
        assert!(node.is_idle());
        assert_eq!(node.completed().len(), 1);
    }

    #[test]
    #[should_panic(expected = "none was in progress")]
    fn finishing_without_a_current_op_panics() {
        let mut node = ClientNode::new(ClientId::new(0), Box::new(NoopProtocol));
        node.finish(HighResponse::WriteAck);
    }

    #[test]
    fn crashed_client_node_is_not_idle() {
        let mut node = ClientNode::new(ClientId::new(0), Box::new(NoopProtocol));
        node.crash();
        assert!(node.is_crashed());
        assert!(!node.is_idle());
    }

    #[test]
    fn server_node_hosts_exactly_its_placement_slice() {
        let mut t = Topology::new(3);
        let objs = t.add_object_per_server(ObjectKind::Register);
        let extra = t.add_object(ObjectKind::MaxRegister, ServerId::new(1));
        let node = ServerNode::new(&t, ServerId::new(1));
        assert_eq!(node.server(), ServerId::new(1));
        assert_eq!(node.object_count(), 2);
        assert!(node.hosts(objs[1]));
        assert!(node.hosts(extra));
        assert!(!node.hosts(objs[0]));
        assert!(node.object(objs[0]).is_none());
        assert_eq!(node.object(extra).unwrap().kind(), ObjectKind::MaxRegister);
        let hosted: Vec<_> = node.objects().map(|o| o.id()).collect();
        assert_eq!(hosted, vec![objs[1], extra]);
    }

    #[test]
    fn server_node_applies_ops_and_translates_errors() {
        let mut t = Topology::new(2);
        let objs = t.add_object_per_server(ObjectKind::Register);
        let mut node = ServerNode::new(&t, ServerId::new(0));
        let v = Value::new(1, 9);
        assert_eq!(
            node.apply(objs[0], &BaseOp::Write(v)),
            Ok(BaseResponse::WriteAck)
        );
        assert_eq!(
            node.apply(objs[0], &BaseOp::Read),
            Ok(BaseResponse::ReadValue(v))
        );
        assert_eq!(node.applied_ops(), 2);
        // Object on the other server: not hosted here.
        assert_eq!(
            node.apply(objs[1], &BaseOp::Read),
            Err(NodeError::NotHosted {
                object: objs[1],
                server: ServerId::new(0),
            })
        );
        // Wrong kind: the object error is forwarded.
        assert!(matches!(
            node.apply(objs[0], &BaseOp::ReadMax),
            Err(NodeError::Object(ObjectError::UnsupportedOp { .. }))
        ));
    }

    #[test]
    fn out_of_range_object_ids_are_not_hosted() {
        let mut t = Topology::new(1);
        t.add_object_per_server(ObjectKind::Register);
        let node = ServerNode::new(&t, ServerId::new(0));
        assert!(!node.hosts(ObjectId::new(99)));
        assert!(node.object(ObjectId::new(99)).is_none());
    }
}
