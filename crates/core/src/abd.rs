//! Multi-writer ABD over per-server `read-max`/`write-max` drivers.
//!
//! The classic ABD emulation keeps one base object per server and uses two
//! quorum phases per operation. As the paper observes (Section 1, "Results"),
//! the per-server code of multi-writer ABD can be encapsulated in the
//! `write-max` / `read-max` primitives of a max-register, so the very same
//! client protocol yields
//!
//! * the `2f + 1` max-register upper bound (with [`NativeMaxDriver`]),
//! * the `2f + 1` CAS upper bound (with [`CasMaxDriver`], i.e. Algorithm 1
//!   executed against each server's single CAS object), and
//! * the `(2f+1)·k` register construction for `n = 2f + 1` (with
//!   [`BankMaxDriver`] over `k` plain registers per server).
//!
//! The protocol is wait-free and WS-Regular; with the optional *read
//! write-back* phase enabled it is atomic (linearizable) as in the original
//! ABD algorithm.
//!
//! [`NativeMaxDriver`]: crate::drivers::NativeMaxDriver
//! [`CasMaxDriver`]: crate::drivers::CasMaxDriver
//! [`BankMaxDriver`]: crate::drivers::BankMaxDriver

use crate::drivers::{MaxDriver, MaxOutcome};
use crate::quorum::ServerQuorumTracker;
use crate::timestamp;
use regemu_bounds::Params;
use regemu_fpsm::{ClientProtocol, Context, Delivery, HighOp, HighResponse, ObjectId, Value};
use std::collections::BTreeMap;

/// Which phase of the two-phase quorum protocol the client is in.
#[derive(Debug)]
enum Phase {
    /// No high-level operation in progress.
    Idle,
    /// Phase 1: `read-max` from `n - f` servers.
    Query {
        op: HighOp,
        quorum: ServerQuorumTracker,
    },
    /// Phase 2: `write-max` to `n - f` servers, then return `response`.
    Update {
        response: HighResponse,
        quorum: ServerQuorumTracker,
    },
}

/// The ABD client protocol, generic over the per-server [`MaxDriver`]s.
pub struct AbdClient {
    params: Params,
    /// 0-based writer index, or `None` for a read-only client.
    writer_index: Option<usize>,
    /// When `true`, reads perform a write-back phase before returning, which
    /// upgrades the guarantee from (WS-)regular to atomic.
    read_write_back: bool,
    drivers: Vec<Box<dyn MaxDriver>>,
    /// Routing table from base object to the driver responsible for it.
    object_to_driver: BTreeMap<ObjectId, usize>,
    phase: Phase,
    /// Fault injection (see [`AbdClient::skipping_update`]): when `true`,
    /// writes acknowledge after the query phase without running the update
    /// round.
    skip_update: bool,
    /// Fault injection (see [`AbdClient::dropping_acks_after`]): when set,
    /// the client silently drops every response after it has processed this
    /// many deliveries — in-flight operations wedge forever.
    drop_acks_after: Option<u64>,
    /// Responses processed so far (only tracked for the dropped-acks fault).
    processed: u64,
}

impl AbdClient {
    /// Creates an ABD client.
    ///
    /// `drivers` must contain one driver per server (the quorum size is
    /// computed as `n - f` over their number). `writer_index` is required for
    /// clients that will invoke high-level writes.
    pub fn new(
        params: Params,
        writer_index: Option<usize>,
        read_write_back: bool,
        drivers: Vec<Box<dyn MaxDriver>>,
    ) -> Self {
        assert_eq!(
            drivers.len(),
            params.n,
            "ABD needs exactly one driver per server (n = {})",
            params.n
        );
        let mut object_to_driver = BTreeMap::new();
        for (i, d) in drivers.iter().enumerate() {
            for b in d.objects() {
                object_to_driver.insert(b, i);
            }
        }
        AbdClient {
            params,
            writer_index,
            read_write_back,
            drivers,
            object_to_driver,
            phase: Phase::Idle,
            skip_update: false,
            drop_acks_after: None,
            processed: 0,
        }
    }

    /// Fault injection for fuzzer validation (`regemu_core::faulty`): the
    /// returned client acknowledges high-level writes right after the query
    /// phase, *skipping the update round entirely*, so the written value
    /// never reaches any server. This breaks even WS-Safety and exists only
    /// so the schedule fuzzer has a known bug to find.
    pub fn skipping_update(mut self) -> Self {
        self.skip_update = true;
        self
    }

    /// Fault injection for the liveness (stuck) oracle
    /// (`regemu_core::faulty`): the returned client processes its first
    /// `threshold` response deliveries normally and silently drops every
    /// later one, so an operation still in flight past the threshold never
    /// completes. Safety is untouched — the run simply wedges — which makes
    /// this the seeded bug only a stuck detector can catch.
    pub fn dropping_acks_after(mut self, threshold: u64) -> Self {
        self.drop_acks_after = Some(threshold);
        self
    }

    fn quorum_size(&self) -> usize {
        self.params.n - self.params.f
    }

    fn start_query(&mut self, op: HighOp, ctx: &mut Context<'_>) {
        for d in &mut self.drivers {
            d.reset();
            d.start_read_max(ctx);
        }
        self.phase = Phase::Query {
            op,
            quorum: ServerQuorumTracker::new(self.quorum_size()),
        };
    }

    fn start_update(&mut self, value: Value, response: HighResponse, ctx: &mut Context<'_>) {
        for d in &mut self.drivers {
            d.reset();
            d.start_write_max(value, ctx);
        }
        self.phase = Phase::Update {
            response,
            quorum: ServerQuorumTracker::new(self.quorum_size()),
        };
    }
}

impl ClientProtocol for AbdClient {
    fn on_invoke(&mut self, op: HighOp, ctx: &mut Context<'_>) {
        debug_assert!(
            !(op.is_write() && self.writer_index.is_none()),
            "a read-only ABD client received a high-level write"
        );
        self.start_query(op, ctx);
    }

    fn on_response(&mut self, delivery: Delivery, ctx: &mut Context<'_>) {
        if let Some(threshold) = self.drop_acks_after {
            if self.processed >= threshold {
                return;
            }
            self.processed += 1;
        }
        let Some(&driver_index) = self.object_to_driver.get(&delivery.object) else {
            return;
        };
        let outcome = self.drivers[driver_index].on_response(&delivery, ctx);
        let Some(outcome) = outcome else { return };
        let server = self.drivers[driver_index].server();

        match &mut self.phase {
            Phase::Idle => {}
            Phase::Query { op, quorum } => {
                let value = match outcome {
                    MaxOutcome::ReadMax(v) => Some(v),
                    MaxOutcome::WriteMaxDone => None,
                };
                quorum.record(server, value);
                if !quorum.satisfied() {
                    return;
                }
                let best = quorum.best();
                let op = *op;
                match op {
                    HighOp::Write(payload) => {
                        if self.skip_update {
                            // Injected fault: acknowledge without writing.
                            self.phase = Phase::Idle;
                            ctx.complete(HighResponse::WriteAck);
                            return;
                        }
                        let writer = self.writer_index.expect("writes require a writer index");
                        let ts = timestamp::next(best.ts, writer);
                        self.start_update(Value::new(ts, payload), HighResponse::WriteAck, ctx);
                    }
                    HighOp::Read => {
                        if self.read_write_back && !best.is_initial() {
                            self.start_update(best, HighResponse::ReadValue(best.val), ctx);
                        } else {
                            self.phase = Phase::Idle;
                            ctx.complete(HighResponse::ReadValue(best.val));
                        }
                    }
                }
            }
            Phase::Update { response, quorum } => {
                quorum.record(server, None);
                if quorum.satisfied() {
                    let response = *response;
                    self.phase = Phase::Idle;
                    ctx.complete(response);
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "abd"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drivers::{BankMaxDriver, CasMaxDriver, NativeMaxDriver};
    use regemu_fpsm::prelude::*;
    use regemu_fpsm::ObjectKind;

    fn params(k: usize, f: usize, n: usize) -> Params {
        Params::new(k, f, n).unwrap()
    }

    fn native_setup(p: Params) -> (Simulation, Vec<ObjectId>) {
        let mut t = Topology::new(p.n);
        let objs = t.add_object_per_server(ObjectKind::MaxRegister);
        (
            Simulation::new(t, SimConfig::with_fault_threshold(p.f)),
            objs,
        )
    }

    fn native_client(p: Params, objs: &[ObjectId], writer: Option<usize>, wb: bool) -> AbdClient {
        let drivers: Vec<Box<dyn MaxDriver>> = objs
            .iter()
            .enumerate()
            .map(|(s, b)| {
                Box::new(NativeMaxDriver::new(ServerId::new(s), *b)) as Box<dyn MaxDriver>
            })
            .collect();
        AbdClient::new(p, writer, wb, drivers)
    }

    #[test]
    fn write_then_read_over_native_max_registers() {
        let p = params(2, 1, 3);
        let (mut sim, objs) = native_setup(p);
        let w = sim.register_client(Box::new(native_client(p, &objs, Some(0), false)));
        let r = sim.register_client(Box::new(native_client(p, &objs, None, false)));
        let mut driver = FairDriver::new(5);

        let wop = sim.invoke(w, HighOp::Write(41)).unwrap();
        driver.run_until_complete(&mut sim, wop, 1000).unwrap();
        let rop = sim.invoke(r, HighOp::Read).unwrap();
        driver.run_until_complete(&mut sim, rop, 1000).unwrap();
        assert_eq!(sim.result_of(rop), Some(HighResponse::ReadValue(41)));
    }

    #[test]
    fn later_writes_win_over_earlier_ones() {
        let p = params(2, 1, 3);
        let (mut sim, objs) = native_setup(p);
        let w0 = sim.register_client(Box::new(native_client(p, &objs, Some(0), false)));
        let w1 = sim.register_client(Box::new(native_client(p, &objs, Some(1), false)));
        let r = sim.register_client(Box::new(native_client(p, &objs, None, false)));
        let mut driver = FairDriver::new(9);

        for (client, value) in [(w0, 10), (w1, 20), (w0, 30)] {
            let op = sim.invoke(client, HighOp::Write(value)).unwrap();
            driver.run_until_complete(&mut sim, op, 1000).unwrap();
        }
        let rop = sim.invoke(r, HighOp::Read).unwrap();
        driver.run_until_complete(&mut sim, rop, 1000).unwrap();
        assert_eq!(sim.result_of(rop), Some(HighResponse::ReadValue(30)));
    }

    #[test]
    fn tolerates_f_crashed_servers() {
        let p = params(1, 1, 3);
        let (mut sim, objs) = native_setup(p);
        let w = sim.register_client(Box::new(native_client(p, &objs, Some(0), false)));
        let r = sim.register_client(Box::new(native_client(p, &objs, None, false)));
        sim.crash_server(ServerId::new(2)).unwrap();

        let mut driver = FairDriver::new(2);
        let wop = sim.invoke(w, HighOp::Write(7)).unwrap();
        driver.run_until_complete(&mut sim, wop, 1000).unwrap();
        let rop = sim.invoke(r, HighOp::Read).unwrap();
        driver.run_until_complete(&mut sim, rop, 1000).unwrap();
        assert_eq!(sim.result_of(rop), Some(HighResponse::ReadValue(7)));
    }

    #[test]
    fn uses_exactly_2f_plus_1_base_objects() {
        let p = params(4, 2, 5);
        let (mut sim, objs) = native_setup(p);
        let clients: Vec<ClientId> = (0..4)
            .map(|i| sim.register_client(Box::new(native_client(p, &objs, Some(i), false))))
            .collect();
        let mut driver = FairDriver::new(3);
        for (i, c) in clients.iter().enumerate() {
            let op = sim.invoke(*c, HighOp::Write(i as u64 + 1)).unwrap();
            driver.run_until_complete(&mut sim, op, 2000).unwrap();
        }
        let metrics = RunMetrics::capture(&sim);
        assert_eq!(metrics.resource_consumption(), 2 * p.f + 1);
        assert_eq!(
            metrics.resource_consumption(),
            regemu_bounds::max_register_bound(p.f)
        );
    }

    #[test]
    fn works_over_cas_servers_via_algorithm_1() {
        let p = params(2, 1, 3);
        let mut t = Topology::new(p.n);
        let objs = t.add_object_per_server(ObjectKind::Cas);
        let mut sim = Simulation::new(t, SimConfig::with_fault_threshold(p.f));
        let make = |writer: Option<usize>| {
            let drivers: Vec<Box<dyn MaxDriver>> = objs
                .iter()
                .enumerate()
                .map(|(s, b)| {
                    Box::new(CasMaxDriver::new(ServerId::new(s), *b)) as Box<dyn MaxDriver>
                })
                .collect();
            AbdClient::new(p, writer, false, drivers)
        };
        let w0 = sim.register_client(Box::new(make(Some(0))));
        let w1 = sim.register_client(Box::new(make(Some(1))));
        let r = sim.register_client(Box::new(make(None)));
        let mut driver = FairDriver::new(17);

        for (c, v) in [(w0, 5), (w1, 9)] {
            let op = sim.invoke(c, HighOp::Write(v)).unwrap();
            driver.run_until_complete(&mut sim, op, 4000).unwrap();
        }
        let rop = sim.invoke(r, HighOp::Read).unwrap();
        driver.run_until_complete(&mut sim, rop, 4000).unwrap();
        assert_eq!(sim.result_of(rop), Some(HighResponse::ReadValue(9)));
        assert_eq!(RunMetrics::capture(&sim).resource_consumption(), 3);
    }

    #[test]
    fn works_over_register_banks_for_minimal_n() {
        // n = 2f + 1 special case: each server stores k registers.
        let k = 3;
        let p = params(k, 1, 3);
        let mut t = Topology::new(p.n);
        let mut banks: Vec<Vec<ObjectId>> = Vec::new();
        for s in 0..p.n {
            banks.push(
                (0..k)
                    .map(|_| t.add_object(ObjectKind::Register, ServerId::new(s)))
                    .collect(),
            );
        }
        let mut sim = Simulation::new(t, SimConfig::with_fault_threshold(p.f));
        let make = |slot: Option<usize>| {
            let drivers: Vec<Box<dyn MaxDriver>> = banks
                .iter()
                .enumerate()
                .map(|(s, bank)| {
                    Box::new(BankMaxDriver::new(ServerId::new(s), bank.clone(), slot))
                        as Box<dyn MaxDriver>
                })
                .collect();
            AbdClient::new(p, slot, false, drivers)
        };
        let writers: Vec<ClientId> = (0..k)
            .map(|i| sim.register_client(Box::new(make(Some(i)))))
            .collect();
        let reader = sim.register_client(Box::new(make(None)));
        let mut driver = FairDriver::new(23);

        for (i, c) in writers.iter().enumerate() {
            let op = sim.invoke(*c, HighOp::Write(100 + i as u64)).unwrap();
            driver.run_until_complete(&mut sim, op, 4000).unwrap();
        }
        let rop = sim.invoke(reader, HighOp::Read).unwrap();
        driver.run_until_complete(&mut sim, rop, 4000).unwrap();
        assert_eq!(sim.result_of(rop), Some(HighResponse::ReadValue(102)));
        // Resource consumption is (2f+1)·k = 9.
        assert_eq!(
            RunMetrics::capture(&sim).resource_consumption(),
            (2 * p.f + 1) * k
        );
    }

    #[test]
    #[should_panic(expected = "one driver per server")]
    fn wrong_driver_count_is_rejected() {
        let p = params(1, 1, 3);
        AbdClient::new(p, Some(0), false, Vec::new());
    }
}
