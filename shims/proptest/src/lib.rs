//! Minimal stand-in for `proptest` 1.x used by the offline build (see
//! `shims/README.md`). Implements the subset the workspace's property tests
//! use: the `proptest!` / `prop_assert!` / `prop_assert_eq!` / `prop_oneof!`
//! macros, the [`strategy::Strategy`] trait with `prop_map`, strategies for
//! integer ranges / tuples / `bool` / `Vec`, and
//! [`test_runner::ProptestConfig`].
//!
//! Semantics: each `#[test]` runs `cases` iterations with values drawn from a
//! deterministic (seeded) generator, so failures are reproducible. Unlike the
//! real proptest there is **no shrinking** — a failing case panics with the
//! assertion message directly.

pub mod test_runner {
    //! Runner configuration.

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
        /// Accepted for compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256, max_shrink_iters: 0 }
        }
    }

    /// Why a test case failed, mirroring `proptest::test_runner::TestCaseError`.
    #[derive(Clone, Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// A failure with the given reason (what `prop_assert!` produces).
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic SplitMix64 generator driving value generation.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from a seed.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed ^ 0x5851_f42d_4c95_7f2d }
        }

        /// Returns the next pseudo-random `u64`.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of type `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Weighted choice among type-erased strategies (used by `prop_oneof!`).
    pub struct OneOf<T> {
        choices: Vec<(u32, BoxedStrategy<T>)>,
        total_weight: u64,
    }

    impl<T> OneOf<T> {
        /// Builds the union; panics if `choices` is empty or all-zero-weight.
        pub fn new(choices: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total_weight: u64 = choices.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total_weight > 0, "prop_oneof!: no positive weight");
            OneOf { choices, total_weight }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut ticket = rng.next_u64() % self.total_weight;
            for (weight, strat) in &self.choices {
                let weight = u64::from(*weight);
                if ticket < weight {
                    return strat.generate(rng);
                }
                ticket -= weight;
            }
            unreachable!("ticket below total weight")
        }
    }

    /// Strategy yielding a constant value (mirrors `proptest::strategy::Just`).
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    // Go through i128 so signed ranges spanning more than the
                    // type's positive max (e.g. `-100i8..100`) cannot overflow.
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let unit = ((rng.next_u64() >> 11) as f64) / ((1u64 << 53) as f64);
                    self.start + (self.end - self.start) * unit as $t
                }
            }
        )*};
    }

    impl_float_range_strategy!(f64);

    macro_rules! impl_tuple_strategy {
        ($($s:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod bool {
    //! Strategies for `bool`.
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The type of [`ANY`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    //! Strategies for collections.
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length bounds accepted by [`vec`].
    pub trait SizeRange {
        /// Inclusive lower and upper length bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl SizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl SizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// Generates vectors whose elements come from `element` and whose length
    /// lies within `size`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.max - self.min + 1) as u64;
            let len = self.min + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `#[test]` fn runs `cases` times with inputs
/// drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            // Seed differs per test (by name hash) but not per run: failures
            // are reproducible, like proptest with a fixed RNG seed.
            let seed = {
                let name = stringify!($name);
                let mut h = 0xcbf2_9ce4_8422_2325u64;
                for b in name.as_bytes() {
                    h = (h ^ u64::from(*b)).wrapping_mul(0x1000_0000_01b3);
                }
                h
            };
            for case in 0..u64::from(config.cases) {
                let mut rng = $crate::test_runner::TestRng::new(seed ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15));
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                // The body runs inside a `Result`-returning closure, exactly
                // like real proptest: `prop_assert!` returns `Err` and the
                // body may `return Ok(())` early.
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(err) = outcome {
                    panic!("proptest case #{case} failed: {err}");
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property test; on failure, returns
/// `Err(TestCaseError)` from the enclosing case (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left != *right, $($fmt)+);
    }};
}

/// Weighted (or unweighted) union of strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}
